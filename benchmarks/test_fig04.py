"""Figure 4 + Equation 1 benchmark: UDP-Ping latency CDFs."""

from benchmarks.conftest import print_rows
from repro.experiments import fig04_latency


def test_fig04_latency(benchmark, medium_dataset):
    result = benchmark.pedantic(
        fig04_latency.run,
        kwargs=dict(scale="medium", seed=0),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 4: network, median RTT, mean RTT, share in 50-100 ms", result
    )
    # Equation 1 exactly.
    assert abs(result.equation1_ms - 1.835) < 0.01
    # Carrier ordering: ATT highest; VZ/TM lowest; Starlink in between-ish.
    assert result.median("ATT") > result.median("TM")
    assert result.median("ATT") > result.median("VZ")
    assert result.median("MOB") >= result.median("VZ")
    # All networks in the paper's tens-of-ms band.
    for curve in result.curves:
        assert 35.0 <= curve.stats.median <= 110.0
