"""Figure 11 benchmark: MPTCP vs single-path throughput time series."""

import numpy as np

from benchmarks.conftest import print_rows
from repro.experiments import fig11_mptcp_trace


def test_fig11_mptcp_trace(benchmark):
    result = benchmark.pedantic(
        fig11_mptcp_trace.run,
        kwargs=dict(
            duration_s=120,
            seed=11,
            segment_bytes=6000,
            combos=("MOB+VZ",),  # MOB+ATT available via the experiment module
        ),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 11: combo, series, mean Mbps, peak Mbps", result)
    for combo in ("MOB+VZ",):
        panel = result.panel(combo)
        print(
            f"    {combo}: MPTCP >= 0.9x best path in "
            f"{panel.mptcp_at_least_best_fraction:.0%} of seconds; "
            f"peak {panel.peak_mbps:.0f} Mbps"
        )
        # MPTCP tracks or exceeds the better path most of the time.
        assert panel.mptcp_at_least_best_fraction > 0.45
        labels = [l for l in panel.series if l != "MPTCP"]
        best_mean = max(np.mean(panel.series[l]) for l in labels)
        assert np.mean(panel.series["MPTCP"]) > 0.9 * best_mean
        # Aggregation peaks above either single path's own peak (the
        # paper's ">300 Mbps which neither network reaches alone").
        best_peak = max(np.max(panel.series[l]) for l in labels)
        assert panel.peak_mbps > 0.9 * best_peak
