"""Section 3.3 benchmark: the campaign dataset totals.

Paper: 1,239 network tests, 9,083 minutes of traces, >3,800 km, area mix
29.78 / 34.30 / 35.91 % (urban / suburban / rural).  The paper-scale
campaign is heavy (~full drive simulation), so this bench reports the
medium scale by default and checks proportions, not absolute totals;
run ``fig_dataset_paper_scale`` below for the full-scale totals.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.experiments import dataset_summary
from repro.geo.classify import AreaType


def test_dataset_summary(benchmark, medium_dataset):
    result = benchmark.pedantic(
        dataset_summary.run,
        kwargs=dict(scale="medium", seed=0),
        rounds=1,
        iterations=1,
    )
    print_rows("Section 3.3: campaign totals (medium scale)", result)
    assert result.num_tests > 100
    assert result.distance_km > 50.0
    shares = result.area_proportions
    assert sum(shares.values()) == pytest.approx(1.0)
    # Every area type is substantially represented, like the paper's
    # 30/34/36 split.
    for area in AreaType:
        assert 0.10 <= shares[area] <= 0.60, (area, shares[area])


@pytest.mark.slow
def test_dataset_paper_scale(benchmark):
    """Full-scale totals (several minutes); run explicitly with -m slow."""
    result = benchmark.pedantic(
        dataset_summary.run,
        kwargs=dict(scale="paper", seed=0),
        rounds=1,
        iterations=1,
    )
    print_rows("Section 3.3: campaign totals (paper scale)", result)
    assert result.num_tests > 800
    assert result.distance_km > 2500.0
