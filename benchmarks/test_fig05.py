"""Figure 5 benchmark: TCP retransmission rates (packet-level runs)."""

from benchmarks.conftest import print_rows
from repro.experiments import fig05_loss


def test_fig05_loss(benchmark):
    result = benchmark.pedantic(
        fig05_loss.run,
        kwargs=dict(duration_s=60, seed=3, segment_bytes=6000),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 5: network, direction, retransmission rate", result)
    print(
        f"    starlink mean {result.starlink_mean:.4f} "
        f"(paper 0.003-0.013), cellular mean {result.cellular_mean:.4f}"
    )
    # Starlink loss dominates cellular loss in both directions.
    assert result.starlink_mean > 2.0 * result.cellular_mean
    # Starlink retransmission in (or near) the paper's 0.3-1.3 % band.
    assert 0.002 <= result.starlink_mean <= 0.05
