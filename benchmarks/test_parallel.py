"""Campaign scaling benchmark: 1 vs N workers on the small campaign.

Runs ``CampaignConfig.small(drives=4)`` serially and sharded across
``REPRO_BENCH_WORKERS`` (default 4) worker processes, asserts the two
checkpoints are byte-identical (the parallel-campaign invariant at full
small() scale), and writes ``BENCH_parallel.json`` at the repo root —
the machine-readable scaling baseline, next to ``BENCH_obs.json``.
Speedup is hardware-bound: expect ~Nx on an N-core runner and ~1x (pool
overhead only) on a single core; the JSON records ``cpu_count`` so a
reader can judge the number it was produced on.
"""

import json
import os
import time

from repro.core.campaign import Campaign, CampaignConfig

#: Where the scaling baseline lands (repo root, next to BENCH_obs.json).
_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)

WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))


def test_parallel_scaling_small_campaign(tmp_path):
    runs = []
    checkpoints = {}
    for workers in (1, WORKERS):
        config = CampaignConfig.small(drives=4)
        config.workers = workers
        ckpt = tmp_path / f"w{workers}.ckpt.json"
        started = time.perf_counter()
        dataset = Campaign(config).run(checkpoint_path=ckpt)
        wall = time.perf_counter() - started
        runs.append(
            {
                "workers": workers,
                "wall_s": round(wall, 3),
                "num_tests": dataset.num_tests,
            }
        )
        checkpoints[workers] = ckpt.read_bytes()

    # The equivalence invariant, at full small() scale.
    assert checkpoints[1] == checkpoints[WORKERS]

    speedup = runs[0]["wall_s"] / max(runs[1]["wall_s"], 1e-9)
    payload = {
        "format": "repro.bench.parallel",
        "version": 1,
        "config": "CampaignConfig.small(drives=4)",
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "speedup_at_n_workers": round(speedup, 3),
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n=== parallel scaling (cpu_count={os.cpu_count()}) ===")
    for run in runs:
        print(f"    workers={run['workers']}: {run['wall_s']} s")
    print(f"    speedup: {speedup:.2f}x")
