"""Fast-path benchmark: the vectorized campaign vs. the committed baseline.

Runs the ``medium`` campaign (the same workload the ``medium_dataset``
fixture in ``BENCH_obs.json`` times) through the fast path ``REPEATS``
times and through the reference path once, asserts every run produces
the same dataset digest (the byte-identity contract at benchmark scale),
and writes ``BENCH_fastpath.json`` at the repo root.

Two speedups are recorded:

* ``speedup_vs_baseline`` — best fast wall vs. the committed
  ``BENCH_obs.json`` ``medium_dataset`` fixture wall.  This is the
  acceptance number (must stay >= 10x) and is only meaningful on
  hardware comparable to where the baseline was recorded.
* ``speedup_vs_reference`` — best fast wall vs. the same-run reference
  wall.  Hardware-independent; the CI bench gate
  (``benchmarks/check_fastpath_gate.py``) regresses against it.

The best-of-``REPEATS`` wall is used because minimum wall time is the
standard load-noise-robust estimator for a deterministic workload.
"""

import hashlib
import json
import os
import time
from dataclasses import replace

from repro.core.campaign import Campaign
from repro.core.dataset import record_to_dict
from repro.experiments.common import config_for_scale

#: Where the fast-path baseline lands (repo root, next to BENCH_obs.json).
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH_PATH = os.path.join(_ROOT, "BENCH_fastpath.json")
_OBS_PATH = os.path.join(_ROOT, "BENCH_obs.json")

REPEATS = int(os.environ.get("REPRO_BENCH_FASTPATH_REPEATS", "3"))

#: The acceptance bar: fast path at least this much faster than the
#: committed medium_dataset fixture wall.
MIN_SPEEDUP_VS_BASELINE = 10.0

#: Enforce the acceptance bar in-process.  On by default (refreshing the
#: committed artifact must prove the bar); the CI bench gate turns it
#: off because its runners are not the baseline hardware — there the
#: hardware-portable ratio checks in check_fastpath_gate.py decide.
REQUIRE_BASELINE = os.environ.get("REPRO_BENCH_REQUIRE_BASELINE", "1") != "0"


def _digest(dataset) -> str:
    blob = json.dumps(
        [record_to_dict(r) for r in dataset.records], sort_keys=True
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def _baseline_wall_s() -> float:
    with open(_OBS_PATH) as handle:
        payload = json.load(handle)
    for fixture in payload["fixtures"]:
        if fixture["name"] == "medium_dataset":
            return float(fixture["wall_s"])
    raise AssertionError("BENCH_obs.json has no medium_dataset fixture")


def test_fastpath_speedup_on_medium_campaign():
    config = config_for_scale("medium", seed=0)
    fast_walls = []
    digests = set()
    for _ in range(REPEATS):
        started = time.perf_counter()
        dataset = Campaign(config).run()
        fast_walls.append(round(time.perf_counter() - started, 3))
        digests.add(_digest(dataset))

    started = time.perf_counter()
    reference = Campaign(replace(config, fastpath=False)).run()
    reference_wall = round(time.perf_counter() - started, 3)
    digests.add(_digest(reference))
    # Byte-identity at benchmark scale: every fast repeat and the
    # reference run hash to one digest.
    assert len(digests) == 1, digests

    fast_wall = min(fast_walls)
    baseline_wall = _baseline_wall_s()
    speedup_vs_baseline = baseline_wall / fast_wall
    speedup_vs_reference = reference_wall / fast_wall
    if REQUIRE_BASELINE:
        assert speedup_vs_baseline >= MIN_SPEEDUP_VS_BASELINE, (
            f"fast path is {speedup_vs_baseline:.2f}x vs the committed "
            f"medium_dataset baseline ({baseline_wall} s); the acceptance "
            f"bar is {MIN_SPEEDUP_VS_BASELINE}x"
        )

    payload = {
        "format": "repro.bench.fastpath",
        "version": 1,
        "config": 'config_for_scale("medium", seed=0)',
        "cpu_count": os.cpu_count(),
        "baseline": {
            "source": "BENCH_obs.json",
            "fixture": "medium_dataset",
            "wall_s": baseline_wall,
        },
        "dataset_digest": digests.pop(),
        "fast_walls_s": fast_walls,
        "fast_wall_s": fast_wall,
        "reference_wall_s": reference_wall,
        "min_speedup_vs_baseline": MIN_SPEEDUP_VS_BASELINE,
        "speedup_vs_baseline": round(speedup_vs_baseline, 3),
        "speedup_vs_reference": round(speedup_vs_reference, 3),
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n=== fastpath (cpu_count={os.cpu_count()}) ===")
    print(f"    fast walls: {fast_walls} s (best {fast_wall} s)")
    print(f"    reference wall: {reference_wall} s")
    print(f"    speedup vs committed baseline: {speedup_vs_baseline:.2f}x")
    print(f"    speedup vs same-run reference: {speedup_vs_reference:.2f}x")
