"""Ablations for the transport-level calls-to-action in the paper.

* Congestion control on the Starlink channel: the paper's Section 1 calls
  for "better congestion control or FEC algorithms tailored for such
  characteristics" — this bench compares CUBIC and Reno on the same
  Starlink trace so future algorithms have a baseline pair.
* Dish-plan decomposition: which of Mobility's three advantages (field of
  view, tracking agility, network priority) buys the Roam->Mobility gap.
"""

import numpy as np

from repro.experiments.common import collect_conditions
from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint
from repro.geo.places import PlaceDatabase
from repro.leo.channel import StarlinkChannel
from repro.leo.dish import DishModel, DishPlan, mobility_dish, roam_dish
from repro.rng import RngStreams
from repro.tools.iperf import run_tcp_test

DURATION_S = 60
SEGMENT_BYTES = 6000


def test_ablation_congestion_control(benchmark):
    traces = collect_conditions(duration_s=DURATION_S, seed=3)

    def run_both():
        return {
            cc: run_tcp_test(
                traces["MOB"],
                duration_s=float(DURATION_S),
                congestion=cc,
                segment_bytes=SEGMENT_BYTES,
                seed=3,
            ).throughput_mbps
            for cc in ("cubic", "reno")
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\n=== Ablation: congestion control on the Starlink channel ===")
    for cc, mbps in results.items():
        print(f"    {cc:<6} {mbps:6.1f} Mbps")
    assert all(v > 0 for v in results.values())


def _dish_throughput(dish: DishModel, seed: int = 3) -> float:
    """Mean fluid UDP downlink over a fixed suburban drive segment."""
    rng = RngStreams(seed)
    places = PlaceDatabase.synthetic(rng)
    channel = StarlinkChannel(dish, places=places, rng=rng)
    position = GeoPoint(44.5, -92.0)
    values = []
    for t in range(600):
        sample = channel.sample(float(t), position, 90.0, AreaType.SUBURBAN)
        values.append(sample.downlink_mbps * (1.0 - sample.loss_rate))
    return float(np.mean(values))


def test_ablation_dish_decomposition(benchmark):
    """Upgrade Roam toward Mobility one mechanism at a time."""
    rm, mob = roam_dish(), mobility_dish()
    variants = {
        "roam": rm,
        "+fov": DishModel(
            plan=DishPlan.ROAM,
            min_elevation_deg=mob.min_elevation_deg,
            peak_downlink_mbps=rm.peak_downlink_mbps,
            peak_uplink_mbps=rm.peak_uplink_mbps,
            motion_tracking_factor=rm.motion_tracking_factor,
            priority_weight=rm.priority_weight,
            motion_loss_extra=rm.motion_loss_extra,
        ),
        "+tracking": DishModel(
            plan=DishPlan.ROAM,
            min_elevation_deg=mob.min_elevation_deg,
            peak_downlink_mbps=rm.peak_downlink_mbps,
            peak_uplink_mbps=rm.peak_uplink_mbps,
            motion_tracking_factor=mob.motion_tracking_factor,
            priority_weight=rm.priority_weight,
            motion_loss_extra=mob.motion_loss_extra,
        ),
        "+priority": DishModel(
            plan=DishPlan.ROAM,
            min_elevation_deg=mob.min_elevation_deg,
            peak_downlink_mbps=rm.peak_downlink_mbps,
            peak_uplink_mbps=rm.peak_uplink_mbps,
            motion_tracking_factor=mob.motion_tracking_factor,
            priority_weight=mob.priority_weight,
            motion_loss_extra=mob.motion_loss_extra,
        ),
        "mobility": mob,
    }

    def run_all():
        return {name: _dish_throughput(dish) for name, dish in variants.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== Ablation: Roam -> Mobility mechanism decomposition ===")
    for name, mbps in results.items():
        print(f"    {name:<10} {mbps:6.1f} Mbps")
    # Each cumulative upgrade should not hurt, and the full Mobility dish
    # (with its larger phased array / peak rate) tops the list.
    assert results["mobility"] > results["roam"]
    assert results["+priority"] >= results["+fov"] * 0.9
