"""Figure 6 benchmark: throughput vs vehicle speed (rural samples)."""

from benchmarks.conftest import print_rows
from repro.experiments import fig06_speed


def test_fig06_speed(benchmark, medium_dataset):
    result = benchmark.pedantic(
        fig06_speed.run,
        kwargs=dict(scale="medium", seed=0),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 6: speed bucket, MOB mean Mbps, cellular mean Mbps", result
    )
    print(
        f"    variation coefficients — starlink "
        f"{result.starlink.variation_coefficient:.2f}, cellular "
        f"{result.cellular.variation_coefficient:.2f} (paper: ~flat)"
    )
    # The paper's finding: throughput is essentially flat across speeds.
    assert result.starlink.variation_coefficient < 0.45
    assert result.cellular.variation_coefficient < 0.45
