"""Figure 8 benchmark: UDP downlink throughput by area type."""

from benchmarks.conftest import print_rows
from repro.experiments import fig08_area
from repro.geo.classify import AreaType


def test_fig08_area(benchmark, medium_dataset):
    result = benchmark.pedantic(
        fig08_area.run,
        kwargs=dict(scale="medium", seed=0),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 8: group, area, median, mean, p75 (Mbps)", result
    )
    # The crossover: cellular falls urban->rural, Starlink rises.
    assert result.median("Cellular", AreaType.URBAN) > result.median(
        "Cellular", AreaType.RURAL
    )
    assert result.median("MOB", AreaType.RURAL) > result.median(
        "MOB", AreaType.URBAN
    )
    # Starlink beats cellular outside cities (Section 5.1).
    assert result.median("MOB", AreaType.SUBURBAN) > result.median(
        "Cellular", AreaType.SUBURBAN
    )
    assert result.median("MOB", AreaType.RURAL) > result.median(
        "Cellular", AreaType.RURAL
    )
