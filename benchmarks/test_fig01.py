"""Figure 1 benchmark: five-network download throughput timeline."""

from benchmarks.conftest import print_rows
from repro.experiments import fig01_motivation


def test_fig01_motivation(benchmark):
    result = benchmark.pedantic(
        fig01_motivation.run,
        kwargs=dict(duration_s=1200, seed=7),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 1: per-network mean/median Mbps + lead share", result)
    print(
        f"    starlink-wins fraction: {result.starlink_wins_fraction:.2f}, "
        f"lead changes: {result.lead_changes}"
    )
    # Motivation shape: alternating winners over the drive.
    assert 0.05 < result.starlink_wins_fraction < 0.95
    assert result.lead_changes > 10
