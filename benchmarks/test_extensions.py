"""Extension benches: the paper's future-work items, quantified.

* ``ext-fec`` — FEC recovers most of the Starlink TCP-vs-UDP gap at
  single-digit overhead (Section 1's call to action).
* ``ext-scheduler`` — a LEO-reconfiguration-aware MPTCP scheduler vs the
  stock schedulers (Section 6's future work).
"""

from benchmarks.conftest import print_rows
from repro.experiments import ext_fec, ext_scheduler


def test_ext_fec(benchmark):
    result = benchmark.pedantic(
        ext_fec.run,
        kwargs=dict(duration_s=60, seed=3, segment_bytes=6000),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Extension: transport, goodput Mbps, overhead, block-loss", result
    )
    udp = result.row("UDP (ceiling)").goodput_mbps
    tcp = result.row("TCP (baseline)").goodput_mbps
    fec = result.row("FEC k=20 r=4").goodput_mbps
    print(f"    FEC recovers {(fec - tcp) / max(udp - tcp, 1e-9):.0%} of the TCP-UDP gap")
    assert fec > tcp  # FEC beats collapsed TCP
    assert fec <= udp * 1.02  # cannot exceed the ceiling


def test_ext_scheduler(benchmark):
    result = benchmark.pedantic(
        ext_scheduler.run,
        kwargs=dict(duration_s=90, seed=11, segment_bytes=6000),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Extension: scheduler, goodput Mbps, fluctuation (cv)", result
    )
    sataware = result.row("sataware")
    blest = result.row("blest")
    # The LEO-aware scheduler must be throughput-competitive...
    assert sataware.goodput_mbps > 0.85 * blest.goodput_mbps
