"""CI bench gate: a fresh fast-path measurement vs. the committed baseline.

Usage::

    python benchmarks/check_fastpath_gate.py FRESH.json \
        --baseline BENCH_fastpath.json [--max-regression 0.20]

CI runners are slower (and noisier) than the machine the committed
``BENCH_fastpath.json`` was recorded on, so absolute wall times cannot
be gated across hardware.  The gate therefore checks two
hardware-portable facts:

1. the *committed* artifact proves the acceptance speedup — its
   ``speedup_vs_baseline`` meets its own ``min_speedup_vs_baseline``
   (>= 10x vs. the ``BENCH_obs.json`` ``medium_dataset`` wall); and
2. the *fresh* fast-vs-reference ratio (both sides measured in the same
   run, on the same machine) has not regressed more than
   ``--max-regression`` (default 20%) below the committed ratio.

Exit status 0 when both hold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json


def evaluate(
    fresh: dict, committed: dict, max_regression: float = 0.20
) -> list[str]:
    """Gate failures (empty when the fresh measurement passes)."""
    failures: list[str] = []
    required = float(committed.get("min_speedup_vs_baseline", 10.0))
    recorded = float(committed.get("speedup_vs_baseline", 0.0))
    if recorded < required:
        failures.append(
            f"committed speedup_vs_baseline {recorded:.2f}x is below the "
            f"required {required:.2f}x"
        )
    committed_ratio = float(committed.get("speedup_vs_reference", 0.0))
    fresh_ratio = float(fresh.get("speedup_vs_reference", 0.0))
    floor = committed_ratio * (1.0 - max_regression)
    if fresh_ratio < floor:
        failures.append(
            f"fresh speedup_vs_reference {fresh_ratio:.2f}x regressed more "
            f"than {max_regression:.0%} below the committed "
            f"{committed_ratio:.2f}x (floor {floor:.2f}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured BENCH_fastpath.json")
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed BENCH_fastpath.json to gate against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop in speedup_vs_reference (default 0.20)",
    )
    args = parser.parse_args(argv)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    with open(args.baseline) as handle:
        committed = json.load(handle)
    failures = evaluate(fresh, committed, args.max_regression)
    if failures:
        for failure in failures:
            print(f"bench-gate: FAIL: {failure}")
        return 1
    print(
        "bench-gate: ok "
        f"(committed {committed.get('speedup_vs_baseline')}x vs baseline, "
        f"fresh {fresh.get('speedup_vs_reference')}x vs reference)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
