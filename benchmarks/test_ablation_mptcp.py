"""Ablations for the MPTCP design choices the paper discusses (Section 6).

* Scheduler: BLEST (the kernel default) vs minRTT vs round-robin — the
  paper leaves scheduler design for LEO paths as future work; this bench
  quantifies the gap on our Starlink+cellular path pair.
* Receive buffer: a sweep across the paper's tuning knob, locating the
  cliff between "marginal gains" and full aggregation.
"""

import pytest

from repro.experiments.common import collect_conditions
from repro.tools.iperf import run_mptcp_test

DURATION_S = 60
SEGMENT_BYTES = 6000


@pytest.fixture(scope="module")
def combo_traces():
    traces = collect_conditions(duration_s=DURATION_S, seed=11)
    return {"MOB": traces["MOB"], "VZ": traces["VZ"]}


def test_ablation_scheduler(benchmark, combo_traces):
    def run_all():
        return {
            name: run_mptcp_test(
                combo_traces,
                duration_s=float(DURATION_S),
                scheduler=name,
                buffer_segments=8192,
                segment_bytes=SEGMENT_BYTES,
                seed=11,
            ).throughput_mbps
            for name in ("blest", "minrtt", "roundrobin")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== Ablation: MPTCP scheduler (MOB+VZ, tuned buffers) ===")
    for name, mbps in results.items():
        print(f"    {name:<10} {mbps:6.1f} Mbps")
    # With generous buffers all schedulers should aggregate.
    assert min(results.values()) > 0.5 * max(results.values())


def test_ablation_buffer_sweep(benchmark, combo_traces):
    sizes = (32, 256, 2048, 8192)

    def run_sweep():
        return {
            size: run_mptcp_test(
                combo_traces,
                duration_s=float(DURATION_S),
                buffer_segments=size,
                segment_bytes=SEGMENT_BYTES,
                seed=11,
            ).throughput_mbps
            for size in sizes
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\n=== Ablation: MPTCP meta receive buffer (MOB+VZ) ===")
    for size, mbps in results.items():
        print(f"    {size:>5} segments ({size * SEGMENT_BYTES // 1024:>6} kB): {mbps:6.1f} Mbps")
    # The paper's cliff: the untuned-size buffer throttles, and every
    # tuned size clears it decisively.  Beyond the cliff the curve is
    # noisy (over-scheduling a flaky satellite path can make the largest
    # buffer slightly worse than a mid-size one), so no monotonicity is
    # asserted past 256 segments.
    assert results[8192] > 1.3 * results[32]
    assert min(results[256], results[2048], results[8192]) > 1.5 * results[32]
