"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the reproduced rows (the same rows/series the paper reports) so a run of
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction log.
Durations are scaled-down versions of the paper's tests; EXPERIMENTS.md
records the scaling and the paper-vs-measured comparison.

The session also times every benchmark through :mod:`repro.obs` spans
and writes ``BENCH_obs.json`` at the repo root — the machine-readable
wall-time baseline future perf PRs are compared against.
"""

import json
import os

import pytest

from repro.obs import ObsRecorder

#: Recorder shared by the whole benchmark session.
_RECORDER = ObsRecorder()

#: Where the timing baseline lands (repo root, next to EXPERIMENTS.md).
_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_obs.json"
)


def print_rows(title: str, result) -> None:
    """Uniform reproduction-log output for a figure's rows."""
    print(f"\n=== {title} ===")
    for row in result.rows():
        print("   ", *row)


@pytest.fixture(scope="session")
def medium_dataset():
    """One shared medium campaign for the distribution figures."""
    from repro.experiments.common import campaign_dataset

    with _RECORDER.span("benchmark.fixture", name="medium_dataset"):
        return campaign_dataset("medium", 0)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Wrap each benchmark's call phase in an obs span."""
    with _RECORDER.span("benchmark", test=item.nodeid):
        yield


def pytest_sessionfinish(session, exitstatus):
    """Persist per-benchmark wall times (only when something was timed)."""
    spans = _RECORDER.tracer.by_name("benchmark")
    if not spans:
        return
    fixtures = [
        {"name": s.meta.get("name", "?"), "wall_s": round(s.duration_s, 6)}
        for s in _RECORDER.tracer.by_name("benchmark.fixture")
    ]
    if not fixtures and os.path.exists(_BENCH_PATH):
        with open(_BENCH_PATH) as handle:
            if json.load(handle).get("fixtures"):
                # Partial session (e.g. the CI bench gate running only
                # benchmarks/test_fastpath.py): never replace a baseline
                # that timed the shared fixtures with one that didn't.
                return
    payload = {
        "format": "repro.obs.bench",
        "version": 1,
        "timings": _RECORDER.tracer.timings(),
        "benchmarks": [
            {"test": s.meta.get("test", "?"), "wall_s": round(s.duration_s, 6)}
            for s in sorted(spans, key=lambda s: s.meta.get("test", ""))
        ],
        "fixtures": fixtures,
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
