"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the reproduced rows (the same rows/series the paper reports) so a run of
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction log.
Durations are scaled-down versions of the paper's tests; EXPERIMENTS.md
records the scaling and the paper-vs-measured comparison.
"""

import pytest


def print_rows(title: str, result) -> None:
    """Uniform reproduction-log output for a figure's rows."""
    print(f"\n=== {title} ===")
    for row in result.rows():
        print("   ", *row)


@pytest.fixture(scope="session")
def medium_dataset():
    """One shared medium campaign for the distribution figures."""
    from repro.experiments.common import campaign_dataset

    return campaign_dataset("medium", 0)
