"""Figure 3 benchmark: throughput CDFs (TCP/UDP, RM/MOB, UL/DL)."""

from benchmarks.conftest import print_rows
from repro.experiments import fig03_throughput


def test_fig03_throughput(benchmark, medium_dataset):
    result = benchmark.pedantic(
        fig03_throughput.run,
        kwargs=dict(scale="medium", seed=0),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 3: panel, curve, mean, median (Mbps)", result)
    print(
        f"    MOB TCP/UDP gap: {result.tcp_udp_gap:.2f} (paper ~0.23 = 29/128)\n"
        f"    MOB/RM: {result.mobility_over_roam:.2f}x (paper ~2x)\n"
        f"    DL/UL: {result.downlink_over_uplink:.1f}x (paper ~10x)"
    )
    # Paper shapes.
    assert result.tcp_udp_gap < 0.45  # Starlink TCP collapses
    assert 1.4 <= result.mobility_over_roam <= 3.5  # MOB ~2x RM
    assert 7.0 <= result.downlink_over_uplink <= 13.0  # FDD ~10x
