"""Figure 7 benchmark: TCP parallelism gains (1/4/8 connections)."""

from benchmarks.conftest import print_rows
from repro.experiments import fig07_parallelism


def test_fig07_parallelism(benchmark):
    result = benchmark.pedantic(
        fig07_parallelism.run,
        kwargs=dict(
            duration_s=60, seed=3, segment_bytes=6000, repeats=1
        ),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 7: network, N connections, Mbps, improvement % over 1P",
        result,
    )
    rm = result.row("RM")
    vz = result.row("VZ")
    # Paper: Starlink gains >50 % at 4P and >130 % at 8P; cellular far less.
    assert rm.improvement(4) > 10.0
    assert rm.improvement(8) > 25.0
    assert rm.improvement(8) > vz.improvement(8)
