"""Figure 9 benchmark: performance-coverage shares + combinations."""

from benchmarks.conftest import print_rows
from repro.experiments import fig09_coverage


def test_fig09_coverage(benchmark, medium_dataset):
    result = benchmark.pedantic(
        fig09_coverage.run,
        kwargs=dict(scale="medium", seed=0),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 9: network, <20, 20-50, 50-100, >100 Mbps shares", result
    )
    bars = {b.name: b for b in result.bars}
    print(
        f"    MOB high {bars['MOB'].high:.2f} (paper 0.6061); "
        f"VZ {bars['VZ'].high:.2f} (0.4439); TM {bars['TM'].high:.2f} (0.4247); "
        f"RM low-or-worse {bars['RM'].low_or_worse:.2f} (0.3988); "
        f"ATT low-or-worse {bars['ATT'].low_or_worse:.2f} (0.5345)"
    )
    # Paper's ordering and combination effects.
    assert bars["MOB"].high == max(
        bars[n].high for n in ("ATT", "TM", "VZ", "RM", "MOB")
    )
    assert bars["ATT"].high == min(bars[n].high for n in ("ATT", "TM", "VZ"))
    assert bars["BestCL"].high >= max(bars[n].high for n in ("ATT", "TM", "VZ"))
    assert bars["RM+CL"].high > bars["RM"].high
    assert bars["MOB+CL"].high > bars["MOB"].high
    # Headline magnitudes within a loose band of the paper's values.
    assert 0.45 <= bars["MOB"].high <= 0.8
    assert 0.30 <= bars["VZ"].high <= 0.6
    assert 0.25 <= bars["RM"].low_or_worse <= 0.55
