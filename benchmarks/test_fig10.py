"""Figure 10 benchmark: single-path TCP vs MPTCP (tuned/untuned buffers)."""

from benchmarks.conftest import print_rows
from repro.experiments import fig10_mptcp_box


def test_fig10_mptcp_box(benchmark):
    result = benchmark.pedantic(
        fig10_mptcp_box.run,
        kwargs=dict(
            duration_s=120,
            seed=11,
            segment_bytes=6000,
            repeats=1,
            combos=("MOB+VZ",),  # MOB+ATT available via the experiment module
        ),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 10: configuration, mean Mbps over runs", result)
    for combo in ("MOB+VZ",):
        print(
            f"    {combo}: tuned improvement over better path "
            f"{result.improvement_over_better_path(combo):+.0f}% "
            f"(paper +30%/+66%), utilization "
            f"{result.utilization(combo):.0%} (paper 81-84%)"
        )
    for combo in ("MOB+VZ",):
        tuned = result.box(f"{combo} tuned").mean
        untuned = result.box(f"{combo} untuned").mean
        starlink, cellular = combo.split("+")
        better = max(result.box(starlink).mean, result.box(cellular).mean)
        # Tuned MPTCP beats the better single path; untuned trails tuned.
        assert tuned > better
        assert tuned > untuned
        assert result.utilization(combo) > 0.4
