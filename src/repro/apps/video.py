"""Video-streaming QoE over a throughput trace.

The paper's cost-benefit argument for the Roam plan (Section 4.1) rests on
an application claim: "the network requirements of most applications such
as 1080P video streaming can already be met by Roam."  This module makes
that claim testable: a buffer-based adaptive-bitrate (ABR) player consumes
a per-second throughput series, picks renditions from a ladder, and
reports time-at-quality and rebuffering — the standard QoE decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: A conventional HD bitrate ladder (Mbps), 240p .. 4K.
DEFAULT_LADDER_MBPS = (0.4, 1.0, 2.5, 5.0, 8.0, 16.0)

#: Ladder index regarded as 1080p in the default ladder (5 Mbps).
HD_1080P_INDEX = 3


@dataclass(frozen=True)
class PlayerConfig:
    """Buffer-based ABR in the BBA spirit."""

    ladder_mbps: tuple[float, ...] = DEFAULT_LADDER_MBPS
    #: Seconds of video the player tries to keep buffered.
    target_buffer_s: float = 20.0
    #: Below this buffer level the player drops to the lowest rendition.
    panic_buffer_s: float = 5.0
    #: Playback starts after this much video is buffered.
    startup_buffer_s: float = 2.0
    #: Segment duration (seconds of video per fetch decision).
    segment_s: float = 2.0

    def __post_init__(self) -> None:
        if not self.ladder_mbps or any(b <= 0 for b in self.ladder_mbps):
            raise ValueError("ladder must contain positive bitrates")
        if list(self.ladder_mbps) != sorted(self.ladder_mbps):
            raise ValueError("ladder must be sorted ascending")
        if self.panic_buffer_s >= self.target_buffer_s:
            raise ValueError("panic level must be below the target buffer")


@dataclass
class StreamingSession:
    """QoE outcome of playing over one throughput trace."""

    seconds_at_rendition: dict[int, float] = field(default_factory=dict)
    rebuffer_s: float = 0.0
    startup_delay_s: float = 0.0
    bitrate_switches: int = 0
    played_s: float = 0.0
    ladder_mbps: tuple[float, ...] = DEFAULT_LADDER_MBPS

    @property
    def rebuffer_ratio(self) -> float:
        total = self.played_s + self.rebuffer_s
        return self.rebuffer_s / total if total > 0 else 0.0

    def time_at_or_above(self, rendition_index: int) -> float:
        """Fraction of played time at or above a ladder index."""
        if self.played_s <= 0:
            return 0.0
        good = sum(
            seconds
            for idx, seconds in self.seconds_at_rendition.items()
            if idx >= rendition_index
        )
        return good / self.played_s

    @property
    def mean_bitrate_mbps(self) -> float:
        if self.played_s <= 0:
            return 0.0
        weighted = sum(
            self.ladder_mbps[idx] * seconds
            for idx, seconds in self.seconds_at_rendition.items()
            if idx < len(self.ladder_mbps)
        )
        return weighted / self.played_s


def play_video(
    throughput_mbps: list[float],
    config: PlayerConfig | None = None,
) -> StreamingSession:
    """Simulate a buffer-based ABR player over a 1 Hz throughput series.

    Each simulated second the player downloads video at the network rate
    into its buffer (at the chosen rendition's cost per video-second) and
    plays one second out of it, stalling when the buffer is empty.
    """
    config = config or PlayerConfig()
    ladder = config.ladder_mbps
    session = StreamingSession(ladder_mbps=tuple(ladder))

    buffer_s = 0.0
    started = False
    rendition = 0
    for second, rate in enumerate(throughput_mbps):
        if rate < 0:
            raise ValueError(f"negative throughput at second {second}")
        # ABR decision (per second; segment granularity folded in).
        previous = rendition
        if buffer_s <= config.panic_buffer_s:
            rendition = 0
        else:
            # Highest rendition sustainable at the recent rate with margin,
            # nudged up when the buffer is comfortable.
            sustainable = [
                i for i, b in enumerate(ladder) if b <= 0.85 * rate
            ]
            candidate = sustainable[-1] if sustainable else 0
            if buffer_s >= config.target_buffer_s:
                candidate = min(candidate + 1, len(ladder) - 1)
            rendition = candidate
        if started and rendition != previous:
            session.bitrate_switches += 1

        # Download: one wall second of network time buys rate/bitrate
        # seconds of video (capped at the buffer target).
        bitrate = ladder[rendition]
        gained_s = rate / bitrate
        buffer_s = min(buffer_s + gained_s, config.target_buffer_s + 10.0)

        if not started:
            session.startup_delay_s += 1.0
            if buffer_s >= config.startup_buffer_s:
                started = True
            continue

        # Playback: consume one second if available, else rebuffer.
        if buffer_s >= 1.0:
            buffer_s -= 1.0
            session.played_s += 1.0
            session.seconds_at_rendition[rendition] = (
                session.seconds_at_rendition.get(rendition, 0.0) + 1.0
            )
        else:
            session.rebuffer_s += 1.0
    return session


@dataclass
class VideoVerdict:
    """The paper's application question, answered for one network."""

    network: str
    hd_time_share: float  # played time at >= 1080p
    rebuffer_ratio: float
    mean_bitrate_mbps: float

    @property
    def supports_hd(self) -> bool:
        """'Meets 1080p requirements': mostly-HD playback without stalls.

        In motion, brief obstruction-driven quality dips are inevitable;
        the bar is >= 60 % of played time at 1080p+ with < 3 % rebuffering
        (stalls hurt QoE far more than rendition dips).
        """
        return self.hd_time_share >= 0.6 and self.rebuffer_ratio < 0.03


def evaluate_network(
    network: str, throughput_mbps: list[float], config: PlayerConfig | None = None
) -> VideoVerdict:
    """Play one trace and summarize it as a verdict."""
    session = play_video(throughput_mbps, config)
    return VideoVerdict(
        network=network,
        hd_time_share=session.time_at_or_above(HD_1080P_INDEX),
        rebuffer_ratio=session.rebuffer_ratio,
        mean_bitrate_mbps=session.mean_bitrate_mbps,
    )
