"""Application QoE models built on the network traces."""

from repro.apps.video import (
    DEFAULT_LADDER_MBPS,
    HD_1080P_INDEX,
    PlayerConfig,
    StreamingSession,
    VideoVerdict,
    evaluate_network,
    play_video,
)

__all__ = [
    "DEFAULT_LADDER_MBPS",
    "HD_1080P_INDEX",
    "PlayerConfig",
    "StreamingSession",
    "VideoVerdict",
    "evaluate_network",
    "play_video",
]
