"""Admission control: bounded queue depth and a concurrency budget.

The service sheds load at the front door rather than degrading under
it: beyond ``max_queue_depth`` pending jobs a submission fails *fast*
with the typed :class:`AdmissionRejected` (in-process submitters catch
it; filesystem submitters see a journaled ``rejected`` state), and at
most ``max_concurrent`` jobs execute at once however deep the queue is.
Rejection is cheap and stateless by design — the journal never grows on
a rejected in-process submission, so an abusive submitter cannot bloat
the WAL.
"""

from __future__ import annotations

from dataclasses import dataclass


class AdmissionRejected(RuntimeError):
    """The service is at capacity; the submission was not accepted.

    Carries enough to make the rejection actionable: the job id the
    spec would have been admitted under, and the depth/bound pair that
    tripped.
    """

    def __init__(self, job_id: str, depth: int, max_queue_depth: int):
        self.job_id = job_id
        self.depth = depth
        self.max_queue_depth = max_queue_depth
        super().__init__(
            f"queue full ({depth}/{max_queue_depth} pending): "
            f"submission {job_id} rejected"
        )


@dataclass(frozen=True)
class AdmissionControl:
    """The two capacity bounds, with validation."""

    max_queue_depth: int = 64
    max_concurrent: int = 1

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )

    def check(self, job_id: str, depth: int) -> None:
        """Raise :class:`AdmissionRejected` if ``depth`` is at capacity."""
        if depth >= self.max_queue_depth:
            raise AdmissionRejected(job_id, depth, self.max_queue_depth)
