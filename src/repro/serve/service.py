"""The campaign service: a crash-proof, journaled job queue.

``CampaignService`` owns one service *root* directory::

    <root>/
      journal.jsonl        # WAL job journal (repro.serve.journal)
      inbox/<job>.json     # filesystem submissions (repro.serve.client)
      control/             # cancel-<job>.json / drain.json requests
      cache/               # shared DriveCache across all jobs
      jobs/<job>/          # per-job artifacts:
        store/             #   sharded checkpoint (repro.store.ShardStore)
        dataset.json       #   the drive dataset
        manifest.json      #   the obs run manifest
        report.json        #   the campaign report
        failure.json       #   last typed failure (fork isolation only)

Every decision is WAL-ordered: the journal records a transition
*before* the service acts on it, so a SIGKILL at any instant leaves a
journal whose replay reconstructs exactly what was in flight.  Restart
recovery (:meth:`CampaignService.start`) then:

* re-admits jobs caught between ``submitted`` and ``admitted``;
* counts a ``crashed`` transition for every job found ``running`` —
  and quarantines it (``quarantined``, never requeued) once it has
  crashed ``poison_threshold`` times, because a job that keeps killing
  its host is indistinguishable from a poison submission;
* arcs gracefully-drained (``checkpointed``) jobs back to ``admitted``.

Resumed jobs re-enter ``Campaign.run`` pointed at their per-job shard
store, and drive-level determinism makes the resumed artifacts
byte-identical to an uninterrupted service run
(``tests/test_serve_crash.py`` proves this at every commit boundary).

Jobs execute through the existing campaign machinery — including the
supervised worker pool when a submission asks for ``workers > 1`` with
a retry/watchdog budget.  The service layer adds *job*-level isolation:
with ``isolation="fork"`` (the default where ``os.fork`` exists) each
job runs in a forked child with an optional wall-clock deadline
(``job_timeout_s``); a deadline blow or a child death is a
crash-classified failure.  ``isolation="inline"`` runs jobs in-process
(the crash harness uses this so an injected SIGKILL takes down service
and job together).

Typed (exception) failures never count as crashes: transient ones are
retried under the service's :class:`repro.resilience.RetryPolicy`
budget with seeded-jitter backoff, permanent ones fail the job
immediately — the taxonomy split of
:func:`repro.resilience.classify_exception`.

On SIGTERM the service drains: stops admitting, lets or asks running
jobs to checkpoint (inline jobs raise ``CampaignAborted`` after their
current drive; forked jobs get the SIGTERM forwarded), journals the
``checkpointed`` transitions, and returns normally so the process can
exit 0.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.campaign import Campaign
from repro.obs import ObsRecorder, get_recorder
from repro.resilience.policy import RetryPolicy
from repro.resilience.signals import graceful_shutdown
from repro.resilience.taxonomy import (
    CampaignAborted,
    FailureClass,
    classify_failure,
)
from repro.rng import RngStreams
from repro.serve.admission import AdmissionControl, AdmissionRejected
from repro.serve.jobs import (
    PENDING_STATES,
    InvalidSubmission,
    JobRecord,
    JobState,
    fold_event,
    job_id_for_spec,
    spec_to_config,
)
from repro.serve.journal import JOURNAL_NAME, JobJournal
from repro.store.cache import DriveCache
from repro.store.commit import atomic_write_json, fsync_dir

INBOX_DIR = "inbox"
CONTROL_DIR = "control"
JOBS_DIR = "jobs"
CACHE_DIR = "cache"
DRAIN_REQUEST = "drain.json"
CANCEL_PREFIX = "cancel-"

#: Exit code of a forked job child that checkpointed on SIGTERM
#: (EX_TEMPFAIL: "try again later" — exactly what a drained job is).
EXIT_CHECKPOINTED = 75

#: Test seam, in the spirit of ``repro.store.commit._CRASH_HOOK``: when
#: set, called with ``(job_id, attempt)`` in the job's execution context
#: just after its ``running`` transition is journaled.  The service
#: tests use it to inject poison jobs (SIGKILL the host) and typed
#: failures.  Never set in production code.
_JOB_HOOK: Callable[[str, int], None] | None = None


@dataclass
class ServiceConfig:
    """Knobs for one campaign service."""

    #: Service root directory (journal, inbox, control, cache, jobs).
    root: str
    #: Admission bound: pending jobs beyond this are rejected.
    max_queue_depth: int = 64
    #: Concurrency budget (forked job children at once; inline runs 1).
    max_concurrent: int = 1
    #: Crash-classified failures before a job is quarantined as poison.
    poison_threshold: int = 3
    #: Retry budget for *typed* transient job failures.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Wall-clock deadline per job attempt (fork isolation only).
    job_timeout_s: float | None = None
    #: Idle poll interval for the service loop.
    poll_interval_s: float = 0.05
    #: ``"fork"`` (job-per-child, deadlines) or ``"inline"`` (in-process).
    isolation: str = "fork"
    #: Bound for the shared drive cache; ``None`` leaves it unbounded.
    cache_max_bytes: int | None = None
    #: Seed for the retry-backoff jitter streams (pacing only).
    seed: int = 0

    def __post_init__(self) -> None:
        self.root = os.fspath(self.root)
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.isolation not in ("fork", "inline"):
            raise ValueError(
                f"isolation must be 'fork' or 'inline', got {self.isolation!r}"
            )
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ValueError(
                f"job_timeout_s must be positive or None, got {self.job_timeout_s}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if self.isolation == "fork" and not hasattr(os, "fork"):
            self.isolation = "inline"


def _job_dir(root: str, job_id: str) -> str:
    return os.path.join(root, JOBS_DIR, job_id)


def _execute_job_files(root: str, job_id: str, spec: dict, cache_dir: str) -> None:
    """Run one job's campaign and persist all of its artifacts.

    Runs in the service process (inline isolation) or a forked child
    (fork isolation).  Every artifact goes through the atomic commit
    protocol, and the shard store under ``store/`` is the job's durable
    checkpoint — re-running after any interruption resumes from it.
    """
    job_dir = _job_dir(root, job_id)
    os.makedirs(job_dir, exist_ok=True)
    config = spec_to_config(spec, cache_dir=cache_dir)
    campaign = Campaign(config, recorder=ObsRecorder())
    dataset = campaign.run(
        checkpoint_path=os.path.join(job_dir, "store"),
        manifest_path=os.path.join(job_dir, "manifest.json"),
    )
    dataset.save_json(os.path.join(job_dir, "dataset.json"))
    campaign.report.save_json(os.path.join(job_dir, "report.json"))


def _job_child_main(root: str, job_id: str, spec: dict, cache_dir: str, attempt: int) -> None:
    """Forked job child: run the campaign, encode the outcome as an exit."""
    hook = _JOB_HOOK
    try:
        if hook is not None:
            hook(job_id, attempt)
        _execute_job_files(root, job_id, spec, cache_dir)
    except CampaignAborted:
        # Graceful drain: the checkpoint is durable, the parent journals
        # ``checkpointed`` and the job resumes on the next service run.
        os._exit(EXIT_CHECKPOINTED)
    except Exception as exc:
        atomic_write_json(
            os.path.join(_job_dir(root, job_id), "failure.json"),
            {"error_type": type(exc).__name__, "message": str(exc)},
            boundary="failure",
        )
        os._exit(1)
    os._exit(0)


@dataclass
class _RunningChild:
    process: Any
    attempt: int
    deadline: float | None
    started: float


class CampaignService:
    """Supervised, journaled campaign job queue (see module docstring)."""

    def __init__(self, config: ServiceConfig, recorder: Any = None):
        self.config = config
        self.obs = recorder if recorder is not None else get_recorder()
        self.root = config.root
        self.cache_dir = os.path.join(self.root, CACHE_DIR)
        self.admission = AdmissionControl(
            max_queue_depth=config.max_queue_depth,
            max_concurrent=config.max_concurrent,
        )
        self.journal = JobJournal(os.path.join(self.root, JOURNAL_NAME))
        self.jobs: dict[str, JobRecord] = {}
        self._queue: deque[str] = deque()
        self._eligible_at: dict[str, float] = {}
        self._children: dict[str, _RunningChild] = {}
        self._rng = RngStreams(config.seed)
        self._draining = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Open (and recover) the journal, then replay in-flight work."""
        if self._started:
            return
        os.makedirs(os.path.join(self.root, INBOX_DIR), exist_ok=True)
        os.makedirs(os.path.join(self.root, CONTROL_DIR), exist_ok=True)
        os.makedirs(os.path.join(self.root, JOBS_DIR), exist_ok=True)
        os.makedirs(self.cache_dir, exist_ok=True)
        replay = self.journal.open()
        self.jobs = replay.jobs
        if replay.torn_reason is not None:
            self.obs.counter("serve.journal_truncations").inc()
        # Sweep + bound the shared cache before admitting anything: a
        # SIGKILL mid-cache-write leaves a tmp file nothing rewrites.
        DriveCache(self.cache_dir).gc(max_bytes=self.config.cache_max_bytes)
        self._recover()
        self._started = True
        self._update_gauges()

    def _recover(self) -> None:
        """Arc interrupted jobs back to the queue — or into quarantine."""
        for record in sorted(self.jobs.values(), key=lambda r: r.order):
            if record.state is JobState.SUBMITTED:
                # Crashed between the submitted and admitted appends:
                # admission was already checked for this submission.
                self._journal({"event": "admitted", "job": record.job_id})
                self._queue.append(record.job_id)
            elif record.state is JobState.RUNNING:
                self._note_crash(record.job_id, reason="service died mid-run")
                if self.jobs[record.job_id].state is JobState.ADMITTED:
                    self.obs.counter("serve.resumes").inc()
            elif record.state is JobState.CHECKPOINTED:
                self._journal({"event": "resumed", "job": record.job_id})
                self._queue.append(record.job_id)
                self.obs.counter("serve.resumes").inc()
            elif record.state is JobState.ADMITTED:
                self._queue.append(record.job_id)

    def close(self) -> None:
        self.journal.close()
        self._started = False

    def __enter__(self) -> "CampaignService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit(self, spec: dict) -> str:
        """Admit one submission (or dedup it), returning its job id.

        Raises :class:`InvalidSubmission` for a spec that cannot become
        a campaign and :class:`AdmissionRejected` beyond capacity.  A
        spec already known under a non-rejected state dedups: the job id
        is returned and, if the job already finished, its artifacts
        stand in for a re-run.
        """
        self.start()
        job_id = job_id_for_spec(spec)
        existing = self.jobs.get(job_id)
        if existing is not None and existing.state is not JobState.REJECTED:
            if existing.state is JobState.DONE:
                self.obs.counter("serve.dedup_hits").inc()
            return job_id
        spec_to_config(spec, cache_dir=self.cache_dir)  # validate only
        try:
            self.admission.check(job_id, self._depth())
        except AdmissionRejected:
            self.obs.counter("serve.rejections").inc()
            raise
        self._journal({"event": "submitted", "job": job_id, "spec": spec})
        self._journal({"event": "admitted", "job": job_id})
        self._queue.append(job_id)
        self.obs.counter("serve.admissions").inc()
        self._update_gauges()
        return job_id

    # -- main loop ---------------------------------------------------------

    def run_until_drained(self) -> None:
        """Process every visible submission, then return."""
        self._run(stop_when_idle=True)

    def run_forever(self) -> None:
        """Serve until a SIGTERM/SIGINT or drain request stops us."""
        self._run(stop_when_idle=False)

    def _run(self, *, stop_when_idle: bool) -> None:
        self.start()
        with graceful_shutdown() as shutdown:
            while True:
                if shutdown.requested:
                    self._draining = True
                self._scan_control()
                if self._draining:
                    self._drain_children()
                    break
                self._scan_inbox()
                progressed = self._pump()
                self._update_gauges()
                if self._draining:
                    # An inline job caught SIGTERM (CampaignAborted).
                    break
                if stop_when_idle and self._idle():
                    break
                if not progressed:
                    time.sleep(self.config.poll_interval_s)
        self._update_gauges()

    def _idle(self) -> bool:
        if self._children:
            return False
        return self._depth() == 0

    def _depth(self) -> int:
        return sum(1 for r in self.jobs.values() if r.state in PENDING_STATES)

    def _update_gauges(self) -> None:
        self.obs.gauge("serve.queue_depth").set(float(self._depth()))
        self.obs.gauge("serve.running_jobs").set(float(len(self._children)))

    def _journal(self, body: dict) -> None:
        self.journal.append(body)
        fold_event(self.jobs, body)

    # -- filesystem protocol ----------------------------------------------

    def _scan_inbox(self) -> None:
        inbox = os.path.join(self.root, INBOX_DIR)
        try:
            names = sorted(os.listdir(inbox))
        except FileNotFoundError:
            return
        removed = False
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(inbox, name)
            spec = None
            try:
                with open(path, encoding="utf-8") as handle:
                    spec = json.load(handle)
                self.submit(spec)
            except (AdmissionRejected, InvalidSubmission, ValueError) as exc:
                # Filesystem submitters cannot catch a raised rejection;
                # journal it so their status query explains what happened.
                job_id = (
                    job_id_for_spec(spec)
                    if isinstance(spec, dict)
                    else name[: -len(".json")]
                )
                self._journal(
                    {"event": "rejected", "job": job_id, "reason": str(exc)}
                )
                if not isinstance(exc, AdmissionRejected):
                    self.obs.counter("serve.rejections").inc()
            os.unlink(path)
            removed = True
        if removed:
            fsync_dir(inbox)

    def _scan_control(self) -> None:
        control = os.path.join(self.root, CONTROL_DIR)
        try:
            names = sorted(os.listdir(control))
        except FileNotFoundError:
            return
        removed = False
        for name in names:
            path = os.path.join(control, name)
            if name == DRAIN_REQUEST:
                self._draining = True
            elif name.startswith(CANCEL_PREFIX) and name.endswith(".json"):
                job_id = name[len(CANCEL_PREFIX) : -len(".json")]
                record = self.jobs.get(job_id)
                if record is not None and record.state in (
                    JobState.SUBMITTED,
                    JobState.ADMITTED,
                ):
                    self._journal({"event": "cancelled", "job": job_id})
                    self.obs.counter("serve.cancellations").inc()
            os.unlink(path)
            removed = True
        if removed:
            fsync_dir(control)

    # -- dispatch ----------------------------------------------------------

    def _next_ready(self) -> str | None:
        now = time.monotonic()
        for _ in range(len(self._queue)):
            job_id = self._queue.popleft()
            record = self.jobs.get(job_id)
            if record is None or record.state is not JobState.ADMITTED:
                continue  # cancelled/quarantined while queued
            if self._eligible_at.get(job_id, 0.0) > now:
                self._queue.append(job_id)  # still backing off
                continue
            return job_id
        return None

    def _pump(self) -> bool:
        progressed = self._poll_children()
        while len(self._children) < self.admission.max_concurrent:
            job_id = self._next_ready()
            if job_id is None:
                break
            record = self.jobs[job_id]
            attempt = record.attempts
            self._journal({"event": "running", "job": job_id, "attempt": attempt})
            if self.config.isolation == "inline":
                self._run_inline(job_id, attempt)
                return True
            self._spawn_child(job_id, attempt)
            progressed = True
        return progressed

    def _run_inline(self, job_id: str, attempt: int) -> None:
        record = self.jobs[job_id]
        started = time.monotonic()
        try:
            hook = _JOB_HOOK
            if hook is not None:
                hook(job_id, attempt)
            _execute_job_files(self.root, job_id, record.spec, self.cache_dir)
        except CampaignAborted:
            # SIGTERM landed mid-campaign: the drive checkpoint is
            # already durable — journal it and drain.
            self._journal({"event": "checkpointed", "job": job_id})
            self._draining = True
        except Exception as exc:
            self._note_typed_failure(job_id, type(exc).__name__, str(exc))
        else:
            self._note_done(job_id, time.monotonic() - started)

    def _spawn_child(self, job_id: str, attempt: int) -> None:
        record = self.jobs[job_id]
        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(
            target=_job_child_main,
            args=(self.root, job_id, record.spec, self.cache_dir, attempt),
        )
        process.start()
        now = time.monotonic()
        deadline = (
            now + self.config.job_timeout_s
            if self.config.job_timeout_s is not None
            else None
        )
        self._children[job_id] = _RunningChild(process, attempt, deadline, now)

    def _poll_children(self) -> bool:
        progressed = False
        now = time.monotonic()
        for job_id, child in list(self._children.items()):
            if child.process.is_alive():
                if child.deadline is not None and now > child.deadline:
                    child.process.kill()
                    child.process.join()
                    del self._children[job_id]
                    self._note_crash(
                        job_id,
                        reason=(
                            f"job deadline exceeded "
                            f"({self.config.job_timeout_s}s); watchdog SIGKILL"
                        ),
                    )
                    progressed = True
                continue
            child.process.join()
            code = child.process.exitcode
            del self._children[job_id]
            progressed = True
            if code == 0:
                self._note_done(job_id, time.monotonic() - child.started)
            elif code == EXIT_CHECKPOINTED:
                self._journal({"event": "checkpointed", "job": job_id})
                if not self._draining:
                    # Checkpointed without a drain in progress: resume
                    # immediately rather than waiting for a restart.
                    self._journal({"event": "resumed", "job": job_id})
                    self._queue.append(job_id)
            elif code is not None and code < 0:
                self._note_crash(job_id, reason=f"job child killed by signal {-code}")
            else:
                failure = self._read_failure(job_id)
                if failure is None:
                    self._note_crash(
                        job_id, reason=f"job child exited {code} without a failure record"
                    )
                else:
                    self._note_typed_failure(
                        job_id,
                        failure.get("error_type", "Exception"),
                        failure.get("message", ""),
                    )
        return progressed

    def _read_failure(self, job_id: str) -> dict | None:
        path = os.path.join(_job_dir(self.root, job_id), "failure.json")
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def _drain_children(self) -> None:
        """Forward the drain to running children and journal the result."""
        for child in self._children.values():
            if child.process.is_alive():
                child.process.terminate()  # SIGTERM -> campaign checkpoints
        for job_id, child in list(self._children.items()):
            child.process.join()
            code = child.process.exitcode
            del self._children[job_id]
            if code == 0:
                self._note_done(job_id, time.monotonic() - child.started)
            elif code == EXIT_CHECKPOINTED:
                self._journal({"event": "checkpointed", "job": job_id})
            elif code is not None and code < 0:
                self._note_crash(job_id, reason=f"job child killed by signal {-code}")
            else:
                self._note_crash(job_id, reason=f"job child exited {code} during drain")

    # -- outcomes ----------------------------------------------------------

    def _note_done(self, job_id: str, elapsed_s: float) -> None:
        self._journal({"event": "done", "job": job_id})
        self.obs.counter("serve.completions").inc()
        self.obs.histogram("serve.job_seconds").observe(elapsed_s)

    def _note_typed_failure(self, job_id: str, error_type: str, message: str) -> None:
        record = self.jobs[job_id]
        transient = classify_failure(error_type) is FailureClass.TRANSIENT
        if transient and record.error_retries + 1 < self.config.retry.max_attempts:
            self._journal(
                {
                    "event": "retried",
                    "job": job_id,
                    "error_type": error_type,
                    "message": message,
                }
            )
            delay = self.config.retry.delay_s(
                record.error_retries + 1,
                self._rng.get(f"serve.retry.{job_id}"),
            )
            self._eligible_at[job_id] = time.monotonic() + delay
            self._queue.append(job_id)
            self.obs.counter("serve.retries").inc()
        else:
            self._journal(
                {
                    "event": "failed",
                    "job": job_id,
                    "error_type": error_type,
                    "message": message,
                }
            )
            self.obs.counter("serve.failures").inc()

    def _note_crash(self, job_id: str, *, reason: str) -> None:
        """One crash-classified interruption: requeue — or quarantine."""
        self._journal({"event": "crashed", "job": job_id, "reason": reason})
        self.obs.counter("serve.crashes").inc()
        record = self.jobs[job_id]
        if record.crashes >= self.config.poison_threshold:
            self._journal(
                {
                    "event": "quarantined",
                    "job": job_id,
                    "reason": (
                        f"poison job: {record.crashes} consecutive "
                        f"crash-classified failures (last: {reason})"
                    ),
                }
            )
            self.obs.counter("serve.quarantines").inc()
        else:
            self._queue.append(job_id)
