"""Campaign-as-a-service: a crash-proof, journaled job queue.

``repro.serve`` turns the one-shot campaign runner into a long-lived
service: submissions enter a durable write-ahead journal, admission
control bounds the queue, jobs execute through the existing campaign /
supervised-pool machinery, poison jobs are quarantined, and a SIGKILL'd
service restarts, replays its journal, and resumes every in-flight
campaign byte-identically.  See ``docs/SERVICE.md``.
"""

from repro.serve.admission import AdmissionControl, AdmissionRejected
from repro.serve.client import JobPaths, ServiceClient
from repro.serve.jobs import (
    InvalidSubmission,
    JobRecord,
    JobState,
    PENDING_STATES,
    TERMINAL_STATES,
    job_id_for_spec,
    spec_to_config,
)
from repro.serve.journal import (
    JOURNAL_NAME,
    JobJournal,
    JournalCorruptError,
    JournalReplay,
    replay_journal,
)
from repro.serve.service import CampaignService, ServiceConfig

__all__ = [
    "AdmissionControl",
    "AdmissionRejected",
    "CampaignService",
    "InvalidSubmission",
    "JOURNAL_NAME",
    "JobJournal",
    "JobPaths",
    "JobRecord",
    "JobState",
    "JournalCorruptError",
    "JournalReplay",
    "PENDING_STATES",
    "ServiceClient",
    "ServiceConfig",
    "TERMINAL_STATES",
    "job_id_for_spec",
    "replay_journal",
    "spec_to_config",
]
