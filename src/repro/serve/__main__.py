"""CLI for the campaign service.

Run a service::

    python -m repro.serve run --root /var/lib/repro-serve
    python -m repro.serve run --root ./serve --once          # drain and exit
    python -m repro.serve run --root ./serve --inline --max-queue 16

Talk to one::

    python -m repro.serve submit --root ./serve --spec '{"preset": "smoke", "seed": 7}'
    python -m repro.serve status --root ./serve [job-...]
    python -m repro.serve cancel --root ./serve job-...
    python -m repro.serve drain  --root ./serve

``run`` exits 0 on a graceful SIGTERM drain — the journal replays and
resumes every in-flight job on the next start.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import ObsRecorder
from repro.resilience.policy import RetryPolicy
from repro.serve.client import ServiceClient
from repro.serve.service import CampaignService, ServiceConfig


def _add_root(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--root", required=True, help="service root directory")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Crash-proof campaign job-queue service (docs/SERVICE.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the service loop")
    _add_root(run)
    run.add_argument(
        "--once", action="store_true",
        help="drain every visible submission, then exit (default: serve forever)",
    )
    run.add_argument("--max-queue", type=int, default=64, help="admission bound")
    run.add_argument(
        "--max-concurrent", type=int, default=1, help="concurrency budget"
    )
    run.add_argument(
        "--poison-threshold", type=int, default=3,
        help="crash-classified failures before quarantine",
    )
    run.add_argument(
        "--retries", type=int, default=2,
        help="typed-transient retry budget per job",
    )
    run.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock deadline in seconds (fork isolation)",
    )
    run.add_argument(
        "--inline", action="store_true",
        help="run jobs in-process instead of forked children",
    )
    run.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="bound the shared drive cache (oldest entries evicted)",
    )

    submit = sub.add_parser("submit", help="queue one campaign submission")
    _add_root(submit)
    submit.add_argument(
        "--spec", required=True,
        help='submission spec as JSON, e.g. \'{"preset": "smoke", "seed": 7}\'',
    )

    status = sub.add_parser("status", help="show job states from the journal")
    _add_root(status)
    status.add_argument("job_id", nargs="?", help="one job (default: all)")

    cancel = sub.add_parser("cancel", help="cancel a job that has not started")
    _add_root(cancel)
    cancel.add_argument("job_id")

    drain = sub.add_parser("drain", help="ask the service to checkpoint and exit")
    _add_root(drain)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "run":
        config = ServiceConfig(
            root=args.root,
            max_queue_depth=args.max_queue,
            max_concurrent=args.max_concurrent,
            poison_threshold=args.poison_threshold,
            retry=RetryPolicy(max_attempts=args.retries + 1),
            job_timeout_s=args.job_timeout,
            isolation="inline" if args.inline else "fork",
            cache_max_bytes=args.cache_max_bytes,
        )
        service = CampaignService(config, recorder=ObsRecorder())
        with service:
            if args.once:
                service.run_until_drained()
            else:
                service.run_forever()
        return 0

    client = ServiceClient(args.root)
    if args.command == "submit":
        try:
            spec = json.loads(args.spec)
        except ValueError as exc:
            print(f"--spec is not valid JSON: {exc}", file=sys.stderr)
            return 2
        job_id = client.submit(spec)
        print(job_id)
        return 0
    if args.command == "status":
        jobs = client.jobs()
        if args.job_id is not None:
            record = jobs.get(args.job_id)
            if record is None:
                print(f"unknown job {args.job_id}", file=sys.stderr)
                return 1
            print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
            return 0
        listing = [
            record.to_dict()
            for record in sorted(jobs.values(), key=lambda r: r.order)
        ]
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    if args.command == "cancel":
        client.cancel(args.job_id)
        print(f"cancel requested for {args.job_id}")
        return 0
    if args.command == "drain":
        client.drain()
        print("drain requested")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
