"""Write-ahead job journal: the service's single source of truth.

The journal is an append-only JSON Lines file using the same
digest-chain discipline as :mod:`repro.store.shard`: every line is the
canonical JSON of ``{"chain", "kind", "seq", "body"}`` where ``chain``
is the SHA-256 over the previous line's chain plus this envelope.  The
first line is a ``header``; every subsequent line is an ``event``
recording one job state transition (``submitted``, ``admitted``,
``running``, ``checkpointed``, ``done``, ...).

Durability follows the WAL rule used everywhere else in this repo:
**journal first, act second**.  An event is appended, flushed, and
``fsync``'d *before* the service acts on it, and each append announces
the crash-injection boundaries ``journal.<event>.append`` and
``journal.<event>.fsync`` through
:func:`repro.store.commit.checkpoint_boundary`, so the crash harness
(``tests/test_serve_crash.py``) can SIGKILL the service between any two
steps of any journal commit.

Recovery is torn-tail truncation: a SIGKILL mid-append leaves at most
one partial or chain-broken line at the end of the file.  Opening the
journal for writing truncates the file back to the last fully valid
line (the classic WAL recovery move); read-only replays
(:func:`replay_journal`) simply stop at the first invalid line and
leave the file alone, so a status client never races the service's
writer.  Because every action is journaled before it is performed,
dropping a torn tail can only ever forget an action that was *about*
to happen — replay then redoes it, and drive-level determinism makes
the redo byte-identical.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.serve.jobs import JobRecord, fold_event
from repro.store.commit import checkpoint_boundary, fsync_dir
from repro.store.shard import GENESIS, canonical_json, chain_digest

JOURNAL_VERSION = 1
JOURNAL_NAME = "journal.jsonl"


class JournalCorruptError(ValueError):
    """The journal's committed prefix is unreadable (not a torn tail)."""


@dataclass
class JournalReplay:
    """Everything recovered from one journal read."""

    #: Event bodies in append order (header excluded).
    events: list[dict] = field(default_factory=list)
    #: Job id -> folded record, in first-submission order.
    jobs: dict[str, JobRecord] = field(default_factory=dict)
    #: Chain value of the last valid line (GENESIS for an empty file).
    chain: str = GENESIS
    #: Next sequence number to append.
    seq: int = 0
    #: Byte offset of the end of the last valid line.
    valid_bytes: int = 0
    #: Why the tail was dropped, or None if the file was fully valid.
    torn_reason: str | None = None


def _render_line(prev_chain: str, kind: str, seq: int, body: Any) -> tuple[str, str]:
    envelope = {"kind": kind, "seq": seq, "body": body}
    chain = chain_digest(prev_chain, canonical_json(envelope))
    return canonical_json({"chain": chain, **envelope}), chain


def _header_body() -> dict[str, Any]:
    return {"version": JOURNAL_VERSION, "journal": "repro.serve"}


def _scan_lines(data: bytes) -> Iterator[tuple[bytes, int]]:
    """Yield ``(line, end_offset)`` for each newline-terminated line."""
    start = 0
    while True:
        newline = data.find(b"\n", start)
        if newline < 0:
            return
        yield data[start:newline], newline + 1
        start = newline + 1


def replay_journal(path: str | os.PathLike) -> JournalReplay:
    """Replay a journal file into per-job state.

    Stops at the first torn or chain-broken line and records why in
    :attr:`JournalReplay.torn_reason`; never modifies the file.  A
    missing file replays as empty.  A journal whose *header* is invalid
    raises :class:`JournalCorruptError` — there is no committed prefix
    to trust.
    """
    replay = JournalReplay()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return replay

    for line, end_offset in _scan_lines(data):
        try:
            obj = json.loads(line)
            kind = obj["kind"]
            seq = obj["seq"]
            body = obj["body"]
            claimed = obj["chain"]
        except (ValueError, KeyError, TypeError):
            replay.torn_reason = f"unparseable line at byte {replay.valid_bytes}"
            break
        envelope = {"kind": kind, "seq": seq, "body": body}
        expected = chain_digest(replay.chain, canonical_json(envelope))
        if claimed != expected or seq != replay.seq:
            replay.torn_reason = f"chain break at seq {replay.seq}"
            break
        if replay.seq == 0:
            if kind != "header" or body.get("version") != JOURNAL_VERSION:
                raise JournalCorruptError(
                    f"{os.fspath(path)}: bad journal header: {body!r}"
                )
        elif kind == "event":
            replay.events.append(body)
            fold_event(replay.jobs, body)
        else:
            replay.torn_reason = f"unknown line kind {kind!r} at seq {seq}"
            break
        replay.chain = expected
        replay.seq += 1
        replay.valid_bytes = end_offset
    if replay.torn_reason is None and replay.valid_bytes != len(data):
        replay.torn_reason = f"torn tail after byte {replay.valid_bytes}"
    return replay


class JobJournal:
    """Append-only, fsync'd, digest-chained event log for the service.

    Use :meth:`open` (which replays and truncates any torn tail), then
    :meth:`append` for each state transition, and :meth:`close` on the
    way out.  Appends are durable before they return — the caller may
    act on the event immediately.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._handle: Any = None
        self._chain = GENESIS
        self._seq = 0

    def open(self) -> JournalReplay:
        """Recover the journal and position the writer after it."""
        replay = replay_journal(self.path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if replay.torn_reason is not None:
            # WAL recovery: drop the uncommitted tail, keep the prefix.
            with open(self.path, "rb+") as handle:
                handle.truncate(replay.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")  # noqa: SIM115 - held across appends
        self._chain = replay.chain
        self._seq = replay.seq
        if self._seq == 0:
            self._append_line("header", _header_body(), label="header")
            fsync_dir(directory)
        return replay

    def append(self, body: dict) -> None:
        """Durably append one event (``body`` must carry ``"event"``)."""
        if self._handle is None:
            raise RuntimeError("journal is not open")
        self._append_line("event", body, label=str(body.get("event", "event")))

    def _append_line(self, kind: str, body: dict, *, label: str) -> None:
        line, chain = _render_line(self._chain, kind, self._seq, body)
        self._handle.write(line.encode("utf-8") + b"\n")
        checkpoint_boundary(f"journal.{label}.append")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        checkpoint_boundary(f"journal.{label}.fsync")
        self._chain = chain
        self._seq += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
