"""Job identity, submission specs, and the journaled state machine.

A *job* is one campaign submission.  Its identity is content-addressed:
``job_id_for_spec`` hashes the canonical JSON of the submission spec, so
resubmitting the same spec names the same job — the dedup that lets the
service answer a repeat submission from the finished artifacts instead
of recomputing.  (Drive-level dedup across *different* jobs that share a
config fingerprint happens underneath, in
:class:`repro.store.DriveCache`.)

The state machine the journal records::

    submitted ──▶ admitted ──▶ running ──▶ done
        │             ▲         │   │
        ▼             │         │   ├──▶ failed       (typed error, budget spent)
     rejected         ├─crashed─┘   ├──▶ quarantined  (poison: N crashes)
                      ├─retried─┘   └──▶ cancelled    (before running only)
                      └─resumed── checkpointed        (graceful drain)

``crashed``/``retried``/``resumed`` arc a job back to *admitted* so the
dispatcher re-runs it from its durable checkpoint; ``rejected``,
``done``, ``failed``, ``quarantined``, and ``cancelled`` are terminal
(a ``rejected`` job may be resubmitted outright, which resets it).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.campaign import CampaignConfig
from repro.resilience.policy import ResilienceConfig, RetryPolicy
from repro.store.shard import canonical_json


class InvalidSubmission(ValueError):
    """A submission spec the service refuses to turn into a campaign."""


class JobState(enum.Enum):
    SUBMITTED = "submitted"
    ADMITTED = "admitted"
    RUNNING = "running"
    CHECKPOINTED = "checkpointed"
    DONE = "done"
    FAILED = "failed"
    QUARANTINED = "quarantined"
    CANCELLED = "cancelled"
    REJECTED = "rejected"


#: States from which a job will never run again.
TERMINAL_STATES = frozenset(
    {
        JobState.DONE,
        JobState.FAILED,
        JobState.QUARANTINED,
        JobState.CANCELLED,
        JobState.REJECTED,
    }
)

#: States that occupy the queue (count toward the admission bound).
PENDING_STATES = frozenset(
    {JobState.SUBMITTED, JobState.ADMITTED, JobState.RUNNING, JobState.CHECKPOINTED}
)


def job_id_for_spec(spec: dict[str, Any]) -> str:
    """Content-addressed job id: same spec, same job."""
    blob = canonical_json(spec).encode("utf-8")
    return "job-" + hashlib.sha256(blob).hexdigest()[:16]


#: Spec keys that shape the campaign config itself.
_SIM_KEYS = frozenset(
    {
        "seed",
        "num_interstate_drives",
        "num_city_drives",
        "num_ring_drives",
        "max_drive_seconds",
        "test_duration_s",
        "window_period_s",
        "city_loop_segments",
    }
)
#: Execution-only spec keys (never change the produced bytes).
_EXEC_KEYS = frozenset({"workers", "retries", "drive_timeout_s"})

_PRESETS: dict[str, Callable[..., CampaignConfig]] = {
    "paper": CampaignConfig.paper_scale,
    "small": CampaignConfig.small,
    "smoke": CampaignConfig.smoke,
}


def spec_to_config(
    spec: dict[str, Any], *, cache_dir: str | None = None
) -> CampaignConfig:
    """Validate a submission spec and build its campaign config.

    ``spec`` is a flat JSON object: either ``{"preset": "smoke"|"small"|
    "paper", "seed": ..., ["drives": ...]}`` with optional sim-knob
    overrides, or the sim knobs spelled out directly.  The execution
    keys ``workers``, ``retries``, and ``drive_timeout_s`` shape *how*
    the job runs (worker pool, retry budget, watchdog deadline), never
    what it produces.  The service forces the sharded artifact layout
    and wires the shared drive cache.

    Raises :class:`InvalidSubmission` for anything else — a bad spec
    must be rejected at admission, not explode mid-queue.
    """
    if not isinstance(spec, dict):
        raise InvalidSubmission(f"spec must be a JSON object, got {type(spec).__name__}")
    allowed = _SIM_KEYS | _EXEC_KEYS | {"preset", "drives"}
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise InvalidSubmission(f"unknown spec keys: {', '.join(unknown)}")

    preset = spec.get("preset")
    overrides = {key: spec[key] for key in _SIM_KEYS if key in spec}
    try:
        if preset is not None:
            factory = _PRESETS.get(preset)
            if factory is None:
                raise InvalidSubmission(
                    f"unknown preset {preset!r} (expected one of "
                    f"{', '.join(sorted(_PRESETS))})"
                )
            kwargs: dict[str, Any] = {"seed": overrides.pop("seed", 0)}
            if "drives" in spec:
                if preset != "small":
                    raise InvalidSubmission("'drives' only applies to preset 'small'")
                kwargs["drives"] = spec["drives"]
            config = factory(**kwargs)
            if overrides:
                config = dataclasses.replace(config, **overrides)
        else:
            if "drives" in spec:
                raise InvalidSubmission("'drives' only applies to preset 'small'")
            config = CampaignConfig(**overrides)
    except InvalidSubmission:
        raise
    except (TypeError, ValueError) as exc:
        raise InvalidSubmission(str(exc)) from exc

    config.artifact_format = "jsonl"
    config.cache_dir = cache_dir
    workers = spec.get("workers")
    if workers is not None:
        config.workers = int(workers)
    retries = spec.get("retries")
    drive_timeout_s = spec.get("drive_timeout_s")
    if retries is not None or drive_timeout_s is not None:
        resilience = ResilienceConfig()
        if retries is not None:
            resilience = dataclasses.replace(
                resilience, retry=RetryPolicy(max_attempts=int(retries) + 1)
            )
        if drive_timeout_s is not None:
            resilience = dataclasses.replace(
                resilience, drive_timeout_s=float(drive_timeout_s)
            )
        config.resilience = resilience
    try:
        config.__post_init__()
    except ValueError as exc:
        raise InvalidSubmission(str(exc)) from exc
    return config


@dataclass
class JobRecord:
    """One job's folded journal state."""

    job_id: str
    state: JobState = JobState.SUBMITTED
    spec: dict[str, Any] = field(default_factory=dict)
    #: First-submission order — the dispatcher's FIFO key.
    order: int = 0
    #: ``running`` events seen (attempt count across crashes/retries).
    attempts: int = 0
    #: Crash-classified interruptions (service death, deadline kill).
    crashes: int = 0
    #: Typed-error retries consumed from the job's RetryPolicy budget.
    error_retries: int = 0
    #: Last failure's exception-type name, if any.
    error_type: str | None = None
    #: Human-readable detail for failed/quarantined/rejected states.
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "job": self.job_id,
            "state": self.state.value,
            "spec": self.spec,
            "order": self.order,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "error_retries": self.error_retries,
            "error_type": self.error_type,
            "reason": self.reason,
        }


def fold_event(jobs: dict[str, JobRecord], body: dict[str, Any]) -> None:
    """Apply one journal event to the per-job state map, in place."""
    event = body.get("event")
    job_id = body.get("job")
    if not isinstance(event, str) or not isinstance(job_id, str):
        raise ValueError(f"malformed journal event: {body!r}")
    record = jobs.get(job_id)
    if event == "submitted":
        order = record.order if record is not None else len(jobs)
        jobs[job_id] = JobRecord(
            job_id=job_id, spec=body.get("spec", {}), order=order
        )
        return
    if record is None:
        # Rejections may be the job's only event (e.g. unparseable spec).
        record = jobs[job_id] = JobRecord(job_id=job_id, order=len(jobs))
    if event == "admitted":
        record.state = JobState.ADMITTED
    elif event == "rejected":
        record.state = JobState.REJECTED
        record.reason = body.get("reason", "")
    elif event == "running":
        record.state = JobState.RUNNING
        record.attempts += 1
    elif event == "checkpointed":
        record.state = JobState.CHECKPOINTED
    elif event == "crashed":
        record.state = JobState.ADMITTED
        record.crashes += 1
        record.reason = body.get("reason", "")
    elif event == "resumed":
        record.state = JobState.ADMITTED
    elif event == "retried":
        record.state = JobState.ADMITTED
        record.error_retries += 1
        record.error_type = body.get("error_type")
        record.reason = body.get("message", "")
    elif event == "done":
        record.state = JobState.DONE
        record.error_type = None
        record.reason = ""
    elif event == "failed":
        record.state = JobState.FAILED
        record.error_type = body.get("error_type")
        record.reason = body.get("message", "")
    elif event == "quarantined":
        record.state = JobState.QUARANTINED
        record.reason = body.get("reason", "")
    elif event == "cancelled":
        record.state = JobState.CANCELLED
    else:
        raise ValueError(f"unknown journal event {event!r}")
