"""Dependency-free filesystem client for the campaign service.

The protocol is three directories and one file, all under the service
root — no sockets, no serialization framework, nothing a crashed
service can leave half-open:

* **submit** — atomically drop ``inbox/<job_id>.json`` (the spec); the
  service admits or journals a rejection and removes the file.  Writes
  go through :func:`repro.store.commit.atomic_write_json`, so the
  service can never observe a torn submission.
* **status** — replay ``journal.jsonl`` read-only.  The journal's
  digest chain makes the read safe against a concurrent append: the
  replay simply stops at the first incomplete line.
* **cancel / drain** — drop ``control/cancel-<job_id>.json`` or
  ``control/drain.json``; the service honours them on its next scan
  (cancel applies to jobs that have not started running).

Everything here is also reachable from the CLI: ``python -m repro.serve
submit|status|cancel|drain``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.serve.jobs import JobRecord, JobState, job_id_for_spec
from repro.serve.journal import JOURNAL_NAME, replay_journal
from repro.serve.service import CANCEL_PREFIX, CONTROL_DIR, DRAIN_REQUEST, INBOX_DIR, JOBS_DIR
from repro.store.commit import atomic_write_json, fsync_dir


@dataclass(frozen=True)
class JobPaths:
    """Where one job's artifacts live."""

    job_dir: str
    store: str
    dataset: str
    manifest: str
    report: str


class ServiceClient:
    """Filesystem-protocol handle on a service root."""

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)

    def submit(self, spec: dict) -> str:
        """Queue one submission; returns its content-addressed job id."""
        job_id = job_id_for_spec(spec)
        inbox = os.path.join(self.root, INBOX_DIR)
        os.makedirs(inbox, exist_ok=True)
        atomic_write_json(
            os.path.join(inbox, f"{job_id}.json"), spec, boundary="submission"
        )
        return job_id

    def cancel(self, job_id: str) -> None:
        """Ask the service to cancel a job that has not started."""
        self._control(f"{CANCEL_PREFIX}{job_id}.json")

    def drain(self) -> None:
        """Ask the service to stop admitting, checkpoint, and exit."""
        self._control(DRAIN_REQUEST)

    def _control(self, name: str) -> None:
        control = os.path.join(self.root, CONTROL_DIR)
        os.makedirs(control, exist_ok=True)
        atomic_write_json(os.path.join(control, name), {}, boundary="control")
        fsync_dir(control)

    def jobs(self) -> dict[str, JobRecord]:
        """All jobs the journal knows, keyed by job id."""
        return replay_journal(os.path.join(self.root, JOURNAL_NAME)).jobs

    def status(self, job_id: str) -> JobRecord | None:
        return self.jobs().get(job_id)

    def wait(self, job_id: str, timeout_s: float = 60.0, poll_s: float = 0.1) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state."""
        from repro.serve.jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout_s
        while True:
            record = self.status(job_id)
            if record is not None and record.state in TERMINAL_STATES:
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout_s}s "
                    f"(state: {record.state.value if record else 'unknown'})"
                )
            time.sleep(poll_s)

    def result_paths(self, job_id: str) -> JobPaths:
        job_dir = os.path.join(self.root, JOBS_DIR, job_id)
        return JobPaths(
            job_dir=job_dir,
            store=os.path.join(job_dir, "store"),
            dataset=os.path.join(job_dir, "dataset.json"),
            manifest=os.path.join(job_dir, "manifest.json"),
            report=os.path.join(job_dir, "report.json"),
        )

    def is_done(self, job_id: str) -> bool:
        record = self.status(job_id)
        return record is not None and record.state is JobState.DONE
