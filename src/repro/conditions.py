"""The common per-second link-condition sample.

Both channel substrates (LEO and cellular) reduce their physics to the same
quantities per second: available capacity in each direction, base round-trip
time, and random packet-loss probability.  Everything downstream — the fluid
throughput models, the Mahimahi-style trace replay, and the packet-level
simulator — consumes this one type.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkConditions:
    """Network conditions experienced during one second."""

    time_s: float
    downlink_mbps: float
    uplink_mbps: float
    rtt_ms: float
    loss_rate: float
    #: Mean number of consecutive packets lost per loss event.  Starlink
    #: loss clusters around handover/blockage events (tens of packets);
    #: cellular loss is near-independent.  1.0 means Bernoulli loss.
    loss_burst: float = 1.0

    def __post_init__(self) -> None:
        if self.downlink_mbps < 0 or self.uplink_mbps < 0:
            raise ValueError("capacities must be non-negative")
        if self.rtt_ms < 0:
            raise ValueError(f"rtt must be non-negative, got {self.rtt_ms}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.loss_burst < 1.0:
            raise ValueError(f"loss_burst must be >= 1, got {self.loss_burst}")

    @property
    def is_outage(self) -> bool:
        """True when no data can flow in either direction."""
        return self.downlink_mbps <= 0.0 and self.uplink_mbps <= 0.0

    def capacity_mbps(self, downlink: bool) -> float:
        """Capacity for the requested direction."""
        return self.downlink_mbps if downlink else self.uplink_mbps

    def degraded(
        self,
        capacity_factor: float = 1.0,
        extra_loss: float = 0.0,
        extra_rtt_ms: float = 0.0,
        loss_burst: float | None = None,
    ) -> "LinkConditions":
        """A copy of this second with external attenuation applied.

        This is how :mod:`repro.faults` composes over a channel without the
        channel knowing: capacities scale, loss adds (clamped to 1), RTT
        adds.  ``capacity_factor`` must be non-negative.
        """
        if capacity_factor < 0.0:
            raise ValueError(
                f"capacity_factor must be non-negative, got {capacity_factor}"
            )
        if extra_loss < 0.0 or extra_rtt_ms < 0.0:
            raise ValueError("extra_loss and extra_rtt_ms must be non-negative")
        return LinkConditions(
            time_s=self.time_s,
            downlink_mbps=self.downlink_mbps * capacity_factor,
            uplink_mbps=self.uplink_mbps * capacity_factor,
            rtt_ms=self.rtt_ms + extra_rtt_ms,
            loss_rate=min(1.0, self.loss_rate + extra_loss),
            loss_burst=self.loss_burst if loss_burst is None else loss_burst,
        )


def outage(time_s: float, rtt_ms: float = 1000.0, loss_burst: float = 1.0) -> LinkConditions:
    """A fully dead second (used during deep blockage / no coverage)."""
    return LinkConditions(
        time_s=time_s,
        downlink_mbps=0.0,
        uplink_mbps=0.0,
        rtt_ms=rtt_ms,
        loss_rate=1.0,
        loss_burst=loss_burst,
    )
