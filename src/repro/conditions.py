"""The common per-second link-condition sample.

Both channel substrates (LEO and cellular) reduce their physics to the same
quantities per second: available capacity in each direction, base round-trip
time, and random packet-loss probability.  Everything downstream — the fluid
throughput models, the Mahimahi-style trace replay, and the packet-level
simulator — consumes this one type.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LinkConditions:
    """Network conditions experienced during one second."""

    time_s: float
    downlink_mbps: float
    uplink_mbps: float
    rtt_ms: float
    loss_rate: float
    #: Mean number of consecutive packets lost per loss event.  Starlink
    #: loss clusters around handover/blockage events (tens of packets);
    #: cellular loss is near-independent.  1.0 means Bernoulli loss.
    loss_burst: float = 1.0

    def __post_init__(self) -> None:
        if self.downlink_mbps < 0 or self.uplink_mbps < 0:
            raise ValueError("capacities must be non-negative")
        if self.rtt_ms < 0:
            raise ValueError(f"rtt must be non-negative, got {self.rtt_ms}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.loss_burst < 1.0:
            raise ValueError(f"loss_burst must be >= 1, got {self.loss_burst}")

    @property
    def is_outage(self) -> bool:
        """True when no data can flow in either direction."""
        return self.downlink_mbps <= 0.0 and self.uplink_mbps <= 0.0

    def capacity_mbps(self, downlink: bool) -> float:
        """Capacity for the requested direction."""
        return self.downlink_mbps if downlink else self.uplink_mbps

    def degraded(
        self,
        capacity_factor: float = 1.0,
        extra_loss: float = 0.0,
        extra_rtt_ms: float = 0.0,
        loss_burst: float | None = None,
    ) -> "LinkConditions":
        """A copy of this second with external attenuation applied.

        This is how :mod:`repro.faults` composes over a channel without the
        channel knowing: capacities scale, loss adds (clamped to 1), RTT
        adds.  ``capacity_factor`` must be non-negative.
        """
        if capacity_factor < 0.0:
            raise ValueError(
                f"capacity_factor must be non-negative, got {capacity_factor}"
            )
        if extra_loss < 0.0 or extra_rtt_ms < 0.0:
            raise ValueError("extra_loss and extra_rtt_ms must be non-negative")
        return LinkConditions(
            time_s=self.time_s,
            downlink_mbps=self.downlink_mbps * capacity_factor,
            uplink_mbps=self.uplink_mbps * capacity_factor,
            rtt_ms=self.rtt_ms + extra_rtt_ms,
            loss_rate=min(1.0, self.loss_rate + extra_loss),
            loss_burst=self.loss_burst if loss_burst is None else loss_burst,
        )


@dataclass(frozen=True, eq=False)
class ConditionsArray:
    """A whole trace of link conditions as parallel numpy arrays.

    Structure-of-arrays counterpart to ``list[LinkConditions]`` for the
    vectorized fluid models (:mod:`repro.core.fastpath.fluid`): one
    float64 array per field, aligned by second.  Conversion either way
    is lossless — the arrays hold exactly the floats the samples hold.
    """

    time_s: np.ndarray
    downlink_mbps: np.ndarray
    uplink_mbps: np.ndarray
    rtt_ms: np.ndarray
    loss_rate: np.ndarray
    loss_burst: np.ndarray

    def __post_init__(self) -> None:
        n = self.time_s.shape
        for name in ("downlink_mbps", "uplink_mbps", "rtt_ms", "loss_rate", "loss_burst"):
            arr = getattr(self, name)
            if arr.ndim != 1 or arr.shape != n:
                raise ValueError(
                    f"{name} must be 1-D of shape {n}, got {arr.shape}"
                )

    @classmethod
    def from_samples(cls, samples: Sequence[LinkConditions]) -> "ConditionsArray":
        """Pack a per-second sample list into aligned arrays."""
        return cls(
            time_s=np.array([s.time_s for s in samples], dtype=float),
            downlink_mbps=np.array([s.downlink_mbps for s in samples], dtype=float),
            uplink_mbps=np.array([s.uplink_mbps for s in samples], dtype=float),
            rtt_ms=np.array([s.rtt_ms for s in samples], dtype=float),
            loss_rate=np.array([s.loss_rate for s in samples], dtype=float),
            loss_burst=np.array([s.loss_burst for s in samples], dtype=float),
        )

    def __len__(self) -> int:
        return int(self.time_s.size)

    def __iter__(self) -> Iterator[LinkConditions]:
        return iter(self.to_samples())

    def __getitem__(self, i: int) -> LinkConditions:
        return LinkConditions(
            time_s=float(self.time_s[i]),
            downlink_mbps=float(self.downlink_mbps[i]),
            uplink_mbps=float(self.uplink_mbps[i]),
            rtt_ms=float(self.rtt_ms[i]),
            loss_rate=float(self.loss_rate[i]),
            loss_burst=float(self.loss_burst[i]),
        )

    def capacity_mbps(self, downlink: bool) -> np.ndarray:
        """Capacity array for the requested direction."""
        return self.downlink_mbps if downlink else self.uplink_mbps

    @property
    def is_outage(self) -> np.ndarray:
        """Boolean array: seconds where no data can flow either way."""
        return (self.downlink_mbps <= 0.0) & (self.uplink_mbps <= 0.0)

    def to_samples(self) -> list[LinkConditions]:
        """Unpack back into per-second sample objects."""
        return [self[i] for i in range(len(self))]


def outage(time_s: float, rtt_ms: float = 1000.0, loss_burst: float = 1.0) -> LinkConditions:
    """A fully dead second (used during deep blockage / no coverage)."""
    return LinkConditions(
        time_s=time_s,
        downlink_mbps=0.0,
        uplink_mbps=0.0,
        rtt_ms=rtt_ms,
        loss_rate=1.0,
        loss_burst=loss_burst,
    )
