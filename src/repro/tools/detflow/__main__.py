"""CLI for detflow: ``python -m repro.tools.detflow [paths] [options]``.

Exit codes mirror detlint (and ruff/mypy): 0 clean, 1 findings,
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.tools.detflow.runner import DETFLOW_RULES, run_paths
from repro.tools.detlint.engine import Finding
from repro.tools.sarif import render_sarif


def _comma_codes(value: str) -> list[str]:
    return [code.strip() for code in value.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.detflow",
        description=(
            "Whole-program nondeterminism taint analysis and "
            "crash-boundary/fork-safety checking "
            "(see docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", type=_comma_codes, default=None,
        metavar="CODES", help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore", action="append", type=_comma_codes, default=None,
        metavar="CODES", help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--tests-dir", default=None, metavar="DIR",
        help=(
            "directory holding the crash tests for boundary-coverage "
            "checking (default: auto-discover a tests/ dir near the "
            "scanned paths)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _flatten(groups: list[list[str]] | None) -> list[str] | None:
    if groups is None:
        return None
    return [code for group in groups for code in group]


def _render_text(findings: list[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def _render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {"findings": [f.to_dict() for f in findings], "count": len(findings)},
        indent=2,
        sort_keys=True,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in DETFLOW_RULES.items():
            print(f"{code:<8} {summary}")
        return 0

    try:
        findings = run_paths(
            args.paths,
            select=_flatten(args.select),
            ignore=_flatten(args.ignore),
            tests_dir=args.tests_dir,
        )
    except ValueError as exc:
        print(f"detflow: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(findings))
    elif args.format == "sarif":
        print(render_sarif("detflow", findings, DETFLOW_RULES))
    elif findings:
        print(_render_text(findings))
    else:
        print("detflow: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
