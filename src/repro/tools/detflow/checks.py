"""Whole-program checks beyond taint: crash-boundary coverage and
fork-safety.

**Crash-boundary coverage (DF201/DF202).**  The commit protocol's crash
tests work by enumerating ``repro.store.commit._CRASH_HOOK`` boundary
labels and killing the process at each one (``docs/ARTIFACTS.md``).
That proof is only as good as its enumeration: a new
``checkpoint_boundary("...")`` call that no crash test references ships
an untested commit point.  This check extracts every boundary label
declared in ``repro.store``/``repro.serve`` — constants exactly,
f-strings as ``fnmatch`` patterns (``f"{boundary}.tmp.write"`` ->
``*.tmp.write``) — and requires each to be matched by at least one
string in the crash-test files.  Missing crash-test files (or an
unanalyzable label expression) fail closed as DF202: "cannot verify"
must never read as "verified".

**Fork-safety (DF301).**  ``parallel_campaign`` and ``serve.service``
fork workers; state captured across a fork boundary is silently
duplicated — a shared ``ShardWriter`` writes torn shards, a forked
``JobJournal`` fsyncs the same fd from two processes, a copied open
file handle double-flushes buffered bytes.  This check inspects every
``Process(...)`` / ``ProcessPoolExecutor(...)`` call site and flags
arguments typed (by local constructor inference) as live-state classes,
locals bound to ``open()`` results, and bound-method targets
(``target=self._run`` captures the whole live object).
"""

from __future__ import annotations

import ast
import fnmatch
import os

from repro.tools.detflow.graph import ProjectGraph, _dotted
from repro.tools.detlint.engine import FileContext, Finding, load_context

BOUNDARY_UNCOVERED_CODE = "DF201"
BOUNDARY_INFRA_CODE = "DF202"
FORK_CAPTURE_CODE = "DF301"

#: Packages whose ``checkpoint_boundary`` calls declare crash points.
BOUNDARY_PACKAGES = ("repro.store", "repro.serve")

#: Crash tests that must reference every declared boundary.
CRASH_TEST_FILES = (
    "test_store_crash.py",
    "test_serve_crash.py",
    "test_store_commit_faults.py",
)

#: Classes holding live fds/locks/process state — never cross a fork.
LIVE_STATE_CLASSES = frozenset({
    "ShardWriter", "JobJournal", "DriveCache", "ObsRecorder",
})

FORK_CALL_LEAVES = frozenset({"Process", "ProcessPoolExecutor"})


# -- boundary extraction -------------------------------------------------

def _in_boundary_packages(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in BOUNDARY_PACKAGES
    )


def _label_pattern(node: ast.expr) -> str | None:
    """A boundary-label expression as an fnmatch pattern, or ``None``
    if it cannot be analyzed (which fails closed as DF202)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("*")
            else:
                return None
        return "".join(parts)
    return None


def declared_boundaries(
    contexts: list[FileContext],
) -> tuple[list[tuple[FileContext, ast.Call, str]], list[Finding]]:
    """Every ``checkpoint_boundary(label)`` declaration in scope."""
    declarations: list[tuple[FileContext, ast.Call, str]] = []
    findings: list[Finding] = []
    for ctx in contexts:
        if not _in_boundary_packages(ctx.module):
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None or dotted.rpartition(".")[2] != "checkpoint_boundary":
                continue
            if not node.args:
                continue
            pattern = _label_pattern(node.args[0])
            if pattern is None:
                findings.append(ctx.finding(node, BOUNDARY_INFRA_CODE, (
                    "checkpoint_boundary() label is not a constant or "
                    "f-string — detflow cannot match it against crash "
                    "tests; use a literal or f-string label"
                )))
                continue
            declarations.append((ctx, node, pattern))
    return declarations, findings


def _reference_strings(tests_dir: str) -> tuple[set[str], list[str]]:
    """All string constants (f-strings as patterns) in the crash tests,
    plus the list of crash-test files that could not be read."""
    refs: set[str] = set()
    missing: list[str] = []
    for name in CRASH_TEST_FILES:
        path = os.path.join(tests_dir, name)
        loaded = load_context(path)
        if isinstance(loaded, Finding):
            missing.append(path)
            continue
        for node in ast.walk(loaded.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                refs.add(node.value)
            elif isinstance(node, ast.JoinedStr):
                pattern = _label_pattern(node)
                if pattern is not None:
                    refs.add(pattern)
    return refs, missing


def _covered(declared: str, refs: set[str]) -> bool:
    """A declaration pattern is covered if any reference string matches
    it — in either direction, since both sides may hold the wildcard
    (declared ``*.tmp.write`` vs referenced ``checkpoint.tmp.write``;
    declared ``shard.rename`` vs referenced ``shard.*``)."""
    for ref in refs:
        if ref == declared:
            return True
        if fnmatch.fnmatchcase(ref, declared) or fnmatch.fnmatchcase(declared, ref):
            return True
    return False


def find_tests_dir(paths: list[str]) -> str | None:
    """Locate the crash tests near the scanned paths (or cwd)."""
    candidates: list[str] = []
    for path in paths:
        base = path if os.path.isdir(path) else os.path.dirname(path)
        base = os.path.abspath(base)
        while True:
            candidates.append(os.path.join(base, "tests"))
            parent = os.path.dirname(base)
            if parent == base:
                break
            base = parent
    candidates.append(os.path.join(os.getcwd(), "tests"))
    for cand in candidates:
        if any(
            os.path.isfile(os.path.join(cand, name)) for name in CRASH_TEST_FILES
        ):
            return cand
    return None


def check_boundary_coverage(
    contexts: list[FileContext], tests_dir: str | None
) -> list[Finding]:
    declarations, findings = declared_boundaries(contexts)
    if not declarations:
        return findings
    if tests_dir is None:
        # Boundaries exist but no crash tests found: fail closed.
        ctx, node, _ = declarations[0]
        findings.append(ctx.finding(node, BOUNDARY_INFRA_CODE, (
            "crash-boundary declarations found but no crash-test "
            "directory was located (looked for tests/ containing "
            f"{', '.join(CRASH_TEST_FILES)}); pass --tests-dir"
        )))
        return findings
    refs, missing = _reference_strings(tests_dir)
    for path in missing:
        ctx, node, _ = declarations[0]
        findings.append(ctx.finding(node, BOUNDARY_INFRA_CODE, (
            f"crash-test file {path} is missing or unreadable — "
            "boundary coverage cannot be verified (fails closed)"
        )))
    for ctx, node, pattern in declarations:
        if not _covered(pattern, refs):
            findings.append(ctx.finding(node, BOUNDARY_UNCOVERED_CODE, (
                f"crash boundary '{pattern}' is not referenced by any "
                f"crash test in {tests_dir} "
                f"({'/'.join(CRASH_TEST_FILES)}) — every _CRASH_HOOK "
                "commit point must have a kill-at-this-boundary test "
                "(docs/ARTIFACTS.md)"
            )))
    return findings


# -- fork-safety ---------------------------------------------------------

def _is_fork_call(node: ast.Call) -> bool:
    dotted = _dotted(node.func)
    if dotted is None:
        return False
    return dotted.rpartition(".")[2] in FORK_CALL_LEAVES


def check_fork_safety(contexts: list[FileContext], graph: ProjectGraph) -> list[Finding]:
    findings: list[Finding] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        module = graph.modules[fn.module]
        ctx = module.ctx
        types = graph.local_types(module, fn)
        open_handles = _open_handles(fn.node)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call) or not _is_fork_call(node):
                continue
            findings.extend(
                _inspect_fork_site(ctx, qualname, node, types, open_handles, graph)
            )
    return findings


def _open_handles(fn_node: ast.AST) -> set[str]:
    """Locals bound to ``open(...)`` results in this function."""
    handles: set[str] = set()
    for node in ast.walk(fn_node):
        value: ast.expr | None = None
        target: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and _dotted(item.context_expr.func) == "open"
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    handles.add(item.optional_vars.id)
            continue
        if (
            target is not None
            and isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and _dotted(value.func) == "open"
        ):
            handles.add(target.id)
    return handles


def _capture_args(node: ast.Call) -> list[tuple[ast.expr, bool]]:
    """Every expression that crosses the fork, paired with whether it
    is a callable slot (``target``/``initializer``) — the bound-method
    rule only applies there; ``self.root`` in ``args`` is a plain
    attribute read, evaluated before the fork."""
    out: list[tuple[ast.expr, bool]] = []
    for kw in node.keywords:
        if kw.arg in ("args", "initargs") and isinstance(
            kw.value, (ast.Tuple, ast.List)
        ):
            out.extend((elt, False) for elt in kw.value.elts)
        elif kw.arg in ("target", "initializer"):
            out.append((kw.value, True))
    return out


def _inspect_fork_site(
    ctx: FileContext,
    qualname: str,
    node: ast.Call,
    types: dict[str, str],
    open_handles: set[str],
    graph: ProjectGraph,
) -> list[Finding]:
    findings: list[Finding] = []
    for expr, is_callable_slot in _capture_args(node):
        dotted = _dotted(expr)
        if dotted is None:
            continue
        head = dotted.partition(".")[0]
        # Live-state class instances (by constructor-inferred type).
        inferred = types.get(dotted) or types.get(head)
        if inferred is not None:
            leaf = inferred.rpartition(".")[2]
            if leaf in LIVE_STATE_CLASSES:
                findings.append(ctx.finding(expr, FORK_CAPTURE_CODE, (
                    f"'{dotted}' is a live {leaf} captured across a fork "
                    f"boundary in {qualname} — the child inherits its fd/"
                    "state and both processes will mutate it; pass plain "
                    "paths/ids and reconstruct in the child"
                )))
                continue
        # Open file handles.
        if head in open_handles:
            findings.append(ctx.finding(expr, FORK_CAPTURE_CODE, (
                f"open file handle '{head}' captured across a fork "
                f"boundary in {qualname} — buffered bytes flush from "
                "both processes; pass the path instead"
            )))
            continue
        # Bound methods (target=self._run drags the live object along).
        if is_callable_slot and dotted.startswith("self.") and dotted.count(".") == 1:
            findings.append(ctx.finding(expr, FORK_CAPTURE_CODE, (
                f"bound method '{dotted}' as fork target in {qualname} "
                "captures the whole live object (fds, locks, recorder "
                "state); use a module-level function taking plain args"
            )))
    # Threads started in the same function that forks are suspect:
    # the child inherits the lock state of a thread that no longer runs.
    return findings


def check_fork_thread_mix(contexts: list[FileContext], graph: ProjectGraph) -> list[Finding]:
    """Flag functions that both start a thread and fork."""
    findings: list[Finding] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        ctx = graph.modules[fn.module].ctx
        thread_node: ast.Call | None = None
        fork_node: ast.Call | None = None
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            leaf = dotted.rpartition(".")[2] if dotted else ""
            if leaf == "Thread":
                thread_node = thread_node or node
            elif _is_fork_call(node):
                fork_node = fork_node or node
        if thread_node is not None and fork_node is not None:
            findings.append(ctx.finding(fork_node, FORK_CAPTURE_CODE, (
                f"{qualname} starts a thread and forks in the same "
                "function — a forked child inherits locks held by "
                "threads that do not exist in the child (deadlock on "
                "first contended acquire); fork first or confine the "
                "thread to the child"
            )))
    return findings
