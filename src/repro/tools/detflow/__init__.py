"""detflow: whole-program nondeterminism taint analysis.

detlint (:mod:`repro.tools.detlint`) checks per-file patterns; detflow
builds a project-wide symbol table and call graph and tracks
nondeterminism *across* functions and modules: wall clocks, environment
reads, unsorted directory listings, set-ordering iteration, global RNG,
and unordered float reductions, from where they originate to the
byte-identity surfaces they must never reach (shard writers, canonical
JSON, fingerprints, journal payloads, deterministic-manifest metrics).
It also proves two structural invariants no single file can show:
every declared crash boundary has a crash test, and nothing alive
crosses a fork.  See ``docs/STATIC_ANALYSIS.md``.

Run it: ``PYTHONPATH=src python -m repro.tools.detflow src/repro``.
"""

from repro.tools.detflow.runner import (  # noqa: F401
    DETFLOW_RULES,
    active_codes,
    rule_codes,
    run_paths,
)
