"""Interprocedural nondeterminism taint tracking.

The model, in one paragraph: **sources** introduce values that can
differ between two runs of the same `(config, seed)` — wall clocks,
`os.environ`/pids, unsorted directory listings, set/dict-ordering
iteration, global RNG, float reductions over unordered collections.
**Sinks** are the byte-identity surfaces — shard writers and canonical
JSON, `fingerprint()` inputs, journal event payloads, deterministic
manifest content.  A dataflow path from a source to a sink that never
passes a **sanitizer** (`sorted()`, `repro.rng` substreams, the
manifest exclusion lists) is a finding, reported with the full call
chain so the fix site is obvious.

Mechanics: summary-based fixpoint over the
:class:`~repro.tools.detflow.graph.ProjectGraph`.  Each function gets a
:class:`FunctionSummary` — which sources its return value carries,
which parameters flow to its return, and which parameters flow into
sinks it (transitively) reaches.  Summaries are recomputed until
stable, so taint crosses module boundaries in either direction and
survives import cycles.

Precision choices (all deliberate, all documented in
``docs/STATIC_ANALYSIS.md``):

* **Field-sensitive dict literals** — ``{"payload": clean, "elapsed":
  tainted}`` keeps per-key taint, and ``d["payload"]`` retrieves only
  that key's taint.  Without this, every campaign result dict (clean
  payload riding next to a wall-clock duration) would be a false
  positive.
* **Comparisons drop taint** — ``now > deadline`` yields an untainted
  bool.  Implicit flows (branching on tainted data) are out of scope;
  timeouts/deadlines are ubiquitous and legitimate.
* **Unresolved calls propagate argument taint** — a call detflow
  cannot resolve is assumed to pass its inputs through (conservative
  for data, silent for new sources, which only specs introduce).
* **Per-category sanitizers** — ``sorted()`` cancels *ordering* taints
  (listing, set-order, float-reduction) but not wall-clock: sorting a
  list of timestamps does not make it reproducible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from repro.tools.detflow.graph import FunctionInfo, ModuleInfo, ProjectGraph, _dotted
from repro.tools.detlint.engine import Finding

# -- taint categories ----------------------------------------------------

WALLCLOCK = "wallclock"
ENVIRON = "environ"
LISTING = "listing"
SETORDER = "setorder"
GLOBALRNG = "globalrng"
FLOATSUM = "floatsum"

#: Categories that describe *ordering* nondeterminism — a ``sorted()``
#: wrap genuinely fixes these.  Wall-clock/environ/RNG values stay
#: nondeterministic no matter how you order them.
ORDER_CATEGORIES = frozenset({LISTING, SETORDER, FLOATSUM})

CATEGORY_CODES = {
    WALLCLOCK: "DF101",
    ENVIRON: "DF102",
    LISTING: "DF103",
    SETORDER: "DF104",
    GLOBALRNG: "DF105",
    FLOATSUM: "DF106",
}

CATEGORY_LABELS = {
    WALLCLOCK: "wall-clock time",
    ENVIRON: "os.environ/pid",
    LISTING: "unsorted directory listing",
    SETORDER: "set/dict-ordering iteration",
    GLOBALRNG: "global RNG state",
    FLOATSUM: "float reduction over an unordered collection",
}


@dataclass(frozen=True)
class TaintAtom:
    """One source occurrence: what kind, and where it entered."""

    category: str
    #: ``path:line`` of the originating expression.
    origin: str
    #: Human-readable description of the source expression.
    detail: str
    #: Call chain (function qualnames) the taint has traversed so far,
    #: origin first.  Tuples keep atoms hashable.
    chain: tuple[str, ...] = ()

    def through(self, qualname: str) -> "TaintAtom":
        if self.chain and self.chain[-1] == qualname:
            return self
        return replace(self, chain=(*self.chain, qualname))


@dataclass
class Value:
    """Abstract value: taint atoms, parameter derivations, dict fields."""

    taints: frozenset[TaintAtom] = frozenset()
    #: Parameter indices (of the *enclosing* function) this value may
    #: derive from, minus categories a sanitizer has cancelled on the
    #: way: ``{param_index: frozenset(cancelled_categories)}``.
    params: dict[int, frozenset[str]] = field(default_factory=dict)
    #: Per-key taint for dict literals with constant string keys.
    fields: dict[str, "Value"] = field(default_factory=dict)
    #: Value is a set (iterating it is a SETORDER source).
    is_set: bool = False

    @staticmethod
    def clean() -> "Value":
        return Value()

    def merged(self, other: "Value") -> "Value":
        params = dict(self.params)
        for idx, cancelled in other.params.items():
            params[idx] = params.get(idx, cancelled) & cancelled
        fields = dict(self.fields)
        for key, val in other.fields.items():
            fields[key] = fields[key].merged(val) if key in fields else val
        return Value(
            taints=self.taints | other.taints,
            params=params,
            fields=fields,
            is_set=self.is_set or other.is_set,
        )

    def collapsed(self) -> "Value":
        """Fold field taint up (for whole-value uses of a dict)."""
        out = Value(taints=self.taints, params=dict(self.params), is_set=self.is_set)
        for val in self.fields.values():
            out = out.merged(val.collapsed())
        return out

    def sanitized(self, categories: frozenset[str]) -> "Value":
        """Remove the given taint categories (e.g. after ``sorted()``)."""
        return Value(
            taints=frozenset(t for t in self.taints if t.category not in categories),
            params={
                idx: cancelled | categories for idx, cancelled in self.params.items()
            },
            fields={k: v.sanitized(categories) for k, v in self.fields.items()},
            is_set=False if categories & {SETORDER} else self.is_set,
        )

    @property
    def empty(self) -> bool:
        return (
            not self.taints
            and not self.params
            and not any(not v.empty for v in self.fields.values())
        )


@dataclass(frozen=True)
class SinkHit:
    """A parameter of this function reaches a sink (transitively)."""

    param: int
    #: Categories cancelled on the way (sanitized between param and sink).
    cancelled: frozenset[str]
    sink_label: str
    sink_origin: str
    #: Chain of function qualnames from this function to the sink.
    chain: tuple[str, ...]


@dataclass
class FunctionSummary:
    """Fixpoint state for one function."""

    #: Taint atoms the return value may carry.
    returns: frozenset[TaintAtom] = frozenset()
    #: ``{param_index: cancelled_categories}`` — params that may flow
    #: to the return value.
    param_returns: dict[int, frozenset[str]] = field(default_factory=dict)
    #: Params that reach sinks inside (or below) this function.
    sink_hits: tuple[SinkHit, ...] = ()

    def state(self) -> tuple:
        return (
            self.returns,
            tuple(sorted((k, v) for k, v in self.param_returns.items())),
            self.sink_hits,
        )


# -- source specs --------------------------------------------------------

#: dotted-call -> category for direct source expressions.
SOURCE_CALLS: dict[str, str] = {
    "time.time": WALLCLOCK,
    "time.time_ns": WALLCLOCK,
    "time.monotonic": WALLCLOCK,
    "time.monotonic_ns": WALLCLOCK,
    "time.perf_counter": WALLCLOCK,
    "time.perf_counter_ns": WALLCLOCK,
    "datetime.datetime.now": WALLCLOCK,
    "datetime.datetime.utcnow": WALLCLOCK,
    "datetime.datetime.today": WALLCLOCK,
    "datetime.date.today": WALLCLOCK,
    "os.getpid": ENVIRON,
    "os.getppid": ENVIRON,
    "os.environ.get": ENVIRON,
    "os.getenv": ENVIRON,
    "os.listdir": LISTING,
    "os.scandir": LISTING,
    "glob.glob": LISTING,
    "glob.iglob": LISTING,
    "random.random": GLOBALRNG,
    "random.randint": GLOBALRNG,
    "random.choice": GLOBALRNG,
    "random.shuffle": GLOBALRNG,
    "random.uniform": GLOBALRNG,
    "np.random.uniform": GLOBALRNG,
    "np.random.normal": GLOBALRNG,
    "np.random.random": GLOBALRNG,
    "numpy.random.uniform": GLOBALRNG,
    "numpy.random.normal": GLOBALRNG,
    "numpy.random.random": GLOBALRNG,
}

#: Method names that are LISTING sources on any receiver (Path API).
LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: ``sum()``/``math.fsum`` over these producers is a FLOATSUM source
#: when the iterable is a set or ``dict.values()``.
FLOAT_REDUCERS = frozenset({"sum", "max", "min"})

#: Builtins that never propagate data taint from args to result.
CLEAN_BUILTINS = frozenset({
    "len", "bool", "isinstance", "issubclass", "id", "type", "range",
    "hasattr", "callable", "print", "repr",
})

#: Modules whose *documented job* is stamping wall-clock metadata that
#: the deterministic view strips (``created_at`` in the manifest).
#: Wall-clock sources inside them are exempt; everything else applies.
WALLCLOCK_EXEMPT_MODULES = frozenset({"repro.obs.manifest"})


# -- sink specs ----------------------------------------------------------

@dataclass(frozen=True)
class SinkSpec:
    """One byte-identity surface: which args of which callee are sinks."""

    label: str
    #: Argument indices that are sink inputs (``None`` = every arg).
    args: tuple[int, ...] | None = None
    #: Taint categories this sink does *not* care about.
    immune: frozenset[str] = frozenset()


#: Resolved-callee qualname -> spec.  These are the surfaces
#: ``docs/ARTIFACTS.md`` / ``docs/SERVICE.md`` define; adding a new
#: durable writer means adding a row here (see docs/STATIC_ANALYSIS.md).
SINK_SPECS: dict[str, SinkSpec] = {
    "repro.store.shard.ShardWriter.append": SinkSpec("shard record (digest-chained)"),
    "repro.store.shard.ShardWriter.finish": SinkSpec("shard meta record"),
    "repro.store.shard.build_shard_bytes": SinkSpec("shard bytes"),
    "repro.store.shard.canonical_json": SinkSpec("canonical JSON"),
    "repro.store.shard.chain_digest": SinkSpec("shard digest chain"),
    "repro.store.commit.atomic_write_bytes": SinkSpec(
        "durable artifact bytes", args=(1,)
    ),
    "repro.store.commit.atomic_write_json": SinkSpec(
        "durable artifact JSON", args=(1,)
    ),
    "repro.serve.journal.JobJournal.append": SinkSpec("journal event payload"),
    "repro.serve.journal.JobJournal._append_line": SinkSpec("journal line"),
    "repro.serve.service.CampaignService._journal": SinkSpec("journal event payload"),
    "repro.serve.jobs.job_id_for_spec": SinkSpec("job-id fingerprint input"),
}

#: Bare function names treated as sinks wherever they resolve —
#: ``fingerprint(...)`` is the identity function of the whole repo.
SINK_NAMES: dict[str, SinkSpec] = {
    "fingerprint": SinkSpec("fingerprint input"),
}

#: Known sanitizer calls: dotted name -> categories cancelled.
#: ``repro.rng`` substream draws replace global RNG taint entirely.
SANITIZER_CALLS: dict[str, frozenset[str]] = {
    "sorted": ORDER_CATEGORIES,
    "math.fsum": frozenset({FLOATSUM}),
}


def _is_metric_excluded(name: str) -> bool:
    """Live check against the manifest exclusion lists (like INV102)."""
    try:
        from repro.obs import manifest as m
    except Exception:  # pragma: no cover - manifest import always works in-repo
        return False
    if name in m.WALL_CLOCK_METRICS or name in m.EXECUTION_METRICS:
        return True
    return any(name.startswith(p) for p in m.EXECUTION_METRIC_PREFIXES)


# -- the analyzer --------------------------------------------------------

class TaintAnalyzer:
    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, FunctionSummary] = {
            q: FunctionSummary() for q in graph.functions
        }
        self.findings: list[Finding] = []
        self._finding_keys: set[tuple] = set()

    # -- public entry point ----------------------------------------------

    def run(self) -> list[Finding]:
        # Fixpoint over summaries: iterate until no summary changes.
        # Bound the loop defensively; chain lengths are small in practice.
        for _ in range(20):
            changed = False
            for qualname in sorted(self.graph.functions):
                before = self.summaries[qualname].state()
                self._analyze_function(qualname, record=False)
                if self.summaries[qualname].state() != before:
                    changed = True
            if not changed:
                break
        # Final recording pass with stable summaries.
        self._finding_keys.clear()
        self.findings.clear()
        for qualname in sorted(self.graph.functions):
            self._analyze_function(qualname, record=True)
        return sorted(self.findings)

    # -- per-function analysis -------------------------------------------

    def _analyze_function(self, qualname: str, record: bool) -> None:
        fn = self.graph.functions[qualname]
        module = self.graph.modules[fn.module]
        walker = _FunctionWalker(self, module, fn, record)
        walker.walk()
        self.summaries[qualname] = walker.summary()

    def add_finding(self, key: tuple, finding: Finding) -> None:
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(finding)


class _FunctionWalker:
    """One abstract-interpretation pass over a function body."""

    def __init__(
        self,
        analyzer: TaintAnalyzer,
        module: ModuleInfo,
        fn: FunctionInfo,
        record: bool,
    ) -> None:
        self.an = analyzer
        self.graph = analyzer.graph
        self.module = module
        self.fn = fn
        self.record = record
        self.types = self.graph.local_types(module, fn)
        self.env: dict[str, Value] = {}
        self.return_value = Value.clean()
        self.sink_hits: list[SinkHit] = []
        # Parameters start as themselves (no categories cancelled).
        for idx, name in enumerate(fn.params):
            self.env[name] = Value(params={idx: frozenset()})

    # -- driving ---------------------------------------------------------

    def walk(self) -> None:
        body = self.fn.node.body
        # Two passes so loop-carried taint (acc updated from a tainted
        # expression later in the loop) stabilizes; statements are
        # re-interpreted, findings are deduplicated by (line, code).
        self._exec_block(body)
        self._exec_block(body)

    def summary(self) -> FunctionSummary:
        ret = self.return_value.collapsed()
        return FunctionSummary(
            returns=ret.taints,
            param_returns=dict(ret.params),
            sink_hits=tuple(dict.fromkeys(self.sink_hits)),
        )

    # -- statements ------------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs analyzed separately / out of scope
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value)
        elif isinstance(stmt, ast.AugAssign):
            current = self._load_target(stmt.target)
            value = current.merged(self.eval(stmt.value))
            self._assign(stmt.target, value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_value = self.return_value.merged(self.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = self.eval(stmt.iter)
            elem = self._element_of(iter_val, stmt.iter)
            self._assign(stmt.target, elem)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self.eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # Pass/Break/Continue/Import/Global/Delete: nothing to do.

    def _assign(self, target: ast.expr, value: Value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            if dotted is not None:
                self.env[dotted] = value
        elif isinstance(target, ast.Subscript):
            base = _dotted(target.value)
            key = (
                target.slice.value
                if isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
                else None
            )
            if base is not None and base in self.env:
                current = self.env[base]
                if key is not None:
                    fields = dict(current.fields)
                    fields[key] = value
                    self.env[base] = replace(current, fields=fields)
                else:
                    self.env[base] = current.merged(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            spread = value.collapsed()
            for elt in target.elts:
                self._assign(elt, spread)

    def _load_target(self, target: ast.expr) -> Value:
        dotted = _dotted(target)
        if dotted is not None and dotted in self.env:
            return self.env[dotted]
        return Value.clean()

    # -- expressions -----------------------------------------------------

    def eval(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Constant):
            return Value.clean()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, Value.clean())
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Compare):
            # Comparisons yield plain bools; implicit flows untracked.
            self.eval(node.left)
            for comp in node.comparators:
                self.eval(comp)
            return Value.clean()
        if isinstance(node, ast.BoolOp):
            out = Value.clean()
            for v in node.values:
                out = out.merged(self.eval(v))
            return out
        if isinstance(node, ast.BinOp):
            return self.eval(node.left).merged(self.eval(node.right)).collapsed()
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body).merged(self.eval(node.orelse))
        if isinstance(node, ast.Dict):
            return self._eval_dict(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            out = Value.clean()
            for elt in node.elts:
                out = out.merged(self.eval(elt).collapsed())
            return out
        if isinstance(node, ast.Set):
            out = Value(is_set=True)
            for elt in node.elts:
                out = out.merged(self.eval(elt).collapsed())
            return replace(out, is_set=True)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._eval_comp(node)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self._bind_comprehension(gen)
            out = self.eval(node.key).merged(self.eval(node.value)).collapsed()
            return out
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.JoinedStr):
            out = Value.clean()
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    out = out.merged(self.eval(part.value).collapsed())
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value).collapsed()
        if isinstance(node, ast.Starred):
            return self.eval(node.value).collapsed()
        if isinstance(node, (ast.Lambda,)):
            return Value.clean()
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            self._assign(node.target, value)
            return value
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        return Value.clean()

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        dotted = _dotted(node)
        if dotted is not None:
            if dotted in self.env:
                return self.env[dotted]
            # ``os.environ`` read as a mapping.
            if dotted in ("os.environ", "sys.argv"):
                return self._source(node, ENVIRON, dotted)
        base = self.eval(node.value)
        if node.attr in ("values", "keys", "items"):
            # Bound-method access: taint decided at the call site.
            return base
        return base.collapsed()

    def _eval_subscript(self, node: ast.Subscript) -> Value:
        base = self.eval(node.value)
        dotted = _dotted(node.value)
        if dotted == "os.environ":
            return self._source(node, ENVIRON, "os.environ[...]")
        if isinstance(node.slice, ast.expr):
            self.eval(node.slice)
        if (
            isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and node.slice.value in base.fields
        ):
            return base.fields[node.slice.value]
        if base.fields and isinstance(node.slice, ast.Constant):
            # Known-keys dict, key not tracked: only top-level taint.
            return Value(taints=base.taints, params=dict(base.params))
        return base.collapsed()

    def _eval_dict(self, node: ast.Dict) -> Value:
        out = Value.clean()
        fields: dict[str, Value] = {}
        for key, val in zip(node.keys, node.values):
            value = self.eval(val)
            if (
                key is not None
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            ):
                fields[key.value] = value
            else:
                out = out.merged(value.collapsed())
                if key is not None:
                    out = out.merged(self.eval(key).collapsed())
        out.fields.update(fields)
        return out

    def _bind_comprehension(self, gen: ast.comprehension) -> None:
        iter_val = self.eval(gen.iter)
        self._assign(gen.target, self._element_of(iter_val, gen.iter))
        for cond in gen.ifs:
            self.eval(cond)

    def _eval_comp(self, node: ast.ListComp | ast.GeneratorExp | ast.SetComp) -> Value:
        for gen in node.generators:
            self._bind_comprehension(gen)
        out = self.eval(node.elt).collapsed()
        if isinstance(node, ast.SetComp):
            out = replace(out, is_set=True)
        return out

    def _element_of(self, iterable: Value, iter_node: ast.expr) -> Value:
        """Taint of one element drawn from ``iterable``."""
        out = iterable.collapsed()
        if iterable.is_set or self._is_set_expr(iter_node):
            out = out.merged(self._source(iter_node, SETORDER, "iteration over a set"))
        # ``for k in d`` / ``d.values()`` on a *literal-keyed* tracked
        # dict is fine (insertion order is deterministic); untracked
        # dicts built from sets are caught by is_set above.
        return out

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            return bound is not None and bound.is_set
        return False

    # -- sources/sinks/sanitizers at call sites --------------------------

    def _source(self, node: ast.AST, category: str, detail: str) -> Value:
        if (
            category == WALLCLOCK
            and self.fn.module in WALLCLOCK_EXEMPT_MODULES
        ):
            return Value.clean()
        atom = TaintAtom(
            category=category,
            origin=f"{self.module.ctx.path}:{getattr(node, 'lineno', 1)}",
            detail=detail,
            chain=(self.fn.qualname,),
        )
        return Value(taints=frozenset({atom}))

    def _eval_call(self, node: ast.Call) -> Value:
        dotted = _dotted(node.func)
        arg_values = [self.eval(a) for a in node.args]
        kw_values = [self.eval(kw.value) for kw in node.keywords]

        # Sources.
        if dotted is not None:
            resolved_src = self._resolve_dotted_for_specs(dotted)
            if resolved_src in SOURCE_CALLS:
                return self._source(node, SOURCE_CALLS[resolved_src], f"{dotted}()")
            leaf = dotted.rpartition(".")[2]
            if leaf in LISTING_METHODS and "." in dotted:
                return self._source(node, LISTING, f".{leaf}()")
            if leaf == "fsum" or dotted in SANITIZER_CALLS or resolved_src in SANITIZER_CALLS:
                cats = SANITIZER_CALLS.get(dotted) or SANITIZER_CALLS.get(resolved_src)
                if cats:
                    out = Value.clean()
                    for v in (*arg_values, *kw_values):
                        out = out.merged(v.collapsed())
                    return out.sanitized(cats)
            if dotted in FLOAT_REDUCERS and node.args:
                inner = arg_values[0]
                if inner.is_set or self._is_set_expr(node.args[0]):
                    return inner.collapsed().merged(
                        self._source(node, FLOATSUM, f"{dotted}() over a set")
                    )
            if dotted in ("set", "frozenset"):
                out = Value(is_set=True)
                for v in arg_values:
                    out = out.merged(v.collapsed())
                return replace(out, is_set=True)
            if dotted in ("list", "tuple") and node.args:
                inner = arg_values[0]
                if inner.is_set or self._is_set_expr(node.args[0]):
                    return inner.collapsed().merged(
                        self._source(node, SETORDER, f"{dotted}(set)")
                    )
                return inner.collapsed()
            if dotted in CLEAN_BUILTINS:
                return Value.clean()
            if leaf in ("get", "pop") and len(node.args) >= 1:
                # d.get("key", ...) on a tracked field-dict.
                base = self.eval(node.func.value) if isinstance(node.func, ast.Attribute) else Value.clean()
                if (
                    isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                    and node.args[0].value in base.fields
                ):
                    return base.fields[node.args[0].value]

        # Resolved project calls: sinks, then summaries.
        callee = self.graph.resolve_call(self.module, self.fn, node, self.types)
        self._check_sink(node, callee, dotted, arg_values, kw_values)
        self._check_metric_sink(node, dotted, arg_values, kw_values)

        if callee is not None and callee in self.an.summaries:
            return self._apply_summary(node, callee, arg_values, kw_values)

        # Unresolved call: conservatively pass argument taint through.
        out = Value.clean()
        for v in (*arg_values, *kw_values):
            out = out.merged(v.collapsed())
        # A method call on an unresolved receiver also carries the
        # receiver's taint (e.g. tainted_list.copy()).
        if isinstance(node.func, ast.Attribute):
            out = out.merged(self.eval(node.func.value).collapsed())
        return out

    def _resolve_dotted_for_specs(self, dotted: str) -> str:
        """Expand import aliases so specs match (``from os import getpid``)."""
        head, _, rest = dotted.partition(".")
        target = self.module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _apply_summary(
        self,
        node: ast.Call,
        callee: str,
        arg_values: list[Value],
        kw_values: list[Value],
    ) -> Value:
        summary = self.an.summaries[callee]
        callee_fn = self.graph.functions[callee]
        # Map call-site args onto callee params (methods: self first).
        mapped: dict[int, Value] = {}
        offset = 0
        if callee_fn.is_method and isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)
            mapped[0] = receiver
            offset = 1
        for i, v in enumerate(arg_values):
            mapped[i + offset] = v
        kwarg_names = {kw.arg: kv for kw, kv in zip(node.keywords, kw_values)}
        for name, kv in kwarg_names.items():
            if name in callee_fn.params:
                mapped[callee_fn.params.index(name)] = kv

        # Param->sink flows recorded inside the callee.
        for hit in summary.sink_hits:
            value = mapped.get(hit.param)
            if value is None:
                continue
            value = value.collapsed().sanitized(hit.cancelled)
            self._report_sink_taint(
                node, value, hit.sink_label, hit.sink_origin,
                chain_suffix=hit.chain,
            )
            # Propagate: our params flowing into that callee param also
            # reach the sink.
            for pidx, cancelled in value.params.items():
                self.sink_hits.append(SinkHit(
                    param=pidx,
                    cancelled=cancelled | hit.cancelled,
                    sink_label=hit.sink_label,
                    sink_origin=hit.sink_origin,
                    chain=(self.fn.qualname, *hit.chain),
                ))

        # Return taint.
        out = Value(taints=frozenset(
            t.through(self.fn.qualname) for t in summary.returns
        ))
        for pidx, cancelled in summary.param_returns.items():
            value = mapped.get(pidx)
            if value is not None:
                out = out.merged(value.collapsed().sanitized(cancelled))
        return out

    # -- sinks -----------------------------------------------------------

    def _sink_spec_for(self, callee: str | None, dotted: str | None) -> SinkSpec | None:
        if callee is not None and callee in SINK_SPECS:
            return SINK_SPECS[callee]
        # fingerprint() by name, wherever it lives.
        for name, spec in SINK_NAMES.items():
            if dotted is not None and dotted.rpartition(".")[2] == name:
                return spec
            if callee is not None and callee.rpartition(".")[2] == name:
                return spec
        return None

    def _check_sink(
        self,
        node: ast.Call,
        callee: str | None,
        dotted: str | None,
        arg_values: list[Value],
        kw_values: list[Value],
    ) -> None:
        spec = self._sink_spec_for(callee, dotted)
        if spec is None:
            return
        values = [*arg_values, *kw_values]
        if spec.args is not None:
            # Indices are positional-arg indices (method receiver not
            # counted — specs use the visible-call arg positions).
            values = [arg_values[i] for i in spec.args if i < len(arg_values)]
            values.extend(kw_values)
        origin = f"{self.module.ctx.path}:{node.lineno}"
        for value in values:
            value = value.collapsed().sanitized(spec.immune)
            self._report_sink_taint(node, value, spec.label, origin, chain_suffix=())
            for pidx, cancelled in value.params.items():
                self.sink_hits.append(SinkHit(
                    param=pidx,
                    cancelled=cancelled,
                    sink_label=spec.label,
                    sink_origin=origin,
                    chain=(self.fn.qualname,),
                ))

    def _check_metric_sink(
        self,
        node: ast.Call,
        dotted: str | None,
        arg_values: list[Value],
        kw_values: list[Value],
    ) -> None:
        """``registry.counter("name").inc(v)`` style: a metric series
        that is *not* manifest-excluded feeds `deterministic_dict`."""
        if dotted is not None:
            return  # chained factory calls never form a plain dotted name
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in ("inc", "set", "observe", "add"):
            return
        inner = func.value
        if not isinstance(inner, ast.Call):
            return
        factory = inner.func
        if not isinstance(factory, ast.Attribute) or factory.attr not in (
            "counter", "gauge", "histogram"
        ):
            return
        if not inner.args or not isinstance(inner.args[0], ast.Constant):
            return
        series = inner.args[0].value
        if not isinstance(series, str) or _is_metric_excluded(series):
            return
        origin = f"{self.module.ctx.path}:{node.lineno}"
        for value in (*arg_values, *kw_values):
            value = value.collapsed()
            self._report_sink_taint(
                node, value,
                f"deterministic-manifest metric '{series}'", origin,
                chain_suffix=(),
            )
            for pidx, cancelled in value.params.items():
                self.sink_hits.append(SinkHit(
                    param=pidx,
                    cancelled=cancelled,
                    sink_label=f"deterministic-manifest metric '{series}'",
                    sink_origin=origin,
                    chain=(self.fn.qualname,),
                ))

    def _report_sink_taint(
        self,
        node: ast.Call,
        value: Value,
        sink_label: str,
        sink_origin: str,
        chain_suffix: tuple[str, ...],
    ) -> None:
        if not self.record:
            return
        for atom in sorted(
            value.taints, key=lambda a: (a.category, a.origin, a.chain)
        ):
            code = CATEGORY_CODES[atom.category]
            chain = tuple(dict.fromkeys((*atom.chain, self.fn.qualname, *chain_suffix)))
            key = (code, self.module.ctx.path, node.lineno, atom.origin, sink_label)
            message = (
                f"{CATEGORY_LABELS[atom.category]} ({atom.detail}, from "
                f"{atom.origin}) reaches {sink_label} without a sanitizer; "
                f"call chain: {' -> '.join(chain)}"
            )
            self.an.add_finding(key, self.module.ctx.finding(node, code, message))


def analyze(graph: ProjectGraph) -> list[Finding]:
    """Run taint analysis over a built project graph."""
    return TaintAnalyzer(graph).run()
