"""Drive a detflow scan: parse, build the graph, run every analysis,
apply suppressions, and return sorted findings.

detflow shares detlint's conventions exactly — same :class:`Finding`
shape, same exit codes (0 clean / 1 findings / 2 usage error), same
suppression grammar with the tool's own tag (``# detflow:
ignore[DF103]``, ``# detflow-module: x.y.z``), same SUP001
unused-suppression audit and SYN001 parse findings — so the two tools
compose in CI without special-casing.
"""

from __future__ import annotations

from typing import Iterable

from repro.tools.detflow import checks, taint
from repro.tools.detflow.graph import IMPORT_STAR_CODE, ProjectGraph
from repro.tools.detlint.engine import (
    PARSE_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    FileContext,
    Finding,
    iter_python_files,
    load_context,
)

TAG = "detflow"

#: Every detflow rule code with its one-line summary (doc order).
DETFLOW_RULES: dict[str, str] = {
    IMPORT_STAR_CODE: "star imports defeat whole-program name resolution",
    "DF101": "wall-clock time reaches a byte-identity sink",
    "DF102": "os.environ/pid reaches a byte-identity sink",
    "DF103": "unsorted directory listing reaches a byte-identity sink",
    "DF104": "set/dict-ordering iteration reaches a byte-identity sink",
    "DF105": "global RNG state reaches a byte-identity sink",
    "DF106": "float reduction over an unordered collection reaches a sink",
    checks.BOUNDARY_UNCOVERED_CODE: "crash boundary not referenced by any crash test",
    checks.BOUNDARY_INFRA_CODE: "crash-boundary coverage could not be verified (fails closed)",
    checks.FORK_CAPTURE_CODE: "live state captured across a fork boundary",
    UNUSED_SUPPRESSION_CODE: "(audit) a detflow: ignore that suppressed nothing",
    PARSE_ERROR_CODE: "(infrastructure) file failed to parse",
}


def rule_codes() -> list[str]:
    return list(DETFLOW_RULES)


def active_codes(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> set[str]:
    codes = set(rule_codes())
    if select:
        wanted = set(select)
        unknown = wanted - codes
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes = wanted
    if ignore:
        unknown = set(ignore) - set(rule_codes())
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes -= set(ignore)
    return codes


def run_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    tests_dir: str | None = None,
) -> list[Finding]:
    """Analyze every Python file under ``paths``; return sorted findings."""
    codes = active_codes(select, ignore)
    path_list = list(paths)
    contexts: list[FileContext] = []
    raw: list[Finding] = []
    for path in iter_python_files(path_list):
        loaded = load_context(path, tag=TAG)
        if isinstance(loaded, Finding):
            raw.append(loaded)
            continue
        contexts.append(loaded)

    graph = ProjectGraph.build(contexts)
    raw.extend(graph.findings)
    raw.extend(taint.analyze(graph))
    if tests_dir is None:
        tests_dir = checks.find_tests_dir(path_list)
    raw.extend(checks.check_boundary_coverage(contexts, tests_dir))
    raw.extend(checks.check_fork_safety(contexts, graph))
    raw.extend(checks.check_fork_thread_mix(contexts, graph))

    raw = [f for f in raw if f.code in codes]

    findings: list[Finding] = []
    used: dict[tuple[str, int], set[str]] = {}
    by_path = {ctx.path: ctx for ctx in contexts}
    for finding in raw:
        ctx = by_path.get(finding.path)
        suppressed = ctx is not None and finding.code in ctx.suppressions.get(
            finding.line, set()
        )
        if suppressed:
            used.setdefault((finding.path, finding.line), set()).add(finding.code)
        else:
            findings.append(finding)

    if UNUSED_SUPPRESSION_CODE in codes:
        for ctx in contexts:
            for lineno, supp_codes in ctx.suppressions.items():
                for code in sorted(supp_codes):
                    if code not in codes or code == UNUSED_SUPPRESSION_CODE:
                        continue
                    if code not in used.get((ctx.path, lineno), set()):
                        findings.append(Finding(
                            path=ctx.path,
                            line=lineno,
                            col=1,
                            code=UNUSED_SUPPRESSION_CODE,
                            message=(
                                f"unused suppression: no {code} finding on "
                                "this line — remove the ignore"
                            ),
                        ))
    return sorted(findings)
