"""Project-wide symbol table and import/call graph (stdlib ``ast`` only).

detflow's whole-program checks all stand on the structures built here:

* :class:`ModuleInfo` — one parsed module: its import bindings (local
  name -> dotted target), top-level functions, classes and methods, and
  a light local-type environment (``x = ClassName(...)`` binds ``x`` to
  that class, including classes imported from other project modules or
  from well-known library modules like ``repro.store.shard``).
* :class:`FunctionInfo` — one function or method, addressed by a fully
  qualified name (``repro.store.shard.ShardWriter.append``).
* :class:`ProjectGraph` — every module and function plus the *call
  graph*: for each function, the list of resolved project-internal call
  sites (:class:`CallSite`).  Calls that cannot be resolved statically
  (dynamic dispatch, library calls, getattr) are simply absent — every
  consumer of the graph treats missing edges conservatively.

Determinism: the graph is a pure function of the *set* of files given,
never of their discovery order.  Modules are keyed and iterated by
dotted module name, functions by qualified name, so two scans over the
same tree — whatever order the filesystem returns — produce identical
graphs (property-tested in ``tests/test_detflow_properties.py``).

``from x import *`` is rejected with a finding rather than guessed at:
a star import makes name resolution unsound, and unsound resolution
silently drops taint edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.tools.detlint.engine import FileContext, Finding

#: Star imports make resolution unsound; detflow refuses to guess.
IMPORT_STAR_CODE = "DF001"


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` calls ``callee`` at ``node``."""

    caller: str
    callee: str
    node: ast.Call


@dataclass
class FunctionInfo:
    """One function or method and everything resolution needs."""

    #: Fully qualified name: ``module.func`` or ``module.Class.method``.
    qualname: str
    module: str
    #: Class name for methods, ``None`` for plain functions.
    owner: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Positional parameter names, in order (``self`` included for
    #: methods — callers index arguments accordingly).
    params: list[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.owner is not None


@dataclass
class ClassInfo:
    """One class: its methods and ``self.attr`` constructor types."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: method name -> FunctionInfo qualname
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.attr = SomeClass(...)`` bindings seen anywhere in the
    #: class body: attr name -> class qualname.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module plus its resolution environment."""

    name: str
    ctx: FileContext
    #: local name -> dotted target for every import binding
    #: (``import a.b as m`` -> ``{"m": "a.b"}``; ``from a import f`` ->
    #: ``{"f": "a.f"}``; plain ``import a.b`` -> ``{"a": "a"}``).
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level function name -> qualname
    functions: dict[str, str] = field(default_factory=dict)
    #: class name -> ClassInfo qualname
    classes: dict[str, str] = field(default_factory=dict)


def _collect_imports(tree: ast.Module, module: str) -> tuple[dict[str, str], list[ast.ImportFrom]]:
    """Import bindings plus every ``from x import *`` node."""
    imports: dict[str, str] = {}
    stars: list[ast.ImportFrom] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: resolve against this module's package.
                parts = module.split(".")
                if len(parts) >= node.level:
                    prefix = ".".join(parts[: len(parts) - node.level])
                    base = f"{prefix}.{base}" if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    stars.append(node)
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports, stars


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ProjectGraph:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> resolved call sites (in source order)
        self.calls: dict[str, list[CallSite]] = {}
        self.findings: list[Finding] = []

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, contexts: list[FileContext]) -> "ProjectGraph":
        graph = cls()
        # Key everything by module name so the graph is independent of
        # the order the files were discovered in.
        for ctx in sorted(contexts, key=lambda c: (c.module, c.path)):
            graph._add_module(ctx)
        for name in sorted(graph.modules):
            graph._resolve_module_calls(graph.modules[name])
        return graph

    def _add_module(self, ctx: FileContext) -> None:
        if ctx.module in self.modules:
            # Two files claiming one module (e.g. duplicate fixture
            # overrides): first (path-sorted) wins, deterministically.
            return
        info = ModuleInfo(name=ctx.module, ctx=ctx)
        info.imports, stars = _collect_imports(ctx.tree, ctx.module)
        for star in stars:
            self.findings.append(ctx.finding(star, IMPORT_STAR_CODE, (
                f"'from {star.module} import *' defeats whole-program name "
                "resolution (detflow cannot tell which names this module "
                "now binds); import the needed names explicitly"
            )))
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{ctx.module}.{node.name}"
                info.functions[node.name] = qualname
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=ctx.module,
                    owner=None,
                    node=node,
                    params=_param_names(node),
                )
            elif isinstance(node, ast.ClassDef):
                self._add_class(ctx, info, node)
        self.modules[ctx.module] = info

    def _add_class(self, ctx: FileContext, info: ModuleInfo, node: ast.ClassDef) -> None:
        class_qual = f"{ctx.module}.{node.name}"
        cls_info = ClassInfo(qualname=class_qual, module=ctx.module, node=node)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{class_qual}.{item.name}"
                cls_info.methods[item.name] = qualname
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=ctx.module,
                    owner=node.name,
                    node=item,
                    params=_param_names(item),
                )
        info.classes[node.name] = class_qual
        self.classes[class_qual] = cls_info

    # -- name resolution -------------------------------------------------

    def resolve_name(self, module: ModuleInfo, dotted: str) -> str | None:
        """Resolve a dotted use (``m.f``, ``f``, ``Cls.method``) to a
        fully qualified project name, or ``None``.

        Resolution order: local top-level functions and classes, then
        import bindings (followed one hop into other project modules:
        ``from a import f`` resolves through module ``a``'s own
        re-exports if ``a`` is in the scan), then plain dotted names
        under an imported module.
        """
        head, _, rest = dotted.partition(".")
        target: str | None = None
        if head in module.functions:
            target = module.functions[head]
        elif head in module.classes:
            target = module.classes[head]
        elif head in module.imports:
            target = module.imports[head]
        else:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonical(full)

    def _canonical(self, qualname: str, _depth: int = 0) -> str | None:
        """Follow import chains to the defining module (bounded)."""
        if _depth > 8:  # import cycles: give up, keep the last name
            return qualname
        if qualname in self.functions or qualname in self.classes:
            return qualname
        # ``module.Class.method`` where the class is known.
        parent, _, leaf = qualname.rpartition(".")
        if parent in self.classes:
            method = self.classes[parent].methods.get(leaf)
            return method
        # ``module.name`` where ``module`` is scanned: follow one
        # re-export/import hop (``from a.b import f`` exposed as
        # ``a.f``), or conclude the name does not exist.
        if parent in self.modules:
            reexport = self.modules[parent].imports.get(leaf)
            if reexport is not None:
                return self._canonical(reexport, _depth + 1)
            return None
        # Unscanned territory (stdlib, third-party, out-of-scan repo
        # modules): keep the dotted name as an opaque external id.
        return qualname

    # -- local type inference --------------------------------------------

    def _class_of_call(self, module: ModuleInfo, call: ast.expr) -> str | None:
        """``SomeClass(...)`` -> the class qualname (scanned or external)."""
        if not isinstance(call, ast.Call):
            return None
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self.resolve_name(module, dotted)
        if resolved is None:
            return None
        if resolved in self.classes:
            return resolved
        # External class (e.g. repro.store.shard.ShardWriter when only
        # fixtures are scanned): treat a CamelCase leaf as a class.
        leaf = resolved.rpartition(".")[2]
        if leaf[:1].isupper() and resolved not in self.functions:
            return resolved
        return None

    def local_types(
        self, module: ModuleInfo, fn: FunctionInfo
    ) -> dict[str, str]:
        """``{local_name: class_qualname}`` for constructor assignments
        inside ``fn`` (plus ``self`` for methods)."""
        types: dict[str, str] = {}
        if fn.is_method:
            types["self"] = f"{fn.module}.{fn.owner}"
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                cls = self._class_of_call(module, node.value)
                if cls is None:
                    continue
                if isinstance(target, ast.Name):
                    types[target.id] = cls
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    types[f"self.{target.attr}"] = cls
        return types

    def class_attr_types(self, class_qual: str) -> dict[str, str]:
        """``self.attr`` constructor types aggregated over all methods."""
        info = self.classes.get(class_qual)
        if info is None:
            return {}
        if info.attr_types:
            return info.attr_types
        module = self.modules[info.module]
        out: dict[str, str] = {}
        for method_qual in info.methods.values():
            fn = self.functions[method_qual]
            for name, cls in self.local_types(module, fn).items():
                if name.startswith("self."):
                    out.setdefault(name[len("self."):], cls)
        info.attr_types = out
        return out

    # -- call resolution -------------------------------------------------

    def resolve_call(
        self,
        module: ModuleInfo,
        fn: FunctionInfo,
        call: ast.Call,
        types: dict[str, str] | None = None,
    ) -> str | None:
        """Resolve one call expression to a function qualname.

        Handles: plain names (local function or ``from x import f``),
        dotted module calls (``mod.f()``), ``self.method()``,
        ``ClassName.method(...)``, and method calls on locals whose
        class is known from a constructor assignment
        (``w = ShardWriter(...); w.append(...)``).
        """
        if types is None:
            types = self.local_types(module, fn)
        func = call.func
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        # Method call on a typed local / self attribute.
        if rest:
            receiver: str | None = None
            if head in types:
                receiver = types[head]
            if head == "self" and "." in rest:
                attr, _, tail = rest.partition(".")
                attr_types = self.class_attr_types(types.get("self", ""))
                if attr in attr_types and tail:
                    receiver, rest = attr_types[attr], tail
            if receiver is not None:
                resolved = self._canonical(f"{receiver}.{rest}")
                if resolved is not None:
                    return resolved
                return f"{receiver}.{rest}"
        return self.resolve_name(module, dotted)

    def _resolve_module_calls(self, module: ModuleInfo) -> None:
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            if fn.module != module.name:
                continue
            types = self.local_types(module, fn)
            sites: list[CallSite] = []
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.resolve_call(module, fn, node, types)
                if callee is not None:
                    sites.append(CallSite(caller=qualname, callee=callee, node=node))
            self.calls[qualname] = sites

    # -- queries ----------------------------------------------------------

    def function_for_module(self, module: str) -> list[FunctionInfo]:
        return [
            self.functions[q]
            for q in sorted(self.functions)
            if self.functions[q].module == module
        ]

    def edge_set(self) -> set[tuple[str, str]]:
        """``{(caller, callee)}`` over resolved project-internal edges."""
        out: set[tuple[str, str]] = set()
        for caller, sites in self.calls.items():
            for site in sites:
                if site.callee in self.functions:
                    out.add((caller, site.callee))
        return out
