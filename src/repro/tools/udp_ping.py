"""UDP-Ping: the paper's custom latency measurement app.

Section 3.2: "we have developed an Android application that sends ping
packets using UDP ... as ICMP ping packets are often blocked".  Each probe
is a 1024-byte UDP datagram; the RTT of each *acknowledged* packet is
recorded.  Probes ride the same channel conditions as the data tests; a
probe or its reply disappearing counts as unacknowledged, not as an RTT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.conditions import LinkConditions

#: The paper's probe payload.
PING_PAYLOAD_BYTES = 1024

#: Probes per second (one per second keeps parity with the 1 Hz channel).
DEFAULT_RATE_HZ = 1.0


@dataclass
class PingResult:
    """RTT samples and loss accounting for one UDP-Ping session."""

    rtt_samples_ms: list[float] = field(default_factory=list)
    probes_sent: int = 0
    probes_lost: int = 0

    @property
    def loss_rate(self) -> float:
        if self.probes_sent == 0:
            return 0.0
        return self.probes_lost / self.probes_sent

    def percentile_ms(self, q: float) -> float:
        """RTT percentile (q in [0, 100])."""
        if not self.rtt_samples_ms:
            return float("nan")
        return float(np.percentile(self.rtt_samples_ms, q))

    @property
    def median_ms(self) -> float:
        return self.percentile_ms(50.0)


def run_udp_ping(
    samples: list[LinkConditions],
    probes_per_second: float = DEFAULT_RATE_HZ,
    seed: int = 0,
) -> PingResult:
    """Run UDP-Ping over a channel trace.

    Each probe inherits the RTT of the second it is sent in, plus a small
    serialization term for the 1024-byte probe + reply on the current
    capacities.  The probe (or its echo) is lost with the second's loss
    probability applied in each direction.
    """
    if probes_per_second <= 0:
        raise ValueError(
            f"probe rate must be positive, got {probes_per_second}"
        )
    gen = np.random.default_rng(seed)
    result = PingResult()
    for sample in samples:
        for _ in range(max(1, int(round(probes_per_second)))):
            result.probes_sent += 1
            if sample.is_outage:
                result.probes_lost += 1
                continue
            # Loss applied on the way out (uplink) and the way back.
            if gen.random() < sample.loss_rate or gen.random() < sample.loss_rate:
                result.probes_lost += 1
                continue
            serialization_ms = 0.0
            if sample.uplink_mbps > 0:
                serialization_ms += PING_PAYLOAD_BYTES * 8.0 / (sample.uplink_mbps * 1e6) * 1e3
            if sample.downlink_mbps > 0:
                serialization_ms += PING_PAYLOAD_BYTES * 8.0 / (sample.downlink_mbps * 1e6) * 1e3
            result.rtt_samples_ms.append(sample.rtt_ms + serialization_ms)
    return result
