"""iPerf-like test harness on the packet-level simulator.

One call = one iPerf invocation: build the path from channel samples, run
the transport for the test duration, and report the numbers iPerf (plus
the paper's tcpdump post-processing) would: mean throughput, a per-second
throughput series, and retransmission/loss rates.

``run_mptcp_test`` mirrors the paper's modified iPerf with the
``--multipath`` flag, running over MpShell virtual interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.conditions import LinkConditions
from repro.emu.mpshell import MpShell
from repro.net.link import bdp_bytes
from repro.net.path import Path
from repro.net.simulator import Simulator
from repro.transport.mptcp import open_mptcp_connection
from repro.transport.parallel import ParallelTcp
from repro.transport.udp import open_udp_flow
from repro.units import DEFAULT_MTU_BYTES


@dataclass
class IperfResult:
    """What one test run reports."""

    protocol: str
    duration_s: float
    bytes_received: int
    #: 1 Hz goodput series (Mbps).
    series_mbps: list[float] = field(default_factory=list)
    retransmission_rate: float = 0.0
    udp_loss_rate: float = 0.0
    rto_events: int = 0

    @property
    def throughput_mbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_received * 8.0 / 1e6 / self.duration_s


def binned_series_mbps(
    delivery_log: list[tuple[float, int]],
    duration_s: float,
    segment_bytes: int,
    bin_s: float = 1.0,
) -> list[float]:
    """Convert an in-order delivery log into a binned throughput series."""
    if bin_s <= 0:
        raise ValueError(f"bin width must be positive, got {bin_s}")
    bins = max(1, int(round(duration_s / bin_s)))
    series = [0.0] * bins
    for time_s, segments in delivery_log:
        idx = min(int(time_s / bin_s), bins - 1)
        series[idx] += segments * segment_bytes * 8.0 / 1e6 / bin_s
    return series


def _default_buffer(samples: list[LinkConditions], downlink: bool) -> int:
    """~6x mean BDP: the bufferbloated bottleneck queues real drive tests see.

    Bounded between a 32-packet floor and ~2 s of the mean rate so a slow
    uplink never gets a queue that takes a minute to drain (which would
    starve the RTO estimator instead of signalling congestion).
    """
    live = [s for s in samples if not s.is_outage] or samples
    mean_rate = sum(s.capacity_mbps(downlink) for s in live) / len(live)
    mean_rtt = sum(s.rtt_ms for s in live) / len(live)
    two_seconds = int(mean_rate * 1e6 / 8.0 * 2.0)
    floor = 32 * DEFAULT_MTU_BYTES
    ceiling = max(two_seconds, 64 * DEFAULT_MTU_BYTES)
    return int(min(max(6 * bdp_bytes(mean_rate, mean_rtt), floor), ceiling))


def run_tcp_test(
    samples: list[LinkConditions],
    duration_s: float = 60.0,
    parallel: int = 1,
    downlink: bool = True,
    segment_bytes: int = DEFAULT_MTU_BYTES,
    congestion: str = "cubic",
    buffer_bytes: int | None = None,
    receiver_buffer_segments: int = 1 << 20,
    seed: int = 0,
) -> IperfResult:
    """A TCP bulk-transfer test (iPerf ``-c server [-P N]``)."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    sim = Simulator()
    rng = np.random.default_rng(seed)
    path = Path.from_conditions(
        sim,
        samples,
        rng,
        downlink=downlink,
        buffer_bytes=buffer_bytes or _default_buffer(samples, downlink),
        name="iperf-tcp",
    )
    group = ParallelTcp(
        sim,
        path,
        num_connections=parallel,
        segment_bytes=segment_bytes,
        congestion=congestion,
        receiver_buffer_segments=receiver_buffer_segments,
    )
    group.start()
    sim.run(until_s=duration_s)
    stats = group.stats
    log = [entry for r in group.receivers for entry in r.delivery_log]
    return IperfResult(
        protocol="tcp",
        duration_s=duration_s,
        bytes_received=stats.bytes_received,
        series_mbps=binned_series_mbps(log, duration_s, segment_bytes),
        retransmission_rate=stats.retransmission_rate,
        rto_events=sum(s.stats.rto_events for s in group.senders),
    )


def run_udp_test(
    samples: list[LinkConditions],
    duration_s: float = 60.0,
    downlink: bool = True,
    target_mbps: float | None = None,
    segment_bytes: int = DEFAULT_MTU_BYTES,
    buffer_bytes: int | None = None,
    seed: int = 0,
) -> IperfResult:
    """A UDP blast test (iPerf ``-u -b <rate>``).

    The default target rate is 1.2x the trace's peak capacity, which is how
    the paper probes available bandwidth.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    sim = Simulator()
    rng = np.random.default_rng(seed)
    path = Path.from_conditions(
        sim,
        samples,
        rng,
        downlink=downlink,
        buffer_bytes=buffer_bytes or _default_buffer(samples, downlink),
        name="iperf-udp",
    )
    if target_mbps is None:
        target_mbps = 1.2 * max(s.capacity_mbps(downlink) for s in samples)
        target_mbps = max(target_mbps, 1.0)
    sender, receiver = open_udp_flow(
        sim, path, target_mbps, segment_bytes=segment_bytes
    )
    sender.start()
    sim.run(until_s=duration_s)
    return IperfResult(
        protocol="udp",
        duration_s=duration_s,
        bytes_received=sender.stats.bytes_received,
        series_mbps=binned_series_mbps(
            receiver.delivery_log, duration_s, segment_bytes
        ),
        udp_loss_rate=sender.stats.loss_rate,
    )


@dataclass
class MptcpResult:
    """Result of an MPTCP download over MpShell interfaces."""

    duration_s: float
    bytes_received: int
    series_mbps: list[float]
    reinjections: int
    retransmission_rate: float

    @property
    def throughput_mbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_received * 8.0 / 1e6 / self.duration_s


def run_mptcp_test(
    traces: dict[str, list[LinkConditions]],
    duration_s: float = 60.0,
    scheduler: str = "blest",
    buffer_segments: int = 4096,
    segment_bytes: int = DEFAULT_MTU_BYTES,
    congestion: str = "cubic",
    seed: int = 0,
    replay_loss: bool = False,
) -> MptcpResult:
    """The paper's MPTCP experiment: iPerf with MPTCP over MpShell.

    ``traces`` maps interface names (e.g. ``{"MOB": ..., "ATT": ...}``)
    to aligned channel samples; one subflow is created per interface.
    ``buffer_segments`` is the shared meta receive buffer — the knob the
    paper tunes to >10x BDP to unlock multipath gains.

    ``replay_loss`` defaults to False to match the paper's methodology:
    MpShell replays *UDP throughput traces*, so channel loss appears only
    as capacity dips/zeros, not as replayed random drops (Section 6).
    """
    if not traces:
        raise ValueError("need at least one interface trace")
    shell = MpShell(seed=seed)
    paths = [
        shell.add_interface(
            name, samples, mtu_bytes=segment_bytes, replay_loss=replay_loss
        )
        for name, samples in traces.items()
    ]
    connection, receiver = open_mptcp_connection(
        shell.sim,
        paths,
        scheduler=scheduler,
        buffer_segments=buffer_segments,
        segment_bytes=segment_bytes,
        congestion=congestion,
    )
    connection.start()
    shell.run(duration_s)
    return MptcpResult(
        duration_s=duration_s,
        bytes_received=receiver.bytes_received,
        series_mbps=binned_series_mbps(
            receiver.delivery_log, duration_s, segment_bytes
        ),
        reinjections=connection.stats.reinjections,
        retransmission_rate=connection.stats.retransmission_rate,
    )


def run_single_path_over_mpshell(
    name: str,
    samples: list[LinkConditions],
    duration_s: float = 60.0,
    segment_bytes: int = DEFAULT_MTU_BYTES,
    congestion: str = "cubic",
    receiver_buffer_segments: int = 1 << 20,
    seed: int = 0,
    replay_loss: bool = False,
) -> IperfResult:
    """Single-path TCP through an MpShell interface (the paper's baseline:
    one iPerf client per interface; loss replay off to match the paper's
    UDP-trace methodology, see :func:`run_mptcp_test`)."""
    shell = MpShell(seed=seed)
    path = shell.add_interface(
        name, samples, mtu_bytes=segment_bytes, replay_loss=replay_loss
    )
    group = ParallelTcp(
        shell.sim,
        path,
        num_connections=1,
        segment_bytes=segment_bytes,
        congestion=congestion,
        receiver_buffer_segments=receiver_buffer_segments,
    )
    group.start()
    shell.run(duration_s)
    stats = group.stats
    return IperfResult(
        protocol="tcp",
        duration_s=duration_s,
        bytes_received=stats.bytes_received,
        series_mbps=binned_series_mbps(
            group.receivers[0].delivery_log, duration_s, segment_bytes
        ),
        retransmission_rate=stats.retransmission_rate,
        rto_events=sum(s.stats.rto_events for s in group.senders),
    )
