"""SARIF 2.1.0 serialization shared by detlint and detflow.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest to annotate findings inline on PRs.  One function turns a list
of :class:`~repro.tools.detlint.engine.Finding` objects into a minimal,
valid ``sarif-version 2.1.0`` log: one run, one driver tool, one result
per finding, with the rule registry embedded so viewers can show the
one-line summaries.

Output is deterministic: findings are emitted in their (already stable)
sorted order, rules sorted by id, keys sorted by the JSON serializer —
two identical scans produce byte-identical SARIF.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.tools.detlint.engine import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_log(
    tool_name: str,
    findings: Iterable[Finding],
    rules: Mapping[str, str],
    tool_version: str = "1.0.0",
    info_uri: str = "https://example.invalid/docs/STATIC_ANALYSIS.md",
) -> dict:
    """Build the SARIF log object (``rules`` maps code -> summary)."""
    findings = list(findings)
    seen_codes = {f.code for f in findings}
    rule_ids = sorted(set(rules) | seen_codes)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": info_uri,
                        "rules": [
                            {
                                "id": code,
                                "shortDescription": {
                                    "text": rules.get(code, code)
                                },
                            }
                            for code in rule_ids
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.code,
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": f.path.replace("\\", "/"),
                                    },
                                    "region": {
                                        "startLine": max(f.line, 1),
                                        "startColumn": max(f.col, 1),
                                    },
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }


def render_sarif(
    tool_name: str,
    findings: Iterable[Finding],
    rules: Mapping[str, str],
) -> str:
    """The SARIF log as a canonical (sorted-keys) JSON string."""
    return json.dumps(
        sarif_log(tool_name, findings, rules), indent=2, sort_keys=True
    )
