"""CLI for detlint: ``python -m repro.tools.detlint [paths] [options]``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error — the same
contract ruff and mypy use, so CI treats all three uniformly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.tools.detlint.engine import Finding, RULES, rule_codes, run_paths


def _comma_codes(value: str) -> list[str]:
    return [code.strip() for code in value.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.detlint",
        description=(
            "Determinism & invariant linter for this repository "
            "(see docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", type=_comma_codes, default=None,
        metavar="CODES", help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore", action="append", type=_comma_codes, default=None,
        metavar="CODES", help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _flatten(groups: list[list[str]] | None) -> list[str] | None:
    if groups is None:
        return None
    return [code for group in groups for code in group]


def _render_text(findings: list[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def _render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {"findings": [f.to_dict() for f in findings], "count": len(findings)},
        indent=2,
        sort_keys=True,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        # Import for side effect: rule registration.
        from repro.tools.detlint import rules as _rules  # noqa: F401

        for info in RULES.values():
            scope = "project" if info.project else "file"
            print(f"{info.code:<8} [{scope:>7}] {info.summary}")
        print(f"{'SUP001':<8} [{'file':>7}] unused # detlint: ignore[...] suppression")
        return 0

    try:
        findings = run_paths(
            args.paths,
            select=_flatten(args.select),
            ignore=_flatten(args.ignore),
        )
    except ValueError as exc:
        print(f"detlint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(findings))
    elif findings:
        print(_render_text(findings))
    else:
        print("detlint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
