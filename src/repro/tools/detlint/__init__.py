"""detlint — determinism & invariant static analysis for this repo.

Run it with ``python -m repro.tools.detlint [paths]``; the rules and
their rationale live in ``docs/STATIC_ANALYSIS.md``.
"""

from repro.tools.detlint.engine import (
    Finding,
    RULES,
    rule_codes,
    run_paths,
)

__all__ = ["Finding", "RULES", "rule_codes", "run_paths"]
