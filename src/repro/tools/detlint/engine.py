"""The detlint engine: findings, the rule registry, and suppressions.

detlint is a purpose-built static analyzer for *this* repository's
determinism contract (see ``docs/STATIC_ANALYSIS.md``).  General linters
check style; detlint checks the invariants the keystone byte-identity
tests rely on — all randomness flows through :mod:`repro.rng`
substreams, simulation code never reads wall clocks, and nothing
nondeterministic reaches a fingerprinted or digested artifact.  It is
stdlib-only (``ast``) so it runs anywhere the repo does.

Architecture:

* :class:`Finding` — one diagnostic, sortable into stable output order.
* :class:`FileContext` — a parsed module plus everything rules need
  (dotted module name, raw lines, per-line suppressions) and a scratch
  area where file rules leave data for project rules.
* file rules (:func:`rule`) run per module; project rules
  (:func:`project_rule`) run once over all parsed modules and check
  cross-file invariants (e.g. that the manifest's metric exclusions
  still name real series).
* suppressions — ``# detlint: ignore[CODE]`` on the offending line
  silences that code there; a suppression that silences nothing is
  itself reported (:data:`UNUSED_SUPPRESSION_CODE`), so stale ignores
  cannot accumulate.

The dotted module name drives rule scoping (e.g. wall-clock bans apply
to simulation packages only).  It is normally derived from the file
path (``src/repro/leo/channel.py`` -> ``repro.leo.channel``); test
fixtures that live outside the package tree can claim a module with a
``# detlint-module: repro.core.something`` header comment.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

#: Code attached to ``# detlint: ignore[...]`` comments that suppressed
#: nothing.  Selectable/ignorable like any rule code.
UNUSED_SUPPRESSION_CODE = "SUP001"

#: Code attached to files that fail to parse.
PARSE_ERROR_CODE = "SYN001"

#: Suppression/module-override comments are tagged with the tool name
#: (``detlint`` here, ``detflow`` for the whole-program analyzer), so a
#: suppression aimed at one tool never silences the other.
def _suppression_re(tag: str) -> re.Pattern[str]:
    return re.compile(rf"#\s*{tag}:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def _module_override_re(tag: str) -> re.Pattern[str]:
    return re.compile(rf"^#\s*{tag}-module:\s*([A-Za-z0-9_.]+)\s*$")


_SUPPRESSION_RE = _suppression_re("detlint")
_MODULE_OVERRIDE_RE = _module_override_re("detlint")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything the rules know about one parsed module."""

    path: str
    module: str
    tree: ast.Module
    lines: list[str]
    #: line -> set of rule codes suppressed on that line.
    suppressions: dict[int, set[str]]
    #: Scratch shared with project rules; file rules append here (e.g.
    #: INV101 leaves every registered metric-series name).
    shared: dict[str, Any] = field(default_factory=dict)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry: code, one-line summary, and the check callable."""

    code: str
    summary: str
    check: Callable[..., Iterable[Finding]]
    project: bool = False


#: All registered rules, keyed by code (insertion order = doc order).
RULES: dict[str, RuleInfo] = {}


def rule(code: str, summary: str) -> Callable[[Callable[[FileContext], Iterable[Finding]]], Callable[[FileContext], Iterable[Finding]]]:
    """Register a per-file rule (``check(ctx) -> findings``)."""

    def wrap(fn: Callable[[FileContext], Iterable[Finding]]) -> Callable[[FileContext], Iterable[Finding]]:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code!r}")
        RULES[code] = RuleInfo(code=code, summary=summary, check=fn)
        return fn

    return wrap


def project_rule(code: str, summary: str) -> Callable[[Callable[[list[FileContext]], Iterable[Finding]]], Callable[[list[FileContext]], Iterable[Finding]]]:
    """Register a cross-file rule (``check(contexts) -> findings``).

    A project rule may share a code with a per-file rule (both halves of
    one documented invariant); it is stored under ``<code>/project``.
    """

    def wrap(fn: Callable[[list[FileContext]], Iterable[Finding]]) -> Callable[[list[FileContext]], Iterable[Finding]]:
        key = f"{code}/project"
        if key in RULES:
            raise ValueError(f"duplicate project rule code {code!r}")
        RULES[key] = RuleInfo(code=code, summary=summary, check=fn, project=True)
        return fn

    return wrap


def rule_codes() -> list[str]:
    """Every selectable rule code (deduplicated, registry order)."""
    seen: list[str] = []
    for info in RULES.values():
        if info.code not in seen:
            seen.append(info.code)
    if UNUSED_SUPPRESSION_CODE not in seen:
        seen.append(UNUSED_SUPPRESSION_CODE)
    return seen


# -- module discovery ----------------------------------------------------


def module_name_for(path: str, first_line: str = "", tag: str = "detlint") -> str:
    """Dotted module name for a file path.

    A ``# <tag>-module: x.y.z`` header comment wins (fixtures);
    otherwise the name is the path from the last ``repro`` directory
    down (how the repo lays out ``src/repro/...``); otherwise the bare
    stem.
    """
    override_re = (
        _MODULE_OVERRIDE_RE if tag == "detlint" else _module_override_re(tag)
    )
    match = override_re.match(first_line.strip())
    if match:
        return match.group(1)
    parts = list(os.path.normpath(path).split(os.sep))
    stem = os.path.splitext(parts[-1])[0]
    parts[-1] = stem
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [stem]
    if parts[-1] == "__init__":
        parts = parts[:-1] or [stem]
    return ".".join(parts)


def parse_suppressions(lines: list[str], tag: str = "detlint") -> dict[int, set[str]]:
    """``{line_number: {codes}}`` for every ``<tag>: ignore`` comment."""
    suppression_re = (
        _SUPPRESSION_RE if tag == "detlint" else _suppression_re(tag)
    )
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = suppression_re.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            if codes:
                out[lineno] = codes
    return out


# -- running -------------------------------------------------------------


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    full = os.path.join(dirpath, name)
                    if full not in seen:
                        seen.add(full)
                        yield full


def load_context(path: str, tag: str = "detlint") -> FileContext | Finding:
    """Parse one file into a :class:`FileContext` (or a parse Finding)."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(path=path, line=1, col=1, code=PARSE_ERROR_CODE,
                       message=f"unreadable: {exc}")
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return Finding(path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                       code=PARSE_ERROR_CODE, message=f"syntax error: {exc.msg}")
    lines = text.splitlines()
    return FileContext(
        path=path,
        module=module_name_for(path, lines[0] if lines else "", tag),
        tree=tree,
        lines=lines,
        suppressions=parse_suppressions(lines, tag),
    )


def active_codes(select: Iterable[str] | None, ignore: Iterable[str] | None) -> set[str]:
    """Resolve ``--select``/``--ignore`` into the set of codes to run."""
    codes = set(rule_codes())
    if select:
        wanted = set(select)
        unknown = wanted - codes
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes = wanted
    if ignore:
        unknown = set(ignore) - set(rule_codes())
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes -= set(ignore)
    return codes


def run_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; return sorted findings.

    Suppressed findings are dropped; suppressions that matched nothing
    become :data:`UNUSED_SUPPRESSION_CODE` findings (unless that code
    is itself deselected).  Parse failures surface as
    :data:`PARSE_ERROR_CODE` findings — a file detlint cannot read is
    a file whose invariants nobody checked.
    """
    # Import for side effect: rule registration.
    from repro.tools.detlint import rules as _rules  # noqa: F401

    codes = active_codes(select, ignore)
    contexts: list[FileContext] = []
    raw: list[Finding] = []
    for path in iter_python_files(paths):
        loaded = load_context(path)
        if isinstance(loaded, Finding):
            raw.append(loaded)
            continue
        contexts.append(loaded)

    for ctx in contexts:
        for info in RULES.values():
            if info.project or info.code not in codes:
                continue
            raw.extend(info.check(ctx))
    for info in RULES.values():
        if info.project and info.code in codes:
            raw.extend(info.check(contexts))

    findings: list[Finding] = []
    used: dict[tuple[str, int], set[str]] = {}
    by_path = {ctx.path: ctx for ctx in contexts}
    for finding in raw:
        ctx = by_path.get(finding.path)
        suppressed = ctx is not None and finding.code in ctx.suppressions.get(
            finding.line, set()
        )
        if suppressed:
            used.setdefault((finding.path, finding.line), set()).add(finding.code)
        else:
            findings.append(finding)

    if UNUSED_SUPPRESSION_CODE in codes:
        for ctx in contexts:
            for lineno, supp_codes in ctx.suppressions.items():
                for code in sorted(supp_codes):
                    if code not in codes or code == UNUSED_SUPPRESSION_CODE:
                        continue
                    if code not in used.get((ctx.path, lineno), set()):
                        findings.append(Finding(
                            path=ctx.path,
                            line=lineno,
                            col=1,
                            code=UNUSED_SUPPRESSION_CODE,
                            message=(
                                f"unused suppression: no {code} finding on "
                                "this line — remove the ignore"
                            ),
                        ))
    return sorted(findings)
