"""The detlint rule set: DET001–DET007, INV101, and INV102.

Each rule enforces one determinism or observability invariant that the
keystone byte-identity tests (``tests/test_parallel_campaign.py``,
``tests/test_resilience.py``) rely on.  Rules are documented with
rationale and examples in ``docs/STATIC_ANALYSIS.md``; keep the two in
sync when adding rules.

All checks are AST-based and deliberately conservative: a rule that can
fire falsely trains people to sprinkle ignores, which defeats the
unused-suppression audit.  Where a rule needs to scope by package (e.g.
DET002's simulation-only wall-clock ban) the scoping constant lives here
so tests and docs can reference it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.tools.detlint.engine import FileContext, Finding, project_rule, rule

# -- shared helpers ------------------------------------------------------


def _walk(tree: ast.AST) -> Iterator[ast.AST]:
    return ast.walk(tree)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names bound to ``module`` via ``import``/``import as``."""
    aliases: set[str] = set()
    for node in _walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module.split(".")[0])
                elif alias.name.startswith(module + ".") and alias.asname is None:
                    # ``import numpy.random`` binds ``numpy``.
                    aliases.add(module.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            parent, _, leaf = module.rpartition(".")
            if parent and node.module == parent:
                for alias in node.names:
                    if alias.name == leaf:
                        aliases.add(alias.asname or leaf)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> dict[str, ast.ImportFrom]:
    """``{imported_name: node}`` for ``from module import name`` bindings."""
    found: dict[str, ast.ImportFrom] = {}
    for node in _walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                found[alias.name] = node
    return found


def _in_packages(module: str, packages: Iterable[str]) -> bool:
    return any(module == pkg or module.startswith(pkg + ".") for pkg in packages)


# -- DET001: all randomness via repro.rng --------------------------------

#: ``numpy.random`` module-level (global-state or convenience) entry
#: points.  Constructing a seeded generator (``default_rng``,
#: ``Generator``, ``PCG64``, ``SeedSequence``) is fine — banning those
#: would ban :mod:`repro.rng` itself.
NUMPY_GLOBAL_RNG_FNS = frozenset({
    "seed", "get_state", "set_state", "random", "random_sample", "ranf",
    "sample", "rand", "randn", "randint", "random_integers", "bytes",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "binomial", "beta",
    "gamma", "lognormal", "pareto", "rayleigh", "weibull",
})

#: The one module allowed to own RNG plumbing.
RNG_HOME = "repro.rng"


@rule("DET001", "no random/numpy.random global RNG outside repro.rng")
def det001(ctx: FileContext) -> Iterable[Finding]:
    if ctx.module == RNG_HOME:
        return []
    findings: list[Finding] = []
    msg = (
        "draws from {src} bypass the seeded substream discipline; "
        "take an rng from repro.rng.RngStreams instead"
    )
    for node in _walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(ctx.finding(
                        node, "DET001", msg.format(src="stdlib random")))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                findings.append(ctx.finding(
                    node, "DET001", msg.format(src="stdlib random")))
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in NUMPY_GLOBAL_RNG_FNS:
                        findings.append(ctx.finding(node, "DET001", msg.format(
                            src=f"numpy.random.{alias.name}")))
    numpy_aliases = _module_aliases(ctx.tree, "numpy")
    npr_aliases = _module_aliases(ctx.tree, "numpy.random")
    for node in _walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        fn = node.func.attr
        if fn not in NUMPY_GLOBAL_RNG_FNS:
            continue
        base = node.func.value
        dotted = _dotted(base)
        hit = False
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if head in numpy_aliases and rest == "random":
                hit = True          # np.random.<fn>(...)
            elif dotted in npr_aliases:
                hit = True          # npr.<fn>(...) after ``from numpy import random``
        if hit:
            findings.append(ctx.finding(
                node, "DET001", msg.format(src=f"numpy.random.{fn}")))
    return findings


# -- DET002: no wall clocks in simulation packages -----------------------

#: Packages where simulated time is the only time.
SIM_PACKAGES = (
    "repro.leo", "repro.cellular", "repro.net", "repro.core",
    "repro.faults", "repro.transport", "repro.emu", "repro.geo",
)

#: Wall-clock readers that leak host time into simulation state.
#: ``time.perf_counter`` is deliberately absent: campaign timing spans
#: feed only the ``WALL_CLOCK_METRICS``-excluded series, so it cannot
#: reach a deterministic artifact (see docs/STATIC_ANALYSIS.md).
WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
})

#: ``datetime``/``date`` constructors that read the host clock.  ``now``
#: only counts when argless — ``now(tz)`` is equally wall-clock but the
#: issue scopes the rule to the ambient-default forms seen in the wild.
WALL_CLOCK_DATETIME_FNS = frozenset({"now", "today", "utcnow"})


@rule("DET002", "no wall-clock reads in simulation packages")
def det002(ctx: FileContext) -> Iterable[Finding]:
    if not _in_packages(ctx.module, SIM_PACKAGES):
        return []
    findings: list[Finding] = []
    time_aliases = _module_aliases(ctx.tree, "time")
    datetime_mod_aliases = _module_aliases(ctx.tree, "datetime")
    datetime_cls_aliases = {
        (alias.asname or alias.name)
        for node in _walk(ctx.tree)
        if isinstance(node, ast.ImportFrom) and node.module == "datetime"
        for alias in node.names
        if alias.name in ("datetime", "date")
    }
    for name, node in _from_imports(ctx.tree, "time").items():
        if name in WALL_CLOCK_TIME_FNS:
            findings.append(ctx.finding(node, "DET002", (
                f"time.{name} imported in simulation code; simulated "
                "drives must only see DES/simulated time"
            )))
    for node in _walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        fn = node.func.attr
        dotted = _dotted(node.func.value)
        if fn in WALL_CLOCK_TIME_FNS and dotted in time_aliases:
            findings.append(ctx.finding(node, "DET002", (
                f"time.{fn}() reads the host clock; simulation code must "
                "derive all timing from simulated time"
            )))
            continue
        if fn in WALL_CLOCK_DATETIME_FNS:
            if fn == "now" and (node.args or node.keywords):
                continue
            if dotted is None:
                continue
            head = dotted.split(".")[0]
            leaf = dotted.split(".")[-1]
            if (
                head in datetime_mod_aliases
                and leaf in ("datetime", "date", *datetime_mod_aliases)
            ) or dotted in datetime_cls_aliases:
                findings.append(ctx.finding(node, "DET002", (
                    f"datetime {fn}() reads the host clock; stamp "
                    "artifacts outside simulation packages (repro.obs)"
                )))
    return findings


# -- DET003: no set iteration feeding ordered output ---------------------

#: Call consumers whose output order mirrors iteration order.
ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


def _is_setish(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setish(node.left) or _is_setish(node.right)
    return False


@rule("DET003", "no iteration over sets feeding ordered output")
def det003(ctx: FileContext) -> Iterable[Finding]:
    findings: list[Finding] = []
    msg = (
        "set iteration order varies across processes/runs; wrap in "
        "sorted(...) before it can reach ordered output"
    )
    for node in _walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_setish(node.iter):
            findings.append(ctx.finding(node.iter, "DET003", msg))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_setish(gen.iter):
                    findings.append(ctx.finding(gen.iter, "DET003", msg))
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ORDERED_CONSUMERS
                and node.args
                and _is_setish(node.args[0])
            ):
                findings.append(ctx.finding(node.args[0], "DET003", msg))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_setish(node.args[0])
            ):
                findings.append(ctx.finding(node.args[0], "DET003", msg))
    return findings


# -- DET004: no ambient entropy near fingerprints/digests ----------------

#: ``(module, function)`` pairs that mint process-unique values.
ENTROPY_SOURCES = {
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}


@rule("DET004", "no os.urandom/uuid/hash() entropy in artifact code")
def det004(ctx: FileContext) -> Iterable[Finding]:
    findings: list[Finding] = []
    aliases = {
        mod: _module_aliases(ctx.tree, mod) for mod in ("os", "uuid", "secrets")
    }
    froms = {
        mod: _from_imports(ctx.tree, mod) for mod in ("os", "uuid", "secrets")
    }
    for mod, fn in ENTROPY_SOURCES:
        if fn in froms[mod]:
            findings.append(ctx.finding(froms[mod][fn], "DET004", (
                f"{mod}.{fn} mints per-process entropy; fingerprints and "
                "digests must be pure functions of config + seed"
            )))
    if aliases["secrets"] or froms["secrets"]:
        node = next(
            n for n in _walk(ctx.tree)
            if isinstance(n, (ast.Import, ast.ImportFrom))
            and (getattr(n, "module", None) == "secrets"
                 or any(a.name.split(".")[0] == "secrets" for a in n.names))
        )
        findings.append(ctx.finding(node, "DET004", (
            "the secrets module is entropy by design; nothing in a "
            "deterministic reproduction should need it"
        )))
    for node in _walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "hash" and node.args:
            findings.append(ctx.finding(node, "DET004", (
                "builtin hash() is salted per process (PYTHONHASHSEED); "
                "use hashlib over a canonical encoding instead"
            )))
        elif isinstance(node.func, ast.Attribute):
            dotted = _dotted(node.func.value)
            for mod, fn in ENTROPY_SOURCES:
                if node.func.attr == fn and dotted in aliases[mod]:
                    findings.append(ctx.finding(node, "DET004", (
                        f"{mod}.{fn}() mints per-process entropy; "
                        "fingerprints and digests must be pure functions "
                        "of config + seed"
                    )))
    return findings


# -- DET005: CampaignConfig fingerprint fields are write-once ------------

#: The exact field set hashed by ``CampaignConfig.fingerprint()``.
#: ``workers`` and ``resilience`` are deliberately absent — they are
#: execution knobs, excluded from the fingerprint so checkpoints
#: interchange across worker counts and retry policies.
FINGERPRINT_FIELDS = frozenset({
    "seed", "num_interstate_drives", "num_city_drives", "num_ring_drives",
    "max_drive_seconds", "test_duration_s", "window_period_s", "cycle",
    "city_loop_segments", "fault_schedule",
})

#: Receiver names treated as campaign configs (heuristic; the repo's
#: idiom is ``config``/``cfg`` locals and ``.config`` attributes).
CONFIG_RECEIVERS = frozenset({"config", "cfg"})


def _is_config_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in CONFIG_RECEIVERS
    if isinstance(node, ast.Attribute):
        return node.attr in CONFIG_RECEIVERS
    return False


@rule("DET005", "no mutation of CampaignConfig fingerprint fields")
def det005(ctx: FileContext) -> Iterable[Finding]:
    findings: list[Finding] = []
    msg = (
        "mutating fingerprint field {field!r} after construction "
        "desyncs the config from its checkpoint fingerprint; build a "
        "new CampaignConfig instead"
    )
    for node in _walk(ctx.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in FINGERPRINT_FIELDS
                and _is_config_receiver(target.value)
            ):
                findings.append(ctx.finding(
                    target, "DET005", msg.format(field=target.attr)))
        if isinstance(node, ast.Call):
            fn = node.func
            is_setattr = isinstance(fn, ast.Name) and fn.id == "setattr"
            is_obj_setattr = (
                isinstance(fn, ast.Attribute) and fn.attr == "__setattr__"
            )
            if (is_setattr or is_obj_setattr) and len(node.args) >= 2:
                obj, name_arg = node.args[0], node.args[1]
                if (
                    isinstance(name_arg, ast.Constant)
                    and name_arg.value in FINGERPRINT_FIELDS
                    and _is_config_receiver(obj)
                ):
                    findings.append(ctx.finding(
                        node, "DET005", msg.format(field=name_arg.value)))
    return findings


# -- DET006: durable JSON writes go through the commit protocol ----------

#: The artifact layer that owns crash-proof writes; the only package
#: allowed to open files and serialize JSON into them directly.
STORE_PACKAGE = "repro.store"


def _open_write_call(node: ast.expr) -> bool:
    """True for ``open(..., "w")``-style writable opens."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "open"
    ):
        return False
    mode = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        mode = node.args[1].value
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            mode = keyword.value.value
    return isinstance(mode, str) and any(c in mode for c in "wa+")


@rule("DET006", "no bare open()+json.dump writes outside repro.store")
def det006(ctx: FileContext) -> Iterable[Finding]:
    if _in_packages(ctx.module, (STORE_PACKAGE,)):
        return []
    json_aliases = _module_aliases(ctx.tree, "json")
    dump_names = {
        alias.asname or alias.name
        for node in _walk(ctx.tree)
        if isinstance(node, ast.ImportFrom) and node.module == "json"
        for alias in node.names
        if alias.name == "dump"
    }

    def is_json_dump(call: ast.Call) -> bool:
        fn = call.func
        if isinstance(fn, ast.Attribute) and fn.attr == "dump":
            return _dotted(fn.value) in json_aliases
        return isinstance(fn, ast.Name) and fn.id in dump_names

    msg = (
        "bare open()+json.dump leaves a torn-write window (no fsync, no "
        "atomic rename — a crash mid-write corrupts the artifact in "
        "place); write through repro.store.commit.atomic_write_json"
    )
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            handles = {
                item.optional_vars.id
                for item in node.items
                if _open_write_call(item.context_expr)
                and isinstance(item.optional_vars, ast.Name)
            }
            if not handles:
                continue
            for inner in _walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and is_json_dump(inner)
                    and len(inner.args) >= 2
                    and isinstance(inner.args[1], ast.Name)
                    and inner.args[1].id in handles
                ):
                    findings.append(ctx.finding(inner, "DET006", msg))
        elif (
            isinstance(node, ast.Call)
            and is_json_dump(node)
            and len(node.args) >= 2
            and _open_write_call(node.args[1])
        ):
            findings.append(ctx.finding(node, "DET006", msg))
    return findings


# -- DET007: no per-sample loops over LinkConditions traces --------------

#: Packages whose per-second hot paths must consume whole traces through
#: :class:`repro.conditions.ConditionsArray` / the fastpath steppers.
TRACE_PACKAGES = ("repro.core", "repro.leo")

#: The fluid pair allowed to walk traces sample-by-sample: the scalar
#: reference implementation and its bit-contract twin (TCP state is
#: sequential, so the fast path also steps seconds one at a time).
TRACE_REFERENCE_MODULES = ("repro.core.fluid", "repro.core.fastpath.fluid")

#: Methods only :class:`~repro.conditions.LinkConditions` exposes; a call
#: on a loop variable marks the loop as per-sample trace consumption.
LINK_SAMPLE_METHODS = frozenset({"capacity_mbps"})


@rule("DET007", "no per-sample loops over LinkConditions traces in hot packages")
def det007(ctx: FileContext) -> Iterable[Finding]:
    if not _in_packages(ctx.module, TRACE_PACKAGES):
        return []
    if ctx.module in TRACE_REFERENCE_MODULES:
        return []
    msg = (
        "per-sample Python loop over a LinkConditions trace; batch the "
        "trace through repro.conditions.ConditionsArray and the "
        "repro.core.fastpath models (repro.core.fluid is the scalar "
        "reference)"
    )

    def loop_names(target: ast.expr) -> set[str]:
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            out: set[str] = set()
            for elt in target.elts:
                out |= loop_names(elt)
            return out
        return set()

    def per_sample_call(names: set[str], bodies: list[ast.AST]) -> ast.AST | None:
        """First call consuming a loop variable as a LinkConditions."""
        for body in bodies:
            for node in _walk(body):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                fn = node.func
                if (
                    fn.attr in LINK_SAMPLE_METHODS
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id in names
                ):
                    return node
                if (
                    fn.attr == "step"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in names
                ):
                    return node
        return None

    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        hit: ast.AST | None = None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            hit = per_sample_call(loop_names(node.target), list(node.body))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            names: set[str] = set()
            for gen in node.generators:
                names |= loop_names(gen.target)
            hit = per_sample_call(names, [node.elt])
        elif isinstance(node, ast.DictComp):
            names = set()
            for gen in node.generators:
                names |= loop_names(gen.target)
            hit = per_sample_call(names, [node.key, node.value])
        if hit is not None:
            findings.append(ctx.finding(hit, "DET007", msg))
    return findings


# -- DET008: unsorted directory listings feeding ordered output ----------

#: ``os.``-level listing calls whose result order is filesystem-defined.
LISTING_CALLS = frozenset({
    ("os", "listdir"),
    ("os", "scandir"),
    ("glob", "glob"),
    ("glob", "iglob"),
})

#: ``pathlib.Path`` methods with the same property (checked by attribute
#: name on any receiver — a false positive requires an unrelated object
#: with an ``iterdir()``/``rglob()`` method being looped and written).
LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _is_listing_call(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Is this expression an unsorted directory-listing call?"""
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    if dotted is None or "." not in dotted:
        return False
    prefix, _, leaf = dotted.rpartition(".")
    prefix = aliases.get(prefix, prefix)
    return (prefix, leaf) in LISTING_CALLS or leaf in LISTING_METHODS


def _writes_ordered_output(bodies: list[ast.AST]) -> ast.AST | None:
    """First statement in a loop body that emits in iteration order:
    ``.append``/``.write``/``.add``/``.put`` calls or ``yield`` — each
    preserves the (unsorted) listing order.  Aggregations (counts,
    max/min, membership) never observe the order and stay clean."""
    for body in bodies:
        for node in _walk(body):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "write", "writelines", "add", "put")
            ):
                return node
    return None


@rule("DET008", "no unsorted directory listings feeding ordered output")
def det008(ctx: FileContext) -> Iterable[Finding]:
    aliases: dict[str, str] = {}
    for node in _walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
    msg = (
        "os.listdir/scandir, glob, and Path.iterdir return entries in "
        "filesystem order, which differs across machines and filesystems; "
        "wrap the listing in sorted(...) before its order can reach "
        "ordered output"
    )

    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_listing_call(
            node.iter, aliases
        ):
            hit = _writes_ordered_output(list(node.body))
            if hit is not None:
                findings.append(ctx.finding(node.iter, "DET008", msg))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # A comprehension over a listing *is* ordered output.
            for gen in node.generators:
                if _is_listing_call(gen.iter, aliases):
                    findings.append(ctx.finding(gen.iter, "DET008", msg))
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ORDERED_CONSUMERS
                and node.args
                and _is_listing_call(node.args[0], aliases)
            ):
                findings.append(ctx.finding(node.args[0], "DET008", msg))
    return findings


# -- INV101: metric series names + manifest exclusion consistency --------

#: The documented series-name shape: ``subsystem.metric`` (lowercase,
#: digits, underscores; at least one dot).
SERIES_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Registry entry points whose first positional argument is a series name.
REGISTRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: The manifest module whose exclusion constants anchor the project check.
MANIFEST_MODULE = "repro.obs.manifest"

#: The campaign module; its presence signals a whole-src scan, which is
#: when cross-file staleness can be judged without false positives.
CAMPAIGN_MODULE = "repro.core.campaign"


@rule("INV101", "MetricsRegistry series names match subsystem.metric")
def inv101_names(ctx: FileContext) -> Iterable[Finding]:
    findings: list[Finding] = []
    names = ctx.shared.setdefault("metric_names", set())
    for node in _walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in REGISTRY_FACTORIES:
            continue
        if not (node.args and isinstance(node.args[0], ast.Constant)):
            continue
        value = node.args[0].value
        if not isinstance(value, str):
            continue
        if SERIES_NAME_RE.match(value):
            names.add(value)
        else:
            findings.append(ctx.finding(node.args[0], "INV101", (
                f"series name {value!r} does not match the documented "
                "subsystem.metric pattern (lowercase dotted)"
            )))
    return findings


def _manifest_exclusions(tree: ast.Module) -> dict[str, tuple[ast.AST, list[str]]]:
    """Literal contents of the manifest's exclusion constants."""
    wanted = {"WALL_CLOCK_METRICS", "EXECUTION_METRICS", "EXECUTION_METRIC_PREFIXES"}
    out: dict[str, tuple[ast.AST, list[str]]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in wanted:
                try:
                    value = ast.literal_eval(
                        node.value.args[0]
                        if isinstance(node.value, ast.Call) and node.value.args
                        else node.value
                    )
                except (ValueError, TypeError, IndexError):
                    continue
                out[target.id] = (node, sorted(str(v) for v in value))
    return out


@project_rule("INV101", "manifest metric exclusions stay consistent with src")
def inv101_manifest(contexts: list[FileContext]) -> Iterable[Finding]:
    by_module = {ctx.module: ctx for ctx in contexts}
    manifest = by_module.get(MANIFEST_MODULE)
    # Staleness is only decidable on a whole-src scan: linting a single
    # file must not report every series in the repo as "never
    # registered".  The campaign module registers the excluded series,
    # so its presence is the whole-scan sentinel.
    if manifest is None or CAMPAIGN_MODULE not in by_module:
        return []
    registered: set[str] = set()
    for ctx in contexts:
        registered |= ctx.shared.get("metric_names", set())
    if not registered:
        return []
    findings: list[Finding] = []
    exclusions = _manifest_exclusions(manifest.tree)
    for const in ("WALL_CLOCK_METRICS", "EXECUTION_METRICS"):
        if const not in exclusions:
            continue
        node, names = exclusions[const]
        for name in names:
            if name not in registered:
                findings.append(manifest.finding(node, "INV101", (
                    f"{const} excludes {name!r} but no code registers "
                    "that series; drop the stale exclusion"
                )))
    if "EXECUTION_METRIC_PREFIXES" in exclusions:
        node, prefixes = exclusions["EXECUTION_METRIC_PREFIXES"]
        for prefix in prefixes:
            if not any(name.startswith(prefix) for name in registered):
                findings.append(manifest.finding(node, "INV101", (
                    f"EXECUTION_METRIC_PREFIXES lists {prefix!r} but no "
                    "registered series uses it; drop the stale prefix"
                )))
    return findings


# -- INV102: service metrics stay out of the deterministic manifest ------

#: The service package: every series registered here is an execution
#: fact (queue pressure, crashes, quarantines — never dataset content),
#: so each must be covered by the manifest's exclusion constants or the
#: deterministic view would stop being a pure function of the config.
SERVE_PACKAGE = "repro.serve"


def _excluded_from_deterministic_manifest(name: str) -> bool:
    """Is ``name`` dropped by ``RunManifest.deterministic_dict``?

    Checks the *live* exclusion constants — the manifest module is
    stdlib-only and always importable wherever detlint runs — so the
    rule can never drift from the code it guards.
    """
    from repro.obs.manifest import (
        EXECUTION_METRIC_PREFIXES,
        EXECUTION_METRICS,
        WALL_CLOCK_METRICS,
    )

    if name in WALL_CLOCK_METRICS or name in EXECUTION_METRICS:
        return True
    return any(name.startswith(prefix) for prefix in EXECUTION_METRIC_PREFIXES)


@rule("INV102", "serve metrics must be excluded from the deterministic manifest")
def inv102_serve_metrics(ctx: FileContext) -> Iterable[Finding]:
    if not _in_packages(ctx.module, (SERVE_PACKAGE,)):
        return []
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in REGISTRY_FACTORIES:
            continue
        if not (node.args and isinstance(node.args[0], ast.Constant)):
            continue
        value = node.args[0].value
        if not isinstance(value, str) or not SERIES_NAME_RE.match(value):
            continue  # shape problems are INV101's report
        if not _excluded_from_deterministic_manifest(value):
            findings.append(ctx.finding(node.args[0], "INV102", (
                f"series {value!r} is registered by the service but not "
                "excluded from the deterministic manifest; add it to "
                "WALL_CLOCK_METRICS/EXECUTION_METRICS or give it an "
                "EXECUTION_METRIC_PREFIXES prefix in repro.obs.manifest"
            )))
    return findings
