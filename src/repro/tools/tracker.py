"""5G-Tracker-style metadata logger.

Section 3.2: the authors run 5G Tracker to record "network type, vehicle
speed, GPS location, and signal strength", modified to work for both Wi-Fi
(Starlink) and cellular connectivity.  Our tracker walks the vehicle trace
once per second and snapshots the same fields from the simulation state,
producing the metadata stream the analysis pipeline joins against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.classify import AreaClassifier, AreaType
from repro.geo.mobility import MobilitySample


@dataclass(frozen=True)
class TrackerRecord:
    """One 1 Hz metadata sample (one row of the 5G-Tracker log)."""

    time_s: float
    lat_deg: float
    lon_deg: float
    speed_kmh: float
    area: AreaType
    route_km: float


class Tracker:
    """Collects 1 Hz metadata records for one drive."""

    def __init__(self, classifier: AreaClassifier):
        self.classifier = classifier
        self.records: list[TrackerRecord] = []

    def observe(self, sample: MobilitySample) -> TrackerRecord:
        """Log one mobility sample and return the record."""
        record = TrackerRecord(
            time_s=sample.time_s,
            lat_deg=sample.position.lat_deg,
            lon_deg=sample.position.lon_deg,
            speed_kmh=sample.speed_kmh,
            area=self.classifier.classify(sample.position),
            route_km=sample.route_km,
        )
        self.records.append(record)
        return record

    def observe_many(self, samples: list[MobilitySample]) -> list[TrackerRecord]:
        """Batched :meth:`observe`: one vectorized area classification.

        The classifier is RNG-free, so this logs exactly the records a
        per-sample loop would; used by the campaign fast path.
        """
        areas = self.classifier.classify_many([s.position for s in samples])
        out: list[TrackerRecord] = []
        for sample, area in zip(samples, areas):
            record = TrackerRecord(
                time_s=sample.time_s,
                lat_deg=sample.position.lat_deg,
                lon_deg=sample.position.lon_deg,
                speed_kmh=sample.speed_kmh,
                area=area,
                route_km=sample.route_km,
            )
            self.records.append(record)
            out.append(record)
        return out

    @property
    def duration_minutes(self) -> float:
        """Total logged time in minutes (the paper's '9,083 minutes')."""
        if not self.records:
            return 0.0
        return (self.records[-1].time_s - self.records[0].time_s) / 60.0

    @property
    def distance_km(self) -> float:
        """Total distance covered (the paper's '>3,800 km')."""
        if not self.records:
            return 0.0
        return self.records[-1].route_km - self.records[0].route_km

    def area_proportions(self) -> dict[AreaType, float]:
        """Share of samples per area type (Section 5.1's 29.78/34.30/35.91 %)."""
        if not self.records:
            return {area: 0.0 for area in AreaType}
        counts = {area: 0 for area in AreaType}
        for record in self.records:
            counts[record.area] += 1
        total = len(self.records)
        return {area: counts[area] / total for area in AreaType}
