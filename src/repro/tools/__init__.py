"""Measurement tools: iPerf-like tests, UDP-Ping, 5G-Tracker-style logging."""

from repro.tools.iperf import (
    IperfResult,
    MptcpResult,
    binned_series_mbps,
    run_mptcp_test,
    run_single_path_over_mpshell,
    run_tcp_test,
    run_udp_test,
)
from repro.tools.tracker import Tracker, TrackerRecord
from repro.tools.udp_ping import (
    DEFAULT_RATE_HZ,
    PING_PAYLOAD_BYTES,
    PingResult,
    run_udp_ping,
)

__all__ = [
    "DEFAULT_RATE_HZ",
    "IperfResult",
    "MptcpResult",
    "PING_PAYLOAD_BYTES",
    "PingResult",
    "Tracker",
    "TrackerRecord",
    "binned_series_mbps",
    "run_mptcp_test",
    "run_single_path_over_mpshell",
    "run_tcp_test",
    "run_udp_test",
    "run_udp_ping",
]
