"""Digest-chained JSONL drive shards.

One shard holds one drive's results as an append-only JSON-Lines file.
Every line is the *canonical* JSON (sorted keys, no whitespace) of an
envelope::

    {"chain": <hex>, "kind": "header"|"record"|"end", "seq": N, "body": {...}}

where ``chain`` is the SHA-256 of the previous line's chain digest
concatenated with the canonical form of this line's ``kind``/``seq``/
``body``.  The header (seq 0) carries the shard version, the campaign
config fingerprint, and the drive id; each record line carries one test
record; the ``end`` line carries the drive's summary metadata and its
``chain`` value is the shard's *head digest* — one hex string that
commits the entire file.

The chain is what makes streaming durable: a write torn at any byte is
detectable at the exact line it tore (the damaged line either fails to
parse, is not in canonical form, or breaks the chain), and
:func:`salvage_shard` recovers every complete record before the tear —
per-record salvage instead of the per-drive all-or-nothing a monolithic
JSON checkpoint allows.  Verification re-derives the chain and also
checks each raw line equals the canonical re-serialization of its parsed
value, so even mutations that parse to the same JSON value (flipping a
space to a tab, reordering keys) are caught: any single-byte change to a
shard fails verification (property-tested in ``tests/test_store.py``).

:class:`ShardWriter` streams records through the write-ahead protocol
(``<shard>.wal`` + per-record flush, fsync + atomic rename + dirsync at
drive end); :func:`build_shard_bytes` computes the exact bytes a writer
would produce, which is how the store verifies or reconstructs shards
from payloads without trusting worker processes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.taxonomy import ArtifactCorruptError
from repro.store.commit import checkpoint_boundary, fsync_dir

#: Shard schema version (the header's ``body["version"]``).
SHARD_VERSION = 1

#: The chain value hashed into the first (header) line.
GENESIS = ""

_LINE_KEYS = frozenset({"chain", "kind", "seq", "body"})


class ShardCorruptError(ArtifactCorruptError):
    """A shard failed strict verification (torn write, bit rot, edit)."""


def canonical_json(obj: Any) -> str:
    """Canonical form: sorted keys, minimal separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def chain_digest(prev_chain: str, envelope_canonical: str) -> str:
    """Next chain value: SHA-256 over the previous digest + this line."""
    return hashlib.sha256((prev_chain + envelope_canonical).encode()).hexdigest()


def _render_line(prev_chain: str, kind: str, seq: int, body: Any) -> tuple[str, str]:
    """``(line, chain)`` for one envelope."""
    envelope = {"kind": kind, "seq": seq, "body": body}
    chain = chain_digest(prev_chain, canonical_json(envelope))
    return canonical_json({"chain": chain, **envelope}), chain


def header_body(fingerprint: str, drive_id: int) -> dict[str, Any]:
    return {"version": SHARD_VERSION, "fingerprint": fingerprint, "drive": drive_id}


@dataclass
class ShardData:
    """A fully verified shard: header identity, records, end metadata."""

    fingerprint: str
    drive_id: int
    records: list[dict[str, Any]] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    #: The ``end`` line's chain value — commits the whole shard.
    head: str = ""


@dataclass
class ShardSalvage:
    """What a best-effort scan recovered from a damaged shard."""

    fingerprint: str | None = None
    drive_id: int | None = None
    records: list[dict[str, Any]] = field(default_factory=list)
    #: ``end`` metadata — present only when the whole shard verified.
    meta: dict[str, Any] | None = None
    complete: bool = False
    #: Why the scan stopped (empty when complete).
    reason: str = ""


class ShardWriter:
    """Streams one drive's records through the write-ahead protocol.

    Records append to ``<final_path>.wal`` as they complete — each line
    flushed to the OS, so a crash loses at most the line being written
    and salvage recovers every record before it.  :meth:`finish` seals
    the shard: ``end`` line, fsync, atomic rename to ``final_path``,
    directory fsync.  Until then the final name never exists, so a
    reader can trust any ``*.jsonl`` it finds was written to the end.
    """

    def __init__(
        self, final_path: str | os.PathLike[str], fingerprint: str, drive_id: int
    ) -> None:
        self.final_path = os.fspath(final_path)
        self.wal_path = f"{self.final_path}.wal"
        self.fingerprint = fingerprint
        self.drive_id = drive_id
        self.records = 0
        self._chain = GENESIS
        self._seq = 0
        # "w" truncates a stale WAL from a previous crashed attempt.
        self._handle = open(self.wal_path, "w", encoding="utf-8")
        self._emit("header", header_body(fingerprint, drive_id))

    def _emit(self, kind: str, body: Any) -> None:
        line, chain = _render_line(self._chain, kind, self._seq, body)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._chain = chain
        self._seq += 1
        checkpoint_boundary("shard.wal.append")

    def append(self, body: dict[str, Any]) -> None:
        """Stream one completed test record."""
        self._emit("record", body)
        self.records += 1

    def finish(self, meta: dict[str, Any]) -> str:
        """Seal and durably commit the shard; returns the head digest."""
        self._emit("end", meta)
        os.fsync(self._handle.fileno())
        self._handle.close()
        checkpoint_boundary("shard.wal.fsync")
        os.replace(self.wal_path, self.final_path)
        checkpoint_boundary("shard.rename")
        fsync_dir(os.path.dirname(os.path.abspath(self.final_path)))
        checkpoint_boundary("shard.dirsync")
        return self._chain

    def abort(self) -> None:
        """Drop an unfinished shard (drive failed); removes the WAL."""
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            os.unlink(self.wal_path)
        except OSError:
            pass


def build_shard_bytes(
    fingerprint: str, drive_id: int, records: list[dict[str, Any]], meta: dict[str, Any]
) -> tuple[bytes, str]:
    """``(bytes, head_digest)`` a :class:`ShardWriter` would produce.

    A shard is a pure function of its content, which lets the store
    verify a worker-streamed shard (or rebuild a missing one) from the
    payload alone.
    """
    lines: list[str] = []
    chain = GENESIS
    seq = 0
    line, chain = _render_line(chain, "header", seq, header_body(fingerprint, drive_id))
    lines.append(line)
    for body in records:
        seq += 1
        line, chain = _render_line(chain, "record", seq, body)
        lines.append(line)
    seq += 1
    line, chain = _render_line(chain, "end", seq, meta)
    lines.append(line)
    return ("\n".join(lines) + "\n").encode("utf-8"), chain


def _parse_line(raw: str, prev_chain: str, seq: int, name: str) -> tuple[str, Any, str]:
    """Strictly validate one line; returns ``(kind, body, chain)``."""
    try:
        parsed = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ShardCorruptError(
            f"shard {name!r}: line {seq + 1} is not valid JSON ({exc})"
        ) from exc
    if not isinstance(parsed, dict) or set(parsed) != _LINE_KEYS:
        raise ShardCorruptError(
            f"shard {name!r}: line {seq + 1} is not a shard envelope"
        )
    if canonical_json(parsed) != raw:
        raise ShardCorruptError(
            f"shard {name!r}: line {seq + 1} is not in canonical form "
            "(bytes differ from the canonical serialization)"
        )
    if parsed["seq"] != seq:
        raise ShardCorruptError(
            f"shard {name!r}: line {seq + 1} has seq {parsed['seq']!r}, "
            f"expected {seq}"
        )
    envelope = {"kind": parsed["kind"], "seq": parsed["seq"], "body": parsed["body"]}
    expected = chain_digest(prev_chain, canonical_json(envelope))
    if parsed["chain"] != expected:
        raise ShardCorruptError(
            f"shard {name!r}: line {seq + 1} breaks the digest chain"
        )
    return parsed["kind"], parsed["body"], parsed["chain"]


def _check_header(body: Any, name: str, fingerprint: str | None, drive_id: int | None) -> None:
    if not isinstance(body, dict) or body.get("version") != SHARD_VERSION:
        raise ShardCorruptError(
            f"shard {name!r}: unsupported header {body!r} "
            f"(expected version {SHARD_VERSION})"
        )
    if not isinstance(body.get("fingerprint"), str) or not isinstance(
        body.get("drive"), int
    ):
        raise ShardCorruptError(
            f"shard {name!r}: header is missing fingerprint/drive"
        )
    if fingerprint is not None and body.get("fingerprint") != fingerprint:
        raise ValueError(
            f"shard {name!r} was written by a different campaign config "
            f"(fingerprint {body.get('fingerprint')!r} != {fingerprint!r}); "
            "delete it or fix the config"
        )
    if drive_id is not None and body.get("drive") != drive_id:
        raise ShardCorruptError(
            f"shard {name!r}: header names drive {body.get('drive')!r}, "
            f"expected {drive_id}"
        )


def read_shard(
    path: str | os.PathLike[str],
    fingerprint: str | None = None,
    drive_id: int | None = None,
) -> ShardData:
    """Strictly read and verify one committed shard.

    Any structural damage — bad JSON, non-canonical bytes, a broken
    chain, a missing ``end`` line, trailing garbage, a missing final
    newline — raises :class:`ShardCorruptError`.  A shard whose header
    names a *different* config fingerprint raises plain ``ValueError``:
    that is operator error, not damage.
    """
    name = os.fspath(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    try:
        text = blob.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ShardCorruptError(
            f"shard {name!r} is not valid UTF-8 ({exc})"
        ) from exc
    if not text.endswith("\n"):
        raise ShardCorruptError(
            f"shard {name!r}: missing final newline (torn write)"
        )
    lines = text.split("\n")[:-1]
    if not lines:
        raise ShardCorruptError(f"shard {name!r} is empty")

    chain = GENESIS
    kind, body, chain = _parse_line(lines[0], chain, 0, name)
    if kind != "header":
        raise ShardCorruptError(f"shard {name!r}: first line is not a header")
    _check_header(body, name, fingerprint, drive_id)
    data = ShardData(fingerprint=body["fingerprint"], drive_id=body["drive"])

    ended = False
    for seq, raw in enumerate(lines[1:], start=1):
        if ended:
            raise ShardCorruptError(
                f"shard {name!r}: content after the end line"
            )
        kind, body, chain = _parse_line(raw, chain, seq, name)
        if kind == "record":
            if not isinstance(body, dict):
                raise ShardCorruptError(
                    f"shard {name!r}: line {seq + 1} record body is not an object"
                )
            data.records.append(body)
        elif kind == "end":
            if not isinstance(body, dict):
                raise ShardCorruptError(
                    f"shard {name!r}: end body is not an object"
                )
            data.meta = body
            data.head = chain
            ended = True
        else:
            raise ShardCorruptError(
                f"shard {name!r}: line {seq + 1} has unknown kind {kind!r}"
            )
    if not ended:
        raise ShardCorruptError(f"shard {name!r}: missing end line (torn write)")
    return data


def verify_shard(
    path: str | os.PathLike[str],
    fingerprint: str | None = None,
    drive_id: int | None = None,
) -> bool:
    """True when strict verification passes (config mismatch still raises)."""
    try:
        read_shard(path, fingerprint=fingerprint, drive_id=drive_id)
    except ShardCorruptError:
        return False
    except OSError:
        return False
    return True


def salvage_shard(path: str | os.PathLike[str]) -> ShardSalvage:
    """Best-effort scan: every complete, chain-valid record before the tear.

    Used on leftover ``*.wal`` files (a crash mid-drive) and quarantined
    shards.  Stops at the first line that fails validation; everything
    before it is provably intact.
    """
    name = os.fspath(path)
    out = ShardSalvage()
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        out.reason = f"unreadable: {exc}"
        return out
    lines = blob.split(b"\n")
    terminated = lines and lines[-1] == b""
    if terminated:
        lines = lines[:-1]
    if not lines:
        out.reason = "empty file"
        return out

    chain = GENESIS
    for seq, raw_bytes in enumerate(lines):
        if not terminated and seq == len(lines) - 1:
            out.reason = "final line torn (no newline)"
            return out
        try:
            raw = raw_bytes.decode("utf-8")
        except UnicodeDecodeError:
            out.reason = f"line {seq + 1} is not valid UTF-8"
            return out
        try:
            kind, body, chain = _parse_line(raw, chain, seq, name)
        except ShardCorruptError as exc:
            out.reason = str(exc)
            return out
        if seq == 0:
            if kind != "header" or not isinstance(body, dict):
                out.reason = "first line is not a header"
                return out
            out.fingerprint = body.get("fingerprint")
            out.drive_id = body.get("drive")
        elif kind == "record" and isinstance(body, dict):
            out.records.append(body)
        elif kind == "end" and isinstance(body, dict):
            if seq != len(lines) - 1:
                out.reason = "content after the end line"
                return out
            out.meta = body
            out.complete = True
            return out
        else:
            out.reason = f"line {seq + 1} has unexpected kind {kind!r}"
            return out
    out.reason = "missing end line"
    return out
