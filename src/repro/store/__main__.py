"""Maintenance CLI for the artifact layer.

Currently one subcommand::

    python -m repro.store gc --cache-dir ~/.cache/repro-drives --max-bytes 500000000
    python -m repro.store gc --cache-dir ./serve/cache --dry-run

collects a :class:`repro.store.DriveCache` down to ``--max-bytes``,
evicting entries oldest first (mtime, then path — deterministic), and
sweeps ``.tmp`` debris a crash mid-write can leave behind.  Without
``--max-bytes`` only the debris sweep runs.  Entries are recomputable
by construction, so eviction can never lose data — just cached work.
"""

from __future__ import annotations

import argparse
import sys

from repro.store.cache import DriveCache


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Artifact-layer maintenance (docs/ARTIFACTS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    gc = sub.add_parser("gc", help="collect a bounded drive cache")
    gc.add_argument("--cache-dir", required=True, help="DriveCache root directory")
    gc.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest entries until the cache fits (default: sweep only)",
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without touching the cache",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command != "gc":
        raise AssertionError(f"unhandled command {args.command!r}")
    cache = DriveCache(args.cache_dir)
    result = cache.gc(max_bytes=args.max_bytes, dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    for entry in result.evicted:
        print(f"{verb} {entry.relpath} ({entry.size_bytes} bytes)")
    for relpath in result.tmp_removed:
        print(f"removed debris {relpath}")
    print(
        f"{len(result.evicted)} entries {verb.split()[-1]}, "
        f"{result.bytes_freed} bytes freed, "
        f"{result.bytes_after} bytes retained"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
