"""Crash-proof filesystem commit primitives.

Every durable artifact the repo writes — checkpoints, shards, store
manifests, run manifests, datasets, cache entries — goes through the
two writers here, which implement the full commit protocol:

1. write the payload to ``<path>.tmp``;
2. flush and ``fsync`` the file (data reaches the platter, not just
   the page cache);
3. ``os.replace`` the tmp over the final name (atomic on POSIX: readers
   see the old bytes or the new bytes, never a mix);
4. ``fsync`` the containing *directory*, so the rename itself survives
   power loss (a renamed entry lives in the directory inode; skipping
   this step can silently resurrect the old file after a crash).

On any failure the tmp file is removed, so aborted writes leave no
debris under ``<path>.tmp`` and the previous artifact is untouched.

The module also hosts the crash-injection seam: the test harness
(``tests/test_store_crash.py``) installs :data:`_CRASH_HOOK` and every
writer announces each protocol boundary through
:func:`checkpoint_boundary`, letting the harness SIGKILL the process
*between* any two steps and prove recovery from every torn state.
In production the hook is ``None`` and the calls cost one attribute
load each.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

#: Crash-injection seam.  When set (by the crash harness only), it is
#: called with a boundary label (e.g. ``"checkpoint.tmp.fsync"``) after
#: each commit-protocol step; the harness's hook SIGKILLs the process at
#: a chosen boundary.  Never set in production code.
_CRASH_HOOK: Callable[[str], None] | None = None


def checkpoint_boundary(label: str) -> None:
    """Announce a commit-protocol boundary to the crash harness."""
    hook = _CRASH_HOOK
    if hook is not None:
        hook(label)


def fsync_dir(path: str | os.PathLike[str]) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort on platforms whose directories cannot be opened or
    fsynced (e.g. Windows): such systems have no dirfd to sync and the
    rename durability is the filesystem's problem.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(os.fspath(path), flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | os.PathLike[str], data: bytes, *, boundary: str = "artifact"
) -> None:
    """Durably and atomically replace ``path`` with ``data``.

    ``boundary`` names the artifact kind in the crash-injection labels
    (``<boundary>.tmp.write``, ``<boundary>.tmp.fsync``,
    ``<boundary>.rename``, ``<boundary>.dirsync``).
    """
    final = os.fspath(path)
    tmp_path = f"{final}.tmp"
    directory = os.path.dirname(os.path.abspath(final))
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            checkpoint_boundary(f"{boundary}.tmp.write")
            handle.flush()
            os.fsync(handle.fileno())
        checkpoint_boundary(f"{boundary}.tmp.fsync")
        os.replace(tmp_path, final)
        checkpoint_boundary(f"{boundary}.rename")
        fsync_dir(directory)
        checkpoint_boundary(f"{boundary}.dirsync")
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str | os.PathLike[str],
    payload: Any,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
    boundary: str = "artifact",
) -> None:
    """:func:`atomic_write_bytes` for a JSON payload.

    Serialization matches ``json.dump(payload, handle, ...)`` byte for
    byte (same default separators), so artifacts migrated from bare
    ``json.dump`` writers keep their historical bytes.
    """
    data = json.dumps(payload, indent=indent, sort_keys=sort_keys).encode("utf-8")
    atomic_write_bytes(path, data, boundary=boundary)
