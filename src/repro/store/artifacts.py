"""The sharded drive store: a checkpoint that is a directory of shards.

Layout of one store (``--artifact-format jsonl``)::

    <checkpoint_path>/
        MANIFEST.json        # the commit point: the committed shard set
        drive-00000.jsonl    # one digest-chained shard per drive
        drive-00001.jsonl
        drive-00002.jsonl.wal  # in-flight drive (crash debris; salvaged)

``MANIFEST.json`` maps each committed drive to its shard name, record
count, head digest, and (when observability is on) the drive's metric
snapshot; it embeds a whole-file content digest
(:mod:`repro.resilience.integrity`) and is itself written through the
atomic commit protocol.  The manifest is *the* commit: a shard renamed
into place but not yet named by the manifest is not part of the store
(its drive recomputes — deterministically to the same bytes — on
resume).

Recovery (:meth:`ShardStore.load`) trusts nothing:

* a manifest that fails to parse or fails its digest is quarantined and
  the store rebuilds from scratch;
* every named shard is strictly re-verified (chain, canonical bytes,
  head digest, record count); damage quarantines *that shard only* and
  its drive recomputes — per-drive salvage, never all-or-nothing;
* leftover ``*.wal`` files (crash mid-drive) are scanned for complete
  records (counted for the resilience report) and removed;
* a manifest from a different config fingerprint or schema version
  raises plain ``ValueError`` — operator error, not damage.

Because every artifact is a pure function of ``(config, drive_id)``,
:meth:`ShardStore.commit` is parent-authoritative: it recomputes the
expected shard bytes from the payload and only trusts an existing file
that matches exactly, which makes worker-side streaming a pure
optimization — never a source of truth.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.integrity import embed_digest, quarantine, verify_digest
from repro.store.commit import atomic_write_bytes, atomic_write_json
from repro.store.shard import (
    ShardCorruptError,
    ShardWriter,
    build_shard_bytes,
    read_shard,
    salvage_shard,
)

#: Store manifest schema version.
STORE_VERSION = 1

#: The manifest file inside a store directory.
MANIFEST_NAME = "MANIFEST.json"


def shard_name(drive_id: int) -> str:
    """Shard filename for one drive."""
    return f"drive-{drive_id:05d}.jsonl"


@dataclass
class StoreRecovery:
    """What :meth:`ShardStore.load` had to repair."""

    #: Quarantine targets of shards that failed verification.
    shards_quarantined: list[str] = field(default_factory=list)
    #: Intact records found in leftover write-ahead files.
    wal_records_salvaged: int = 0
    #: Leftover ``*.wal`` files removed.
    wals_discarded: int = 0
    #: Quarantine target of a damaged MANIFEST.json (or None).
    manifest_quarantined: str | None = None
    #: Why the manifest was quarantined (truncated for reports).
    manifest_error: str = ""

    @property
    def clean(self) -> bool:
        return not self.shards_quarantined and self.manifest_quarantined is None


class ShardStore:
    """One campaign's sharded checkpoint directory."""

    def __init__(self, root: str | os.PathLike, fingerprint: str):
        self.root = os.fspath(root)
        self.fingerprint = fingerprint
        #: drive_id -> manifest entry of every committed drive.
        self._entries: dict[int, dict[str, Any]] = {}

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _ensure_root(self) -> None:
        os.makedirs(self.root, exist_ok=True)

    # -- recovery / resume ------------------------------------------------

    def load(self) -> tuple[dict[int, dict[str, Any]], StoreRecovery]:
        """Recover committed drives; returns ``(raw_payloads, recovery)``.

        Raw payloads are JSON-level (records as dicts): the campaign
        rebuilds :class:`~repro.core.dataset.TestRecord` objects itself.
        """
        recovery = StoreRecovery()
        payloads: dict[int, dict[str, Any]] = {}
        self._entries = {}
        if not os.path.isdir(self.root):
            return payloads, recovery

        raw = self._load_manifest(recovery)
        if raw is not None:
            for key, entry in raw.get("drives", {}).items():
                drive_id = int(key)
                payload = self._load_shard(drive_id, entry, recovery)
                if payload is not None:
                    payloads[drive_id] = payload
                    self._entries[drive_id] = entry

        self._sweep_debris(recovery)
        return payloads, recovery

    def _load_manifest(self, recovery: StoreRecovery) -> dict[str, Any] | None:
        import json

        path = self.manifest_path
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            return self._quarantine_manifest(recovery, f"not valid JSON ({exc})")
        if not isinstance(raw, dict) or not isinstance(raw.get("drives"), dict):
            return self._quarantine_manifest(recovery, "missing required keys")
        if not verify_digest(raw):
            return self._quarantine_manifest(recovery, "fails its content digest")
        if raw.get("version") != STORE_VERSION:
            raise ValueError(
                f"store manifest {path!r} has version {raw.get('version')!r}, "
                f"expected {STORE_VERSION}"
            )
        if raw.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"store {self.root!r} was written by a different campaign "
                f"config (fingerprint {raw.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); delete it or fix the config"
            )
        return raw

    def _quarantine_manifest(self, recovery: StoreRecovery, reason: str) -> None:
        recovery.manifest_quarantined = quarantine(self.manifest_path)
        recovery.manifest_error = (
            f"store manifest {self.manifest_path!r} {reason}"[:500]
        )
        return None

    def _load_shard(
        self, drive_id: int, entry: dict[str, Any], recovery: StoreRecovery
    ) -> dict[str, Any] | None:
        path = os.path.join(self.root, entry.get("shard", shard_name(drive_id)))
        if not os.path.exists(path):
            return None  # lost shard: the drive simply recomputes
        try:
            data = read_shard(path, fingerprint=self.fingerprint, drive_id=drive_id)
            if data.head != entry.get("head") or len(data.records) != entry.get(
                "records"
            ):
                raise ShardCorruptError(
                    f"shard {path!r} does not match its manifest entry "
                    "(head digest or record count differs)"
                )
        except ShardCorruptError:
            recovery.shards_quarantined.append(quarantine(path))
            return None
        payload = dict(data.meta)
        payload["records"] = data.records
        metrics = entry.get("metrics")
        if metrics:
            payload["metrics"] = metrics
        return payload

    def _sweep_debris(self, recovery: StoreRecovery) -> None:
        """Salvage-and-remove leftover WAL and tmp files from a crash."""
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if name.endswith(".wal"):
                salvaged = salvage_shard(path)
                recovery.wal_records_salvaged += len(salvaged.records)
                recovery.wals_discarded += 1
                os.unlink(path)
            elif name.endswith(".tmp"):
                os.unlink(path)

    # -- streaming --------------------------------------------------------

    def begin_drive(self, drive_id: int) -> ShardWriter:
        """Open the write-ahead shard for one drive."""
        self._ensure_root()
        return ShardWriter(
            os.path.join(self.root, shard_name(drive_id)),
            self.fingerprint,
            drive_id,
        )

    # -- commit -----------------------------------------------------------

    def commit(
        self,
        drive_payloads: dict[int, dict[str, Any]],
        to_jsonable,
    ) -> None:
        """Commit every not-yet-committed drive, then the manifest.

        ``to_jsonable`` converts one payload's record objects to JSON
        dicts (the store is agnostic to the record type).  For each new
        drive the expected shard bytes are recomputed from the payload;
        an existing file (e.g. streamed by this or a worker process) is
        kept only when byte-identical, otherwise rewritten atomically.
        The manifest write is the commit point.
        """
        self._ensure_root()
        for drive_id in sorted(drive_payloads):
            if drive_id in self._entries:
                continue
            payload = drive_payloads[drive_id]
            records = to_jsonable(payload["records"])
            meta = {
                k: v for k, v in payload.items() if k not in ("records", "metrics")
            }
            expected, head = build_shard_bytes(
                self.fingerprint, drive_id, records, meta
            )
            path = os.path.join(self.root, shard_name(drive_id))
            self._ensure_bytes(path, expected)
            entry: dict[str, Any] = {
                "shard": shard_name(drive_id),
                "records": len(records),
                "head": head,
            }
            if payload.get("metrics"):
                entry["metrics"] = payload["metrics"]
            self._entries[drive_id] = entry

        manifest = {
            "version": STORE_VERSION,
            "fingerprint": self.fingerprint,
            "drives": {
                str(drive_id): self._entries[drive_id]
                for drive_id in sorted(self._entries)
            },
        }
        atomic_write_json(
            self.manifest_path,
            embed_digest(manifest),
            sort_keys=True,
            boundary="manifest",
        )

    @staticmethod
    def _ensure_bytes(path: str, expected: bytes) -> None:
        if os.path.exists(path):
            with open(path, "rb") as handle:
                if handle.read() == expected:
                    return
        atomic_write_bytes(path, expected, boundary="shard")

    # -- manifest-facing view --------------------------------------------

    def artifact_index(self) -> dict[str, Any]:
        """Shard digests for the run manifest: a deterministic summary."""
        return {
            "format": "jsonl",
            "store_version": STORE_VERSION,
            "shards": {
                str(drive_id): {
                    "shard": entry["shard"],
                    "records": entry["records"],
                    "head": entry["head"],
                }
                for drive_id, entry in sorted(self._entries.items())
            },
        }
