"""repro.store: durable streaming artifacts.

The repo's artifact layer (see ``docs/ARTIFACTS.md``):

* :mod:`repro.store.commit` — the crash-proof commit protocol every
  durable write goes through (tmp + fsync + atomic rename + directory
  fsync), plus the crash-injection seam the harness hooks;
* :mod:`repro.store.shard` — digest-chained JSONL drive shards with
  streaming writes, strict verification, and per-record salvage;
* :mod:`repro.store.artifacts` — :class:`ShardStore`, the directory
  checkpoint format (``--artifact-format jsonl``) whose manifest commits
  the shard set;
* :mod:`repro.store.cache` — :class:`DriveCache`, the content-addressed
  result cache keyed by ``(config.fingerprint(), drive_id)``, bounded
  with ``max_bytes`` / collected by ``python -m repro.store gc``.
"""

from repro.resilience.integrity import quarantine
from repro.store.artifacts import (
    MANIFEST_NAME,
    STORE_VERSION,
    ShardStore,
    StoreRecovery,
    shard_name,
)
from repro.store.cache import CacheEntry, CacheGcResult, DriveCache
from repro.store.commit import (
    atomic_write_bytes,
    atomic_write_json,
    checkpoint_boundary,
    fsync_dir,
)
from repro.store.shard import (
    SHARD_VERSION,
    ShardCorruptError,
    ShardData,
    ShardSalvage,
    ShardWriter,
    build_shard_bytes,
    canonical_json,
    chain_digest,
    read_shard,
    salvage_shard,
    verify_shard,
)

__all__ = [
    "MANIFEST_NAME",
    "SHARD_VERSION",
    "STORE_VERSION",
    "CacheEntry",
    "CacheGcResult",
    "DriveCache",
    "ShardCorruptError",
    "ShardData",
    "ShardSalvage",
    "ShardStore",
    "ShardWriter",
    "StoreRecovery",
    "atomic_write_bytes",
    "atomic_write_json",
    "build_shard_bytes",
    "canonical_json",
    "chain_digest",
    "checkpoint_boundary",
    "fsync_dir",
    "quarantine",
    "read_shard",
    "salvage_shard",
    "shard_name",
    "verify_shard",
]
