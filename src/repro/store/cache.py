"""Content-addressed drive cache: computed once, reused across runs.

A drive's payload is a pure function of ``(config, drive_id)`` — the
invariant the whole execution stack is built on — so its result can be
cached under a key derived from exactly those two things::

    <cache_dir>/<config.fingerprint()>/drive-00042.jsonl

Each entry is a standard digest-chained shard (:mod:`repro.store.shard`)
whose ``end`` metadata also carries the drive's metric snapshot, written
through the atomic commit protocol.  Reads are strictly verified: an
entry that fails its chain is **quarantined and recomputed, never
silently served** — the cache can only ever save work, not corrupt a
dataset.  Re-running an unchanged campaign recomputes zero drives;
changing the config changes the fingerprint, which simply addresses a
different (initially empty) directory, so only changed work is paid for.

The cache is bounded with ``max_bytes``: when set, every
:meth:`DriveCache.put` (and any explicit :meth:`DriveCache.gc`) evicts
entries **oldest first** — ordered by mtime, then by relative path as
the tiebreak, so two caches with the same contents and timestamps evict
identically.  Eviction only ever deletes cache entries (recomputable by
construction); the same sweep also clears ``.tmp`` debris a SIGKILL
mid-write can leave behind.  ``python -m repro.store gc`` runs the same
collection from the command line.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.integrity import quarantine
from repro.store.artifacts import shard_name
from repro.store.commit import atomic_write_bytes, fsync_dir
from repro.store.shard import ShardCorruptError, build_shard_bytes, read_shard


@dataclass(frozen=True)
class CacheEntry:
    """One cache entry as the collector sees it."""

    #: Path relative to the cache root (``<fingerprint>/<shard>``).
    relpath: str
    size_bytes: int
    mtime_ns: int

    @property
    def sort_key(self) -> tuple[int, str]:
        """Eviction order: oldest mtime first, path as the tiebreak."""
        return (self.mtime_ns, self.relpath)


@dataclass
class CacheGcResult:
    """What one garbage-collection pass did (or would do)."""

    bytes_before: int = 0
    bytes_after: int = 0
    evicted: list[CacheEntry] = field(default_factory=list)
    tmp_removed: list[str] = field(default_factory=list)

    @property
    def bytes_freed(self) -> int:
        return self.bytes_before - self.bytes_after


class DriveCache:
    """Payload cache keyed by ``(fingerprint, drive_id)``.

    ``max_bytes`` bounds the cache: every :meth:`put` collects down to
    the bound, oldest entries first.  ``None`` (the default) keeps the
    historical unbounded behaviour.
    """

    def __init__(self, root: str | os.PathLike, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.root = os.fspath(root)
        self.max_bytes = max_bytes

    def entry_path(self, fingerprint: str, drive_id: int) -> str:
        return os.path.join(self.root, fingerprint, shard_name(drive_id))

    def get(
        self, fingerprint: str, drive_id: int
    ) -> tuple[dict[str, Any] | None, str | None]:
        """``(raw_payload, quarantined_path)`` for one cache lookup.

        A miss is ``(None, None)``; a hit returns the JSON-level payload
        (records as dicts, ``metrics`` restored from the entry's end
        metadata); a corrupt entry is moved aside and reported as
        ``(None, <quarantine path>)`` so the caller recomputes.
        """
        path = self.entry_path(fingerprint, drive_id)
        if not os.path.exists(path):
            return None, None
        try:
            data = read_shard(path, fingerprint=fingerprint, drive_id=drive_id)
        except (ShardCorruptError, ValueError):
            # ValueError covers an entry whose header names a different
            # fingerprint than the directory it sits in — for a
            # content-addressed cache that is tampering, not operator
            # error, and must never be served.
            return None, quarantine(path)
        payload = dict(data.meta)
        payload["records"] = data.records
        return payload, None

    def put(
        self,
        fingerprint: str,
        drive_id: int,
        records: list[dict],
        meta: dict[str, Any],
    ) -> None:
        """Atomically store one drive's payload.

        ``meta`` is the payload minus records (the drive's metric
        snapshot included, so a cache hit restores observability state
        exactly as a checkpoint resume would).
        """
        path = self.entry_path(fingerprint, drive_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data, _ = build_shard_bytes(fingerprint, drive_id, records, meta)
        atomic_write_bytes(path, data, boundary="cache")
        if self.max_bytes is not None:
            self.gc()

    # -- garbage collection ------------------------------------------------

    def entries(self) -> list[CacheEntry]:
        """Every cache entry, in deterministic path order."""
        found: list[CacheEntry] = []
        for fingerprint in self._fingerprint_dirs():
            directory = os.path.join(self.root, fingerprint)
            for name in sorted(os.listdir(directory)):
                if not name.endswith(".jsonl"):
                    continue
                path = os.path.join(directory, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                found.append(
                    CacheEntry(
                        relpath=f"{fingerprint}/{name}",
                        size_bytes=stat.st_size,
                        mtime_ns=stat.st_mtime_ns,
                    )
                )
        return found

    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries())

    def gc(
        self, max_bytes: int | None = None, *, dry_run: bool = False
    ) -> CacheGcResult:
        """Collect the cache down to ``max_bytes`` (oldest entries first).

        ``max_bytes`` defaults to the cache's own bound; ``None`` with an
        unbounded cache removes nothing but still sweeps ``.tmp`` debris
        left by a crash mid-write.  ``dry_run`` reports what would be
        evicted without touching the filesystem.  Eviction order is
        deterministic — (mtime, then relative path) — so identical cache
        states collect identically.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes
        result = CacheGcResult()
        if not dry_run:
            result.tmp_removed = self._sweep_tmp_debris()
        entries = self.entries()
        result.bytes_before = sum(entry.size_bytes for entry in entries)
        result.bytes_after = result.bytes_before
        if max_bytes is None:
            return result
        touched: set[str] = set()
        for entry in sorted(entries, key=lambda e: e.sort_key):
            if result.bytes_after <= max_bytes:
                break
            result.evicted.append(entry)
            result.bytes_after -= entry.size_bytes
            if not dry_run:
                path = os.path.join(self.root, entry.relpath)
                try:
                    os.unlink(path)
                except OSError:
                    continue
                touched.add(os.path.dirname(path))
        for directory in sorted(touched):
            fsync_dir(directory)
        if not dry_run:
            self._prune_empty_dirs()
        return result

    def _fingerprint_dirs(self) -> list[str]:
        try:
            names = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return []
        return [
            name
            for name in names
            if os.path.isdir(os.path.join(self.root, name))
        ]

    def _sweep_tmp_debris(self) -> list[str]:
        """Remove ``.tmp`` files a SIGKILL mid-commit left behind."""
        removed: list[str] = []
        for fingerprint in self._fingerprint_dirs():
            directory = os.path.join(self.root, fingerprint)
            for name in sorted(os.listdir(directory)):
                if not name.endswith(".tmp"):
                    continue
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    continue
                removed.append(f"{fingerprint}/{name}")
        return removed

    def _prune_empty_dirs(self) -> None:
        for fingerprint in self._fingerprint_dirs():
            directory = os.path.join(self.root, fingerprint)
            try:
                if not os.listdir(directory):
                    os.rmdir(directory)
            except OSError:
                continue
