"""Content-addressed drive cache: computed once, reused across runs.

A drive's payload is a pure function of ``(config, drive_id)`` — the
invariant the whole execution stack is built on — so its result can be
cached under a key derived from exactly those two things::

    <cache_dir>/<config.fingerprint()>/drive-00042.jsonl

Each entry is a standard digest-chained shard (:mod:`repro.store.shard`)
whose ``end`` metadata also carries the drive's metric snapshot, written
through the atomic commit protocol.  Reads are strictly verified: an
entry that fails its chain is **quarantined and recomputed, never
silently served** — the cache can only ever save work, not corrupt a
dataset.  Re-running an unchanged campaign recomputes zero drives;
changing the config changes the fingerprint, which simply addresses a
different (initially empty) directory, so only changed work is paid for.
"""

from __future__ import annotations

import os
from typing import Any

from repro.resilience.integrity import quarantine
from repro.store.artifacts import shard_name
from repro.store.commit import atomic_write_bytes
from repro.store.shard import ShardCorruptError, build_shard_bytes, read_shard


class DriveCache:
    """Payload cache keyed by ``(fingerprint, drive_id)``."""

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)

    def entry_path(self, fingerprint: str, drive_id: int) -> str:
        return os.path.join(self.root, fingerprint, shard_name(drive_id))

    def get(
        self, fingerprint: str, drive_id: int
    ) -> tuple[dict[str, Any] | None, str | None]:
        """``(raw_payload, quarantined_path)`` for one cache lookup.

        A miss is ``(None, None)``; a hit returns the JSON-level payload
        (records as dicts, ``metrics`` restored from the entry's end
        metadata); a corrupt entry is moved aside and reported as
        ``(None, <quarantine path>)`` so the caller recomputes.
        """
        path = self.entry_path(fingerprint, drive_id)
        if not os.path.exists(path):
            return None, None
        try:
            data = read_shard(path, fingerprint=fingerprint, drive_id=drive_id)
        except (ShardCorruptError, ValueError):
            # ValueError covers an entry whose header names a different
            # fingerprint than the directory it sits in — for a
            # content-addressed cache that is tampering, not operator
            # error, and must never be served.
            return None, quarantine(path)
        payload = dict(data.meta)
        payload["records"] = data.records
        return payload, None

    def put(
        self,
        fingerprint: str,
        drive_id: int,
        records: list[dict],
        meta: dict[str, Any],
    ) -> None:
        """Atomically store one drive's payload.

        ``meta`` is the payload minus records (the drive's metric
        snapshot included, so a cache hit restores observability state
        exactly as a checkpoint resume would).
        """
        path = self.entry_path(fingerprint, drive_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data, _ = build_shard_bytes(fingerprint, drive_id, records, meta)
        atomic_write_bytes(path, data, boundary="cache")
