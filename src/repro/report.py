"""Terminal rendering of the paper's figures (no plotting dependencies).

The benchmarks print rows; for human inspection these helpers render the
underlying distributions as compact ASCII charts — CDFs, bar charts, and
throughput timelines — so `python -m repro.experiments fig9 --plot` tells
the same story the paper's figures do.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Glyphs from empty to full, used for bar fills.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _fill(width_cells: float) -> str:
    """A horizontal bar of fractional cell width."""
    full = int(width_cells)
    frac = width_cells - full
    partial = _BLOCKS[int(frac * (len(_BLOCKS) - 1))] if frac > 0 else ""
    return "█" * full + partial


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(no data)"
    peak = max(max(values), 1e-12)
    label_width = max(len(l) for l in labels)
    rows = []
    for label, value in zip(labels, values, strict=True):
        bar = _fill(value / peak * width)
        rows.append(f"{label:>{label_width}} |{bar:<{width}} {value:.1f}{unit}")
    return "\n".join(rows)


def stacked_shares(
    labels: Sequence[str],
    shares: Sequence[Sequence[float]],
    legend: Sequence[str],
    width: int = 48,
) -> str:
    """Stacked 100 % bars (the paper's Figure 9 style).

    ``shares[i]`` are the per-level fractions for ``labels[i]`` and must
    sum to ~1.  Levels are drawn with distinct fill characters.
    """
    fills = "░▒▓█"
    if any(abs(sum(row) - 1.0) > 0.05 for row in shares):
        raise ValueError("each share row must sum to ~1")
    label_width = max(len(l) for l in labels)
    rows = [
        " " * label_width
        + "  "
        + "  ".join(f"{fills[i % len(fills)]}={name}" for i, name in enumerate(legend))
    ]
    for label, row in zip(labels, shares, strict=True):
        cells = []
        for i, share in enumerate(row):
            cells.append(fills[i % len(fills)] * int(round(share * width)))
        bar = "".join(cells)[:width].ljust(width)
        rows.append(f"{label:>{label_width}} |{bar}|")
    return "\n".join(rows)


def cdf_plot(
    curves: dict[str, Iterable[float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "Mbps",
) -> str:
    """Multiple empirical CDFs on one ASCII canvas.

    Each curve gets a distinct marker; the y axis is cumulative
    probability 0..1, the x axis spans the pooled data range.
    """
    markers = "*o+x#@%&"
    data = {name: np.sort(np.asarray(list(v), float)) for name, v in curves.items()}
    data = {name: v for name, v in data.items() if v.size}
    if not data:
        return "(no data)"
    x_max = max(v[-1] for v in data.values())
    x_max = max(x_max, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    for idx, values in enumerate(data.values()):
        marker = markers[idx % len(markers)]
        probs = np.arange(1, values.size + 1) / values.size
        for col in range(width):
            x = (col + 0.5) / width * x_max
            p = float(np.searchsorted(values, x, side="right")) / values.size
            row = height - 1 - int(min(p, 0.999) * height)
            if canvas[row][col] == " ":
                canvas[row][col] = marker
    lines = []
    for i, row in enumerate(canvas):
        y = 1.0 - i / height
        lines.append(f"{y:4.1f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0{' ' * (width - 12)}{x_max:,.0f} {x_label}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(data)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def timeline(
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 10,
    y_label: str = "Mbps",
) -> str:
    """Overlaid per-second throughput timelines (the Figure 11 style)."""
    markers = "*o+x#"
    arrays = {k: np.asarray(v, float) for k, v in series.items() if len(v)}
    if not arrays:
        return "(no data)"
    peak = max(float(v.max()) for v in arrays.values())
    peak = max(peak, 1e-9)
    length = max(len(v) for v in arrays.values())
    canvas = [[" "] * width for _ in range(height)]
    for idx, values in enumerate(arrays.values()):
        marker = markers[idx % len(markers)]
        for col in range(width):
            pos = int(col / width * length)
            if pos >= len(values):
                continue
            row = height - 1 - int(min(values[pos] / peak, 0.999) * height)
            if canvas[row][col] == " ":
                canvas[row][col] = marker
    lines = [f"{peak:7.0f} {y_label}"]
    for row in canvas:
        lines.append("        |" + "".join(row))
    lines.append("        +" + "-" * width + f"> {length} s")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(arrays)
    )
    lines.append("         " + legend)
    return "\n".join(lines)
