"""Unit helpers and physical constants shared across the toolkit.

All internal computation uses SI base units (seconds, meters, bits) unless a
name says otherwise.  Helpers here convert between the units the paper quotes
(Mbps, km, km/h, ms) and the internal representation, so call sites read like
the paper does.
"""

from __future__ import annotations

#: Speed of light in vacuum (km/s), as used by the paper's Equation 1.
SPEED_OF_LIGHT_KM_S = 299_792.458

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT_M_S = SPEED_OF_LIGHT_KM_S * 1000.0

#: Mean Earth radius (km), spherical model.
EARTH_RADIUS_KM = 6371.0

#: Standard gravitational parameter of Earth (km^3/s^2).
EARTH_MU_KM3_S2 = 398_600.4418

#: Ethernet-style MTU payload used as the default packet size (bytes).
DEFAULT_MTU_BYTES = 1500

BITS_PER_BYTE = 8


def mbps_to_bps(mbps: float) -> float:
    """Convert megabits per second to bits per second."""
    return mbps * 1e6


def bps_to_mbps(bps: float) -> float:
    """Convert bits per second to megabits per second."""
    return bps / 1e6


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert megabits per second to bytes per second."""
    return mbps * 1e6 / BITS_PER_BYTE


def bytes_to_megabits(num_bytes: float) -> float:
    """Convert a byte count to megabits."""
    return num_bytes * BITS_PER_BYTE / 1e6


def kmh_to_ms(kmh: float) -> float:
    """Convert km/h to m/s."""
    return kmh / 3.6


def ms_to_kmh(meters_per_second: float) -> float:
    """Convert m/s to km/h."""
    return meters_per_second * 3.6


def ms_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / 1000.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0


def throughput_mbps(num_bytes: float, duration_s: float) -> float:
    """Average throughput in Mbps for ``num_bytes`` moved in ``duration_s``.

    Returns 0.0 for a non-positive duration rather than raising, because
    measurement windows at trace boundaries can legitimately be empty.
    """
    if duration_s <= 0:
        return 0.0
    return bytes_to_megabits(num_bytes) / duration_s
