"""Mahimahi-format bandwidth traces.

Mahimahi (and the paper's MpShell variant) describes a time-varying link as
a text file of millisecond timestamps; each line is one *packet delivery
opportunity* of MTU bytes.  The paper converts its measured UDP throughput
traces into this format for replay.  This module converts between our
per-second :class:`repro.conditions.LinkConditions` samples, plain
throughput series, and Mahimahi trace files.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.conditions import LinkConditions
from repro.units import DEFAULT_MTU_BYTES


def throughput_to_opportunities_ms(
    throughput_mbps: Iterable[float],
    mtu_bytes: int = DEFAULT_MTU_BYTES,
) -> list[int]:
    """Convert a 1 Hz throughput series into delivery-opportunity times.

    Each second contributes ``rate / (mtu * 8)`` evenly spaced
    opportunities.  Fractional opportunities carry over between seconds so
    long-run average rates are preserved exactly.
    """
    if mtu_bytes <= 0:
        raise ValueError(f"mtu must be positive, got {mtu_bytes}")
    opportunities: list[int] = []
    carry = 0.0
    for second, mbps in enumerate(throughput_mbps):
        if mbps < 0:
            raise ValueError(f"negative throughput at second {second}: {mbps}")
        per_second = mbps * 1e6 / (mtu_bytes * 8.0) + carry
        count = int(per_second)
        carry = per_second - count
        for i in range(count):
            opportunities.append(int(second * 1000 + i * 1000.0 / max(count, 1)))
    return opportunities


def conditions_to_opportunities_ms(
    samples: list[LinkConditions],
    downlink: bool = True,
    mtu_bytes: int = DEFAULT_MTU_BYTES,
) -> list[int]:
    """Delivery opportunities from channel samples (paper Section 6 flow:
    "use the UDP downlink throughput traces ... and convert them to packet
    traces for replay on MpShell")."""
    series = [s.capacity_mbps(downlink) for s in samples]
    return throughput_to_opportunities_ms(series, mtu_bytes)


def write_trace(path: str | os.PathLike, opportunities_ms: list[int]) -> None:
    """Write a Mahimahi trace file (one millisecond timestamp per line)."""
    if not opportunities_ms:
        raise ValueError("cannot write an empty trace")
    last = -1
    with open(path, "w") as handle:
        for ts in opportunities_ms:
            if ts < last:
                raise ValueError("opportunity timestamps must be sorted")
            last = ts
            handle.write(f"{ts}\n")


def read_trace(path: str | os.PathLike) -> list[int]:
    """Read a Mahimahi trace file."""
    opportunities: list[int] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                opportunities.append(int(line))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a millisecond timestamp: {line!r}"
                ) from exc
    if not opportunities:
        raise ValueError(f"{path}: empty trace")
    return opportunities


def trace_mean_mbps(
    opportunities_ms: list[int], mtu_bytes: int = DEFAULT_MTU_BYTES
) -> float:
    """Average rate a trace sustains over its (wrapped) duration."""
    if not opportunities_ms:
        return 0.0
    duration_ms = max(opportunities_ms[-1], 1)
    return len(opportunities_ms) * mtu_bytes * 8.0 / (duration_ms / 1000.0) / 1e6
