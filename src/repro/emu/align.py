"""Timestamp alignment of traces collected on different devices.

Section 6: "Different network traces are aligned via timestamps so that
they reflect the network conditions experienced by users at the same
location and time."  Each device's clock has an offset and tests start at
slightly different moments; alignment intersects the time ranges and
re-bases everything at zero on a common 1 Hz grid.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.conditions import LinkConditions, outage


def align_conditions(
    traces: list[list[LinkConditions]],
    offsets_s: list[float] | None = None,
) -> list[list[LinkConditions]]:
    """Align several condition traces onto a shared 1 Hz timeline.

    ``offsets_s[i]`` is added to every timestamp of trace ``i`` (clock
    correction).  The output traces all start at t=0 and have equal length
    (the overlap of all inputs); seconds missing from a trace are filled
    with outage samples, which is how a dead modem shows up in the data.
    """
    if not traces or any(not t for t in traces):
        raise ValueError("every trace must be non-empty")
    offsets = offsets_s or [0.0] * len(traces)
    if len(offsets) != len(traces):
        raise ValueError(
            f"{len(offsets)} offsets for {len(traces)} traces"
        )

    shifted: list[dict[int, LinkConditions]] = []
    for trace, offset in zip(traces, offsets, strict=True):
        by_second: dict[int, LinkConditions] = {}
        for sample in trace:
            second = int(math.floor(sample.time_s + offset))
            by_second[second] = sample
        shifted.append(by_second)

    start = max(min(d) for d in shifted)
    end = min(max(d) for d in shifted)
    if end < start:
        raise ValueError("traces do not overlap in time")

    aligned: list[list[LinkConditions]] = []
    for by_second in shifted:
        row: list[LinkConditions] = []
        for second in range(start, end + 1):
            t = float(second - start)
            sample = by_second.get(second)
            if sample is None:
                row.append(outage(t))
            else:
                row.append(replace(sample, time_s=t))
        aligned.append(row)
    return aligned
