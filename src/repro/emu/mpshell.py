"""MpShell: trace-replay link emulation with multiple virtual interfaces.

Reimplements the record-and-replay semantics of Mahimahi's ``mm-link`` (the
paper's MpShell is a Mahimahi variant): a link is a cyclic list of packet
*delivery opportunities*; at each opportunity up to one MTU of queued bytes
leaves the drop-tail buffer, then experiences a fixed one-way delay.
Multiple :class:`VirtualInterface` s share one simulator, giving the
multi-homed host the paper runs MPTCP experiments on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conditions import LinkConditions
from repro.emu.traces import conditions_to_opportunities_ms
from repro.net.link import ConditionsSchedule
from repro.net.packet import Packet
from repro.net.path import Path
from repro.net.queue import DropTailQueue
from repro.net.simulator import Simulator
from repro.units import DEFAULT_MTU_BYTES


class TraceLink:
    """One direction of an emulated link, driven by delivery opportunities.

    API-compatible with :class:`repro.net.link.Link` so transports and
    :class:`repro.net.path.Path` cannot tell the difference.
    """

    def __init__(
        self,
        sim: Simulator,
        opportunities_ms: list[int],
        one_way_delay_ms: float,
        buffer_bytes: int,
        rng: np.random.Generator,
        loss_rate: float = 0.0,
        loss_burst: float = 1.0,
        mtu_bytes: int = DEFAULT_MTU_BYTES,
        name: str = "tracelink",
    ):
        if not opportunities_ms:
            raise ValueError("trace must contain at least one opportunity")
        if opportunities_ms[-1] <= 0:
            raise ValueError("trace period must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.opportunities_ms = list(opportunities_ms)
        self.period_s = self.opportunities_ms[-1] / 1000.0
        self.delay_s = one_way_delay_ms / 1000.0
        self.queue = DropTailQueue(buffer_bytes)
        self.mtu_bytes = mtu_bytes
        self.loss_rate = loss_rate
        self.loss_burst = max(loss_burst, 1.0)
        self.name = name
        self._rng = rng
        self._receiver = None
        self._index = 0
        self._base_s = 0.0
        self._burst_until_s = -1.0
        self._mean_opportunity_s = self.period_s / len(self.opportunities_ms)
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.random_losses = 0
        self.packets_sent = 0
        self._schedule_next()

    def connect(self, receiver) -> None:
        self._receiver = receiver

    def send(self, packet: Packet) -> None:
        if self._receiver is None:
            raise RuntimeError(f"{self.name}: send() before connect()")
        self.packets_sent += 1
        self.queue.push(packet)

    # -- opportunity engine ------------------------------------------------

    def _schedule_next(self) -> None:
        target_s = self._base_s + self.opportunities_ms[self._index] / 1000.0
        delay = max(0.0, target_s - self.sim.now)
        self.sim.schedule(delay, self._on_opportunity)

    def _on_opportunity(self) -> None:
        budget = self.mtu_bytes
        while True:
            head = self.queue.peek()
            if head is None or head.size_bytes > budget:
                break
            packet = self.queue.pop()
            budget -= packet.size_bytes
            if self._draw_loss():
                self.random_losses += 1
            else:
                self.sim.schedule(
                    self.delay_s, lambda p=packet: self._deliver(p)
                )
        self._index += 1
        if self._index >= len(self.opportunities_ms):
            self._index = 0
            self._base_s += self.period_s
        self._schedule_next()

    def _draw_loss(self) -> bool:
        # Time-window burst loss, mirroring repro.net.link.Link._draw_loss;
        # loss parameters are per reference MTU (1500 B).
        if self.sim.now < self._burst_until_s:
            return True
        if self.loss_rate <= 0.0:
            return False
        scale = self.mtu_bytes / DEFAULT_MTU_BYTES
        if self._rng.random() >= min(self.loss_rate * scale / self.loss_burst, 1.0):
            return False
        if self.loss_burst > 1.0:
            run = float(self._rng.geometric(1.0 / self.loss_burst)) - 1.0
            self._burst_until_s = (
                self.sim.now + run * self._mean_opportunity_s / scale
            )
        return True

    def _deliver(self, packet: Packet) -> None:
        self.bytes_delivered += packet.size_bytes
        self.packets_delivered += 1
        self._receiver(packet)

    @property
    def queue_drops(self) -> int:
        return self.queue.drops


@dataclass(frozen=True)
class InterfaceStats:
    """Counters for one virtual interface after a run."""

    name: str
    downlink_bytes: int
    uplink_bytes: int
    downlink_drops: int


class MpShell:
    """A multi-interface emulation shell over one simulator.

    Each interface replays a recorded channel trace: the downlink capacity
    becomes delivery opportunities, the measured RTT becomes the fixed
    propagation delay, and the measured loss rate/burstiness is replayed as
    random loss.  ``add_interface`` returns a :class:`repro.net.path.Path`
    that transports plug into directly.
    """

    #: Default drop-tail depth: about one second of the trace's mean rate
    #: (Mahimahi's unbounded default is unrealistic; a multi-second queue
    #: on a slow link starves the RTO estimator instead of dropping).
    MIN_BUFFER_PACKETS = 64
    MAX_BUFFER_PACKETS = 2048

    def __init__(self, sim: Simulator | None = None, seed: int = 0):
        self.sim = sim or Simulator()
        self._rng = np.random.default_rng(seed)
        self.interfaces: dict[str, Path] = {}

    def add_interface(
        self,
        name: str,
        samples: list[LinkConditions],
        mtu_bytes: int = DEFAULT_MTU_BYTES,
        buffer_bytes: int | None = None,
        replay_loss: bool = True,
        scheduled_loss: bool = False,
    ) -> Path:
        """Create a virtual interface replaying ``samples``.

        The data direction is the downlink (the paper's MPTCP experiments
        are downloads); ACKs ride an uplink trace built the same way.
        With ``scheduled_loss`` the per-second recorded loss/burst values
        are replayed at their original positions instead of as a trace-wide
        average (closer to the field data, beyond what Mahimahi expresses).
        """
        if name in self.interfaces:
            raise ValueError(f"interface {name!r} already exists")
        if not samples:
            raise ValueError("need at least one conditions sample")
        delay_ms = _median([s.rtt_ms for s in samples]) / 2.0
        loss = _mean([s.loss_rate for s in samples if not s.is_outage]) if replay_loss else 0.0
        burst = _mean([s.loss_burst for s in samples]) if replay_loss else 1.0

        def direction_buffer(downlink: bool) -> int:
            if buffer_bytes is not None:
                return buffer_bytes
            live = [s for s in samples if not s.is_outage] or samples
            mean_rate = sum(s.capacity_mbps(downlink) for s in live) / len(live)
            packets = int(mean_rate * 1e6 / 8.0 / mtu_bytes)  # ~1 s of rate
            packets = min(max(packets, self.MIN_BUFFER_PACKETS), self.MAX_BUFFER_PACKETS)
            return packets * mtu_bytes

        def build(downlink: bool, suffix: str) -> TraceLink:
            kwargs = dict(
                sim=self.sim,
                opportunities_ms=conditions_to_opportunities_ms(
                    samples, downlink=downlink, mtu_bytes=mtu_bytes
                ),
                one_way_delay_ms=delay_ms,
                buffer_bytes=direction_buffer(downlink),
                rng=self._rng,
                loss_rate=min(loss, 0.5),
                loss_burst=burst,
                mtu_bytes=mtu_bytes,
                name=f"{name}.{suffix}",
            )
            if scheduled_loss and replay_loss:
                return ScheduledLossTraceLink(
                    schedule=ConditionsSchedule(samples, downlink=downlink),
                    **kwargs,
                )
            return TraceLink(**kwargs)

        down = build(True, "down")
        up = build(False, "up")
        path = Path.from_links(self.sim, down, up, name=name)
        self.interfaces[name] = path
        return path

    def interface_stats(self, name: str) -> InterfaceStats:
        path = self.interfaces[name]
        return InterfaceStats(
            name=name,
            downlink_bytes=path.forward_link.bytes_delivered,
            uplink_bytes=path.reverse_link.bytes_delivered,
            downlink_drops=path.forward_link.queue_drops,
        )

    def run(self, duration_s: float) -> None:
        """Run the emulation for ``duration_s`` of simulated time."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        self.sim.run(until_s=self.sim.now + duration_s)


class ScheduledLossTraceLink(TraceLink):
    """TraceLink whose loss/burst follow the per-second schedule.

    Plain :class:`TraceLink` replays the *average* loss (what Mahimahi can
    express); this subclass consults the original conditions second by
    second, preserving loss bursts at their recorded positions.
    """

    def __init__(self, schedule: ConditionsSchedule, **kwargs):
        self._schedule = schedule
        super().__init__(**kwargs)

    def _draw_loss(self) -> bool:
        if self.sim.now < self._burst_until_s:
            return True
        p = self._schedule.loss_rate(self.sim.now)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        burst = max(self._schedule.loss_burst(self.sim.now), 1.0)
        scale = self.mtu_bytes / DEFAULT_MTU_BYTES
        if self._rng.random() >= min(p * scale / burst, 1.0):
            return False
        if burst > 1.0:
            run = float(self._rng.geometric(1.0 / burst)) - 1.0
            self._burst_until_s = (
                self.sim.now + run * self._mean_opportunity_s / scale
            )
        return True


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[len(ordered) // 2]
