"""Emulation: Mahimahi-format traces, alignment, and the MpShell replay."""

from repro.emu.align import align_conditions
from repro.emu.mpshell import InterfaceStats, MpShell, ScheduledLossTraceLink, TraceLink
from repro.emu.traces import (
    conditions_to_opportunities_ms,
    read_trace,
    throughput_to_opportunities_ms,
    trace_mean_mbps,
    write_trace,
)

__all__ = [
    "InterfaceStats",
    "MpShell",
    "ScheduledLossTraceLink",
    "TraceLink",
    "align_conditions",
    "conditions_to_opportunities_ms",
    "read_trace",
    "throughput_to_opportunities_ms",
    "trace_mean_mbps",
    "write_trace",
]
