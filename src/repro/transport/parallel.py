"""Parallel TCP: N concurrent connections over one path (iPerf ``-P N``).

Section 4.2 of the paper: parallelism raises throughput on both network
types, dramatically so on Starlink (>50 % with 4 flows, >130 % with 8)
because independent windows insulate the aggregate from per-flow loss
events.  Here the effect emerges from running N real senders side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.host import Demux
from repro.net.path import Path
from repro.net.simulator import Simulator
from repro.transport.tcp import TcpReceiver, TcpSender


@dataclass
class ParallelStats:
    """Aggregate view over the member connections."""

    bytes_received: int
    segments_sent: int
    retransmissions: int

    @property
    def retransmission_rate(self) -> float:
        if self.segments_sent == 0:
            return 0.0
        return self.retransmissions / self.segments_sent


class ParallelTcp:
    """Manages N TCP connections sharing one path."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        num_connections: int,
        segment_bytes: int = 1500,
        congestion: str = "cubic",
        receiver_buffer_segments: int = 1 << 20,
    ):
        if num_connections < 1:
            raise ValueError(
                f"need at least one connection, got {num_connections}"
            )
        self.sim = sim
        self.path = path
        self.senders: list[TcpSender] = []
        self.receivers: list[TcpReceiver] = []
        data_demux = Demux()
        ack_demux = Demux()
        for flow_id in range(num_connections):
            receiver = TcpReceiver(
                sim, path, flow_id, segment_bytes, receiver_buffer_segments
            )
            sender = TcpSender(
                sim,
                path,
                flow_id=flow_id,
                segment_bytes=segment_bytes,
                congestion=congestion,
                receiver_buffer_segments=receiver_buffer_segments,
            )
            data_demux.register(flow_id, receiver.on_data)
            ack_demux.register(flow_id, sender.on_ack)
            self.senders.append(sender)
            self.receivers.append(receiver)
        path.connect(data_demux, ack_demux)

    def start(self) -> None:
        for sender in self.senders:
            sender.start()

    @property
    def stats(self) -> ParallelStats:
        return ParallelStats(
            bytes_received=sum(r.bytes_received for r in self.receivers),
            segments_sent=sum(s.stats.segments_sent for s in self.senders),
            retransmissions=sum(s.stats.retransmissions for s in self.senders),
        )
