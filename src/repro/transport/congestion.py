"""Congestion-control algorithms: NewReno-style AIMD and CUBIC.

Both operate in units of segments.  The interface is deliberately small —
``on_ack`` / ``on_loss`` / ``on_rto`` — so TCP senders and MPTCP subflows
share implementations.  CUBIC is the Linux default the paper's iPerf runs
used; Reno is kept for the ablation bench ("better congestion control ...
tailored for such characteristics", Section 1).
"""

from __future__ import annotations

from typing import Protocol


class CongestionControl(Protocol):
    """Window evolution driven by ACK/loss events."""

    cwnd: float
    ssthresh: float

    def on_ack(self, newly_acked: int, rtt_s: float, now_s: float) -> None: ...

    def on_loss(self, now_s: float) -> None: ...

    def on_rto(self, now_s: float, inflight: float | None = None) -> None: ...


_INITIAL_CWND = 10.0
_MIN_CWND = 2.0


class Reno:
    """NewReno AIMD: slow start, congestion avoidance, halve on loss."""

    def __init__(self):
        self.cwnd = _INITIAL_CWND
        self.ssthresh = float("inf")

    def on_ack(self, newly_acked: int, rtt_s: float, now_s: float) -> None:
        if newly_acked <= 0:
            return
        # A cumulative ACK can cover far more than a window after a hole
        # fills; growth is still clocked at one window per RTT.
        newly_acked = min(newly_acked, max(int(self.cwnd), 1))
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start: +1 per acked segment
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

    def on_loss(self, now_s: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, _MIN_CWND)
        self.cwnd = self.ssthresh

    def on_rto(self, now_s: float, inflight: float | None = None) -> None:
        # RFC 5681: ssthresh = max(FlightSize / 2, 2) — during an outage the
        # flight stays large, so recovery re-enters slow start with a usable
        # threshold instead of grinding up from two segments.
        flight = self.cwnd if inflight is None else max(inflight, self.cwnd)
        self.ssthresh = max(flight / 2.0, _MIN_CWND)
        self.cwnd = _MIN_CWND


class Cubic:
    """CUBIC (RFC 8312) with standard constants.

    Window grows as ``W(t) = C*(t-K)^3 + W_max`` since the last loss, with
    the TCP-friendly region as a floor.  Fast convergence is included.
    """

    C = 0.4
    BETA = 0.7

    def __init__(self):
        self.cwnd = _INITIAL_CWND
        self.ssthresh = float("inf")
        self._w_max = 0.0
        self._epoch_start_s = -1.0
        self._w_est = 0.0  # TCP-friendly (Reno-equivalent) window estimate
        self._acked_in_epoch = 0

    def on_ack(self, newly_acked: int, rtt_s: float, now_s: float) -> None:
        if newly_acked <= 0:
            return
        # Same per-RTT clocking cap as Reno (see above).
        newly_acked = min(newly_acked, max(int(self.cwnd), 1))
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
            return
        if self._epoch_start_s < 0:
            self._epoch_start_s = now_s
            self._w_max = max(self._w_max, self.cwnd)
            self._w_est = self.cwnd
            self._acked_in_epoch = 0
        t = now_s - self._epoch_start_s
        k = ((self._w_max * (1.0 - self.BETA)) / self.C) ** (1.0 / 3.0)
        target = self.C * (t + rtt_s - k) ** 3 + self._w_max
        # TCP-friendly region: emulate Reno's growth from the epoch start.
        self._acked_in_epoch += newly_acked
        self._w_est += newly_acked * (
            3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) / max(self.cwnd, 1.0)
        )
        target = max(target, self._w_est)
        if target > self.cwnd:
            # Approach the target over one RTT.
            self.cwnd += (target - self.cwnd) / max(self.cwnd, 1.0) * newly_acked
        else:
            self.cwnd += newly_acked / (100.0 * max(self.cwnd, 1.0))

    def on_loss(self, now_s: float) -> None:
        # Fast convergence: shrink the remembered peak when losses repeat.
        if self.cwnd < self._w_max:
            self._w_max = self.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.BETA, _MIN_CWND)
        self.ssthresh = self.cwnd
        self._epoch_start_s = -1.0

    def on_rto(self, now_s: float, inflight: float | None = None) -> None:
        flight = self.cwnd if inflight is None else max(inflight, self.cwnd)
        self._w_max = max(self._w_max, flight)
        self.ssthresh = max(flight / 2.0, _MIN_CWND)
        self.cwnd = _MIN_CWND
        self._epoch_start_s = -1.0


def make_congestion_control(name: str) -> CongestionControl:
    """Factory: ``"cubic"`` (default everywhere) or ``"reno"``."""
    table = {"cubic": Cubic, "reno": Reno}
    if name not in table:
        raise KeyError(f"unknown congestion control {name!r}; options: {sorted(table)}")
    return table[name]()
