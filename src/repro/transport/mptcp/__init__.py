"""MPTCP: multipath transport over simulated Starlink + cellular paths."""

from repro.transport.mptcp.connection import (
    MptcpConnection,
    MptcpReceiver,
    MptcpStats,
    Subflow,
    open_mptcp_connection,
)
from repro.transport.mptcp.scheduler import (
    Blest,
    MinRtt,
    RoundRobin,
    SatAware,
    Scheduler,
    make_scheduler,
)

__all__ = [
    "Blest",
    "MinRtt",
    "MptcpConnection",
    "MptcpReceiver",
    "MptcpStats",
    "RoundRobin",
    "SatAware",
    "Scheduler",
    "Subflow",
    "make_scheduler",
    "open_mptcp_connection",
]
