"""MPTCP packet schedulers: round-robin, minRTT, and BLEST.

The scheduler decides which subflow carries the next data segment.  BLEST
(Ferlin et al., IFIP Networking 2016) is the Linux v5.19 default the paper
ran: it avoids sending on a slow subflow when doing so is predicted to
block the shared meta send window before the data would be acknowledged.

Every scheduler records its decisions through :mod:`repro.obs`: one
counter series per (scheduler, subflow) plus a "wait" series for the
rounds where the scheduler deliberately sends nothing.  The concrete
schedulers implement :meth:`SchedulerBase._pick`; the public
:meth:`SchedulerBase.pick` wraps it with the bookkeeping so a decision is
counted exactly once even when schedulers delegate to each other
(``SatAware`` -> ``Blest``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

from repro.obs.recorder import get_recorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.mptcp.connection import MptcpConnection, Subflow


class Scheduler(Protocol):
    """Given subflows with congestion-window space, choose one (or wait)."""

    def pick(
        self,
        available: Sequence["Subflow"],
        connection: "MptcpConnection",
    ) -> "Subflow | None": ...


class SchedulerBase:
    """Decision bookkeeping shared by all schedulers.

    Subclasses implement :meth:`_pick`; :meth:`pick` stays the public
    entry point and records the outcome (per-subflow pick or a "wait")
    under the scheduler's class name.
    """

    def __init__(self, recorder=None):
        self._obs = recorder if recorder is not None else get_recorder()
        self._m_waits = self._obs.counter(
            "mptcp.scheduler.waits", scheduler=type(self).__name__.lower()
        )
        self._m_picks: dict[int, object] = {}

    def pick(self, available, connection):
        chosen = self._pick(available, connection)
        if chosen is None:
            self._m_waits.inc()
        else:
            counter = self._m_picks.get(chosen.subflow_id)
            if counter is None:
                counter = self._obs.counter(
                    "mptcp.scheduler.decisions",
                    scheduler=type(self).__name__.lower(),
                    subflow=str(chosen.subflow_id),
                )
                self._m_picks[chosen.subflow_id] = counter
            counter.inc()
        return chosen

    def _pick(self, available, connection):  # pragma: no cover - abstract
        raise NotImplementedError


class RoundRobin(SchedulerBase):
    """Cycle through subflows regardless of path quality (baseline)."""

    def __init__(self, recorder=None):
        super().__init__(recorder=recorder)
        self._last = -1

    def _pick(self, available, connection):
        if not available:
            return None
        ids = sorted(sf.subflow_id for sf in available)
        for sf_id in ids:
            if sf_id > self._last:
                self._last = sf_id
                break
        else:
            self._last = ids[0]
        return next(sf for sf in available if sf.subflow_id == self._last)


class MinRtt(SchedulerBase):
    """Always prefer the lowest-SRTT subflow with window space."""

    def _pick(self, available, connection):
        if not available:
            return None
        return min(available, key=lambda sf: sf.smoothed_rtt_s)


class Blest(SchedulerBase):
    """Blocking-estimation scheduler (the paper's kernel default).

    Prefer the fastest available subflow.  When only slower subflows have
    space, estimate how many segments the fastest subflow could push during
    one slow-subflow RTT; if the shared send window cannot hold that burst
    plus the slow segment, sending on the slow subflow would head-of-line
    block the connection — so send nothing and wait for the fast subflow.
    """

    def __init__(self, scaling_lambda: float = 1.0, recorder=None):
        super().__init__(recorder=recorder)
        if scaling_lambda <= 0:
            raise ValueError(
                f"scaling lambda must be positive, got {scaling_lambda}"
            )
        self.scaling_lambda = scaling_lambda

    def _pick(self, available, connection):
        if not available:
            return None
        fastest_overall = min(
            connection.subflows, key=lambda sf: sf.smoothed_rtt_s
        )
        candidate = min(available, key=lambda sf: sf.smoothed_rtt_s)
        if candidate is fastest_overall:
            return candidate
        # Only slower subflow(s) have space: estimate blocking.
        rtt_slow = candidate.smoothed_rtt_s
        rtt_fast = max(fastest_overall.smoothed_rtt_s, 1e-6)
        # Segments the fast subflow could send while the slow segment is in
        # flight (its current window, replayed rtt_slow/rtt_fast times, plus
        # one growth increment per fast RTT).
        rounds = rtt_slow / rtt_fast
        fast_burst = fastest_overall.cc.cwnd * rounds + rounds
        window_left = connection.send_window_left()
        if window_left < self.scaling_lambda * fast_burst + 1.0:
            return None  # would block: wait for the fast path instead
        return candidate


class SatAware(Blest):
    """BLEST plus awareness of the LEO reconfiguration grid.

    The paper's Section 6 future work: "considering the specific usage
    scenarios and characteristics of the two network types, further
    improvements can be made to future MPTCP scheduler design, such as
    reducing throughput fluctuations."  Starlink reassigns satellites on a
    15 s grid; data put on the satellite subflow just before a boundary is
    the data most likely to be stranded by the switch gap.  This scheduler
    therefore refuses to schedule *new* data on satellite subflows inside a
    guard window around each boundary, steering it to the cellular subflow
    instead (satellite-side loss recovery continues normally).
    """

    def __init__(
        self,
        satellite_subflow_ids: frozenset[int] = frozenset({0}),
        interval_s: float = 15.0,
        guard_before_s: float = 0.8,
        guard_after_s: float = 0.7,
        scaling_lambda: float = 1.0,
        recorder=None,
    ):
        super().__init__(scaling_lambda=scaling_lambda, recorder=recorder)
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if guard_before_s + guard_after_s >= interval_s:
            raise ValueError("guard windows cannot cover the whole interval")
        self.satellite_subflow_ids = frozenset(satellite_subflow_ids)
        self.interval_s = interval_s
        self.guard_before_s = guard_before_s
        self.guard_after_s = guard_after_s

    def _in_guard_window(self, now_s: float) -> bool:
        phase = now_s % self.interval_s
        return (
            phase >= self.interval_s - self.guard_before_s
            or phase <= self.guard_after_s
        )

    def _pick(self, available, connection):
        if self._in_guard_window(connection.sim.now):
            terrestrial = [
                sf
                for sf in available
                if sf.subflow_id not in self.satellite_subflow_ids
            ]
            if terrestrial:
                return super()._pick(terrestrial, connection)
            return None  # hold rather than feed the closing window
        return super()._pick(available, connection)


def make_scheduler(name: str, recorder=None) -> Scheduler:
    """Factory: ``"blest"`` (kernel default), ``"minrtt"``, ``"roundrobin"``,
    or ``"sataware"`` (our LEO-aware extension)."""
    table = {
        "blest": Blest,
        "minrtt": MinRtt,
        "roundrobin": RoundRobin,
        "sataware": SatAware,
    }
    if name not in table:
        raise KeyError(f"unknown scheduler {name!r}; options: {sorted(table)}")
    return table[name](recorder=recorder)
