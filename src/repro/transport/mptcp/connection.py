"""MPTCP connection: subflows, data-level sequencing, shared receive buffer.

The pieces that matter for the paper's Section 6 findings:

* each subflow is a full TCP sender (own congestion window, RTT estimate,
  loss recovery) on its own path;
* data segments carry a *data sequence number*; the receiver reassembles
  the data stream across subflows in a **shared, bounded** meta buffer;
* the advertised window on every ACK is the meta buffer's free space, so a
  loss on one subflow makes in-flight data from the other subflow pile up
  in the meta buffer until the hole is repaired — head-of-line blocking.
  With default-sized buffers this throttles MPTCP to "marginal gains"
  (sometimes collapse); with buffers >10x BDP the two paths aggregate;
* on a subflow retransmission timeout its unacknowledged data is
  *reinjected* onto the other subflows, the standard MPTCP remedy for a
  stalled path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import ACK_SIZE_BYTES, Packet
from repro.net.path import Path
from repro.net.simulator import Simulator
from repro.transport.mptcp.scheduler import Scheduler, make_scheduler
from repro.transport.tcp import TcpSender


class Subflow(TcpSender):
    """One MPTCP subflow: TCP mechanics, data assigned by the connection."""

    def __init__(
        self,
        connection: "MptcpConnection",
        subflow_id: int,
        path: Path,
        segment_bytes: int,
        congestion: str,
    ):
        super().__init__(
            connection.sim,
            path,
            flow_id=subflow_id,
            segment_bytes=segment_bytes,
            congestion=congestion,
            receiver_buffer_segments=connection.buffer_segments,
        )
        self.connection = connection
        self.subflow_id = subflow_id
        #: subflow seq -> data seq for everything sent and not yet acked.
        self._data_map: dict[int, int] = {}

    # -- hooks into the TcpSender machinery --------------------------------

    def has_space(self) -> bool:
        """Congestion/receive window space for one more segment."""
        if not self._started:
            return False
        occupancy = self._pipe() if self.in_recovery else self.inflight
        return occupancy < self._window()

    def send_one(self) -> None:
        """Transmit the next data segment (called by the connection pump)."""
        self._transmit(self.snd_nxt, retransmit=False)
        self.snd_nxt += 1
        self._arm_rto()

    def _send_new_data(self, budget: int, occupancy: int) -> None:
        # New-data transmission is centralized in the connection's pump so
        # the scheduler sees every opportunity.  Subflow-level hole
        # retransmissions stay local (handled by _send_retransmissions).
        self.connection.pump()

    def _transmit(self, seq: int, retransmit: bool) -> None:
        if retransmit:
            data_seq = self._data_map.get(seq)
            if data_seq is None:
                # The data-level ACK already covered it (e.g. the segment
                # was reinjected and delivered via another subflow); send a
                # subflow-level filler to keep subflow sequencing coherent.
                data_seq = -1
        else:
            data_seq = self.connection.assign_data_seq()
            self._data_map[seq] = data_seq
        self.stats.segments_sent += 1
        if retransmit:
            self.stats.retransmissions += 1
        self.path.send_data(
            Packet(
                flow_id=self.flow_id,
                size_bytes=self.segment_bytes,
                seq=seq,
                data_seq=data_seq if data_seq is not None else -1,
                sent_time_s=self.sim.now,
                retransmit=retransmit,
            )
        )

    def on_ack(self, packet: Packet) -> None:
        old_una = self.snd_una
        self.connection.on_meta_ack(packet)
        super().on_ack(packet)
        if self.snd_una > old_una:
            for seq in range(old_una, self.snd_una):
                self._data_map.pop(seq, None)
            self.connection.pump()

    def _on_rto(self) -> None:
        had_inflight = self.inflight > 0
        super()._on_rto()
        if had_inflight:
            # Reinjection: hand this subflow's stuck data to the others.
            stuck = [
                self._data_map[seq]
                for seq in range(self.snd_una + 1, self.snd_nxt)
                if seq in self._data_map
            ]
            self.connection.reinject(stuck)

    def outstanding_data_seqs(self) -> list[int]:
        """Data seqs currently mapped onto this subflow (unacked)."""
        return sorted(self._data_map.values())


@dataclass
class MptcpStats:
    """Connection-level accounting."""

    segments_sent: int = 0
    retransmissions: int = 0
    reinjections: int = 0

    @property
    def retransmission_rate(self) -> float:
        if self.segments_sent == 0:
            return 0.0
        return self.retransmissions / self.segments_sent


class MptcpConnection:
    """Sender side of an MPTCP connection over multiple paths."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: str | Scheduler = "blest",
        buffer_segments: int = 4096,
        segment_bytes: int = 1500,
        congestion: str = "cubic",
    ):
        if buffer_segments < 1:
            raise ValueError("meta buffer must hold at least one segment")
        self.sim = sim
        self.scheduler: Scheduler = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.buffer_segments = buffer_segments
        self.segment_bytes = segment_bytes
        self.congestion = congestion
        self.subflows: list[Subflow] = []
        self._next_data_seq = 0
        self._data_ack = 0  # highest cumulative data-level ACK seen
        self._meta_rwnd = buffer_segments
        self._reinjection_queue: list[int] = []
        self._reinjected: set[int] = set()
        self._pumping = False
        self.stats = MptcpStats()

    # -- setup -------------------------------------------------------------

    def add_subflow(self, path: Path, receiver: "MptcpReceiver") -> Subflow:
        """Create a subflow over ``path``, wired to the shared receiver."""
        subflow = Subflow(
            self,
            subflow_id=len(self.subflows),
            path=path,
            segment_bytes=self.segment_bytes,
            congestion=self.congestion,
        )
        self.subflows.append(subflow)
        receiver.attach_subflow(subflow.subflow_id, path)
        path.connect(
            lambda pkt, sid=subflow.subflow_id: receiver.on_data(sid, pkt),
            subflow.on_ack,
        )
        return subflow

    def start(self) -> None:
        if not self.subflows:
            raise RuntimeError("start() with no subflows")
        for subflow in self.subflows:
            subflow._started = True
        self.pump()

    # -- data-level sequencing ----------------------------------------------

    def assign_data_seq(self) -> int:
        """Next data segment for a subflow: reinjections first, then new."""
        if self._reinjection_queue:
            return self._reinjection_queue.pop(0)
        seq = self._next_data_seq
        self._next_data_seq += 1
        return seq

    def can_assign_data(self) -> bool:
        if self._reinjection_queue:
            return True
        return self.send_window_left() > 0

    def send_window_left(self) -> float:
        """Segments still allowed by the data-level receive window."""
        return self._data_ack + self._meta_rwnd - self._next_data_seq

    def reinject(self, data_seqs: list[int]) -> None:
        """Queue stuck data for transmission on other subflows."""
        for ds in data_seqs:
            if ds >= self._data_ack and ds not in self._reinjected and ds >= 0:
                self._reinjection_queue.append(ds)
                self._reinjected.add(ds)
                self.stats.reinjections += 1
        self.pump()

    def on_meta_ack(self, packet: Packet) -> None:
        """Track the data-level ACK and shared window from any subflow ACK."""
        if packet.data_ack > self._data_ack:
            self._data_ack = packet.data_ack
            self._reinjected = {
                ds for ds in self._reinjected if ds >= self._data_ack
            }
            self._reinjection_queue = [
                ds for ds in self._reinjection_queue if ds >= self._data_ack
            ]
        self._meta_rwnd = max(packet.rwnd, 1)

    # -- scheduling ----------------------------------------------------------

    def pump(self) -> None:
        """Send as much new data as windows and the scheduler allow."""
        if self._pumping:
            return  # transmit paths re-enter via _try_send; flatten it
        self._pumping = True
        try:
            while self.can_assign_data():
                available = [sf for sf in self.subflows if sf.has_space()]
                if not available:
                    break
                chosen = self.scheduler.pick(available, self)
                if chosen is None:
                    break  # scheduler elects to wait (BLEST blocking guard)
                chosen.send_one()
        finally:
            self._pumping = False
        self._refresh_stats()

    def _refresh_stats(self) -> None:
        self.stats.segments_sent = sum(
            sf.stats.segments_sent for sf in self.subflows
        )
        self.stats.retransmissions = sum(
            sf.stats.retransmissions for sf in self.subflows
        )


class MptcpReceiver:
    """Receiver side: per-subflow ACK state + shared meta reassembly buffer."""

    def __init__(
        self,
        sim: Simulator,
        buffer_segments: int,
        segment_bytes: int = 1500,
    ):
        self.sim = sim
        self.buffer_segments = buffer_segments
        self.segment_bytes = segment_bytes
        self.meta_rcv_next = 0
        self._meta_ooo: set[int] = set()
        self.bytes_received = 0
        self.delivery_log: list[tuple[float, int]] = []
        self._paths: dict[int, Path] = {}
        self._subflow_rcv_next: dict[int, int] = {}
        self._subflow_ooo: dict[int, set[int]] = {}

    def attach_subflow(self, subflow_id: int, path: Path) -> None:
        self._paths[subflow_id] = path
        self._subflow_rcv_next[subflow_id] = 0
        self._subflow_ooo[subflow_id] = set()

    @property
    def advertised_window(self) -> int:
        """Free space in the shared meta buffer (segments)."""
        return max(0, self.buffer_segments - len(self._meta_ooo))

    def on_data(self, subflow_id: int, packet: Packet) -> None:
        """Ingest a data segment from one subflow; ACK at both levels."""
        self._ingest_meta(packet.data_seq)
        self._ack_subflow(subflow_id, packet)

    def _ingest_meta(self, data_seq: int) -> None:
        if data_seq < 0 or data_seq < self.meta_rcv_next:
            return  # filler retransmit or duplicate delivery
        if data_seq == self.meta_rcv_next:
            delivered = 1
            self.meta_rcv_next += 1
            while self.meta_rcv_next in self._meta_ooo:
                self._meta_ooo.discard(self.meta_rcv_next)
                self.meta_rcv_next += 1
                delivered += 1
            self.bytes_received += delivered * self.segment_bytes
            self.delivery_log.append((self.sim.now, delivered))
        elif len(self._meta_ooo) < self.buffer_segments:
            self._meta_ooo.add(data_seq)
        # else: buffer overrun (sender violated the window) — drop.

    def _ack_subflow(self, subflow_id: int, packet: Packet) -> None:
        rcv_next = self._subflow_rcv_next[subflow_id]
        ooo = self._subflow_ooo[subflow_id]
        seq = packet.seq
        if seq == rcv_next:
            rcv_next += 1
            while rcv_next in ooo:
                ooo.discard(rcv_next)
                rcv_next += 1
        elif seq > rcv_next:
            ooo.add(seq)
        self._subflow_rcv_next[subflow_id] = rcv_next

        self._paths[subflow_id].send_ack(
            Packet(
                flow_id=subflow_id,
                size_bytes=ACK_SIZE_BYTES,
                ack=rcv_next,
                data_ack=self.meta_rcv_next,
                is_ack=True,
                rwnd=self.advertised_window,
                timestamp_echo_s=packet.sent_time_s,
                sent_time_s=self.sim.now,
            )
        )


def open_mptcp_connection(
    sim: Simulator,
    paths: list[Path],
    scheduler: str | Scheduler = "blest",
    buffer_segments: int = 4096,
    segment_bytes: int = 1500,
    congestion: str = "cubic",
) -> tuple[MptcpConnection, MptcpReceiver]:
    """Create an MPTCP connection with one subflow per path.

    The returned connection still needs :meth:`MptcpConnection.start`.
    """
    if not paths:
        raise ValueError("need at least one path")
    connection = MptcpConnection(
        sim,
        scheduler=scheduler,
        buffer_segments=buffer_segments,
        segment_bytes=segment_bytes,
        congestion=congestion,
    )
    receiver = MptcpReceiver(sim, buffer_segments, segment_bytes)
    for path in paths:
        connection.add_subflow(path, receiver)
    return connection, receiver
