"""UDP constant-bit-rate flows (iPerf ``-u`` semantics).

The sender paces datagrams at a target rate regardless of loss; the
receiver counts arrivals.  Delivered rate vs offered rate gives the UDP
loss figure, and the delivered rate *is* the paper's "UDP throughput" —
effectively the available bandwidth at each instant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet
from repro.net.path import Path
from repro.net.simulator import Simulator


@dataclass
class UdpStats:
    """Both-ends accounting for one UDP test."""

    datagrams_sent: int = 0
    datagrams_received: int = 0
    bytes_received: int = 0

    @property
    def loss_rate(self) -> float:
        if self.datagrams_sent == 0:
            return 0.0
        return 1.0 - self.datagrams_received / self.datagrams_sent


class UdpReceiver:
    """Counts datagrams; logs deliveries for throughput series."""

    def __init__(self, sim: Simulator, stats: UdpStats, segment_bytes: int):
        self.sim = sim
        self.stats = stats
        self.segment_bytes = segment_bytes
        self.delivery_log: list[tuple[float, int]] = []

    def on_data(self, packet: Packet) -> None:
        self.stats.datagrams_received += 1
        self.stats.bytes_received += packet.size_bytes
        self.delivery_log.append((self.sim.now, 1))


class UdpSender:
    """Paces datagrams at ``target_mbps`` until stopped."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        target_mbps: float,
        flow_id: int = 0,
        segment_bytes: int = 1500,
        duration_s: float | None = None,
    ):
        if target_mbps <= 0:
            raise ValueError(f"target rate must be positive, got {target_mbps}")
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.segment_bytes = segment_bytes
        self.interval_s = segment_bytes * 8.0 / (target_mbps * 1e6)
        self.stats = UdpStats()
        self._stop_at = None if duration_s is None else sim.now + duration_s

    def start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        self.stats.datagrams_sent += 1
        self.path.send_data(
            Packet(
                flow_id=self.flow_id,
                size_bytes=self.segment_bytes,
                seq=self.stats.datagrams_sent - 1,
                sent_time_s=self.sim.now,
            )
        )
        self.sim.schedule(self.interval_s, self._send_next)

    def on_ack(self, packet: Packet) -> None:  # pragma: no cover - no ACKs
        """UDP has no ACKs; present for Path wiring symmetry."""


def open_udp_flow(
    sim: Simulator,
    path: Path,
    target_mbps: float,
    flow_id: int = 0,
    segment_bytes: int = 1500,
    duration_s: float | None = None,
) -> tuple[UdpSender, UdpReceiver]:
    """Create a wired UDP sender/receiver pair over ``path``."""
    sender = UdpSender(
        sim,
        path,
        target_mbps,
        flow_id=flow_id,
        segment_bytes=segment_bytes,
        duration_s=duration_s,
    )
    receiver = UdpReceiver(sim, sender.stats, segment_bytes)
    path.connect(receiver.on_data, sender.on_ack)
    return sender, receiver
