"""Packet-level TCP: SACK-based loss recovery over the simulated path.

A window-based sender (congestion window from :mod:`repro.transport.
congestion`, receive window advertised by the peer) with RTT estimation
(RFC 6298), SACK scoreboard recovery (RFC 6675-style pipe accounting),
HyStart-like slow-start exit on delay inflation, and exponential-backoff
RTO — the recovery machinery a Linux v5.19 sender (the paper's kernel)
actually has.  The receiver delivers in-order data to the application
immediately (iPerf semantics) and buffers out-of-order segments; the
advertised window is the free buffer, which is what the paper's OS buffer
tuning (Section 6) manipulates.

Sequence numbers count *segments*, not bytes; ``segment_bytes`` scales a
segment to real bytes.  Using segments keeps the hot path cheap while
preserving window dynamics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import ACK_SIZE_BYTES, Packet
from repro.net.path import Path
from repro.net.simulator import EventHandle, Simulator
from repro.transport.congestion import CongestionControl, make_congestion_control

#: RFC 6298 constants, with the maximum capped well below the RFC's 60 s:
#: modern senders (tail-loss probes, F-RTO) re-probe a dead path within a
#: few seconds, and the paper's iPerf tests visibly resume that fast after
#: Starlink outages.
_RTO_MIN_S = 0.2
_RTO_MAX_S = 8.0
_DUPACK_THRESHOLD = 3
#: HyStart-like delay threshold: leave slow start when SRTT inflates past
#: this multiple of the minimum observed RTT.
_HYSTART_RTT_FACTOR = 1.4


@dataclass
class TcpStats:
    """Sender-side accounting, mirroring what tcpdump gives the paper."""

    segments_sent: int = 0
    retransmissions: int = 0
    bytes_acked: int = 0
    rto_events: int = 0
    fast_retransmits: int = 0
    rtt_samples: list[float] = field(default_factory=list)

    @property
    def retransmission_rate(self) -> float:
        """Retransmitted fraction of all sent segments (Figure 5 metric)."""
        if self.segments_sent == 0:
            return 0.0
        return self.retransmissions / self.segments_sent


class TcpReceiver:
    """Receiving endpoint: cumulative ACKs + SACK + bounded reorder buffer."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        flow_id: int,
        segment_bytes: int,
        buffer_segments: int,
    ):
        if buffer_segments < 1:
            raise ValueError("buffer must hold at least one segment")
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.segment_bytes = segment_bytes
        self.buffer_segments = buffer_segments
        self.rcv_next = 0
        self._out_of_order: set[int] = set()
        self.bytes_received = 0
        #: (time, segments) tuples of in-order deliveries for throughput series.
        self.delivery_log: list[tuple[float, int]] = []

    @property
    def advertised_window(self) -> int:
        """Free buffer space in segments."""
        return max(0, self.buffer_segments - len(self._out_of_order))

    def on_data(self, packet: Packet) -> None:
        """Handle an arriving data segment and emit an ACK."""
        seq = packet.seq
        delivered = 0
        sack_start = sack_end = -1
        if seq == self.rcv_next:
            delivered = 1
            self.rcv_next += 1
            while self.rcv_next in self._out_of_order:
                self._out_of_order.discard(self.rcv_next)
                self.rcv_next += 1
                delivered += 1
        elif seq > self.rcv_next:
            if (
                len(self._out_of_order) < self.buffer_segments
                and seq < self.rcv_next + self.buffer_segments
            ):
                self._out_of_order.add(seq)
                sack_start, sack_end = self._sack_block(seq)
            # else: no buffer space — segment dropped, sender will recover.
        # seq < rcv_next: duplicate of already-delivered data; just re-ACK.

        if delivered:
            self.bytes_received += delivered * self.segment_bytes
            self.delivery_log.append((self.sim.now, delivered))

        self.path.send_ack(
            Packet(
                flow_id=self.flow_id,
                size_bytes=ACK_SIZE_BYTES,
                ack=self.rcv_next,
                is_ack=True,
                rwnd=self.advertised_window,
                timestamp_echo_s=packet.sent_time_s,
                sent_time_s=self.sim.now,
                sack_start=sack_start,
                sack_end=sack_end,
            )
        )

    def _sack_block(self, seq: int) -> tuple[int, int]:
        """Contiguous out-of-order run containing ``seq`` ([start, end))."""
        start = seq
        while start - 1 in self._out_of_order:
            start -= 1
        end = seq + 1
        while end in self._out_of_order:
            end += 1
        return start, end


class TcpSender:
    """Sending endpoint: window management and SACK-based loss recovery."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        flow_id: int = 0,
        segment_bytes: int = 1500,
        congestion: str | CongestionControl = "cubic",
        receiver_buffer_segments: int = 1 << 20,
        total_segments: int | None = None,
    ):
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.segment_bytes = segment_bytes
        self.cc: CongestionControl = (
            make_congestion_control(congestion)
            if isinstance(congestion, str)
            else congestion
        )
        self.stats = TcpStats()
        self.total_segments = total_segments

        self.snd_una = 0
        self.snd_nxt = 0
        self._rwnd = receiver_buffer_segments
        self._dupacks = 0
        self._recover = -1  # highest seq outstanding when recovery began
        # SACK scoreboard.
        self._sacked: set[int] = set()
        self._rtx_done: set[int] = set()
        self._fack = 0  # one past the highest SACKed segment
        self._hole_cursor = 0  # monotone scan position for hole search
        #: After an RTO everything below this is presumed lost (RFC 5681
        #: post-timeout go-back-N) unless SACKed in the meantime.
        self._high_lost = 0
        self._srtt: float | None = None
        self._min_rtt = float("inf")
        self._rttvar = 0.0
        self._rto = 1.0
        self._rto_timer: EventHandle | None = None
        self._last_progress_s = 0.0
        self._started = False

    # -- wiring ----------------------------------------------------------

    def start(self) -> None:
        """Open the flood gates (connection setup is not modeled)."""
        self._started = True
        self._last_progress_s = self.sim.now
        self._try_send()

    @property
    def in_recovery(self) -> bool:
        return self._recover >= 0 and self.snd_una < self._recover

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def smoothed_rtt_s(self) -> float:
        """Current SRTT, or the initial RTO guess before any sample."""
        return self._srtt if self._srtt is not None else 1.0

    # -- sending ---------------------------------------------------------

    def _window(self) -> int:
        return max(int(min(self.cc.cwnd, self._rwnd)), 1)

    def _pipe(self) -> int:
        """RFC 6675-flavored estimate of segments actually in the network.

        In-flight minus SACKed minus presumed-lost (holes below the highest
        SACK that we have not yet retransmitted), plus retransmissions that
        are themselves still in flight (approximated by ``_rtx_done``).
        """
        base = self.inflight - len(self._sacked)
        lost = self._lost_count()
        return max(0, base - lost + len(self._rtx_done))

    def _loss_bound(self) -> int:
        """One past the highest segment currently presumed lost."""
        return max(self._fack, self._high_lost)

    def _lost_count(self) -> int:
        bound = self._loss_bound()
        if bound <= self.snd_una:
            return 0
        covered = len(self._sacked) + sum(
            1
            for s in self._rtx_done
            if s not in self._sacked and s < bound
        )
        return max(0, (bound - self.snd_una) - covered)

    def _next_hole(self) -> int | None:
        """Lowest presumed-lost segment not yet retransmitted.

        The scan cursor only moves forward within a recovery episode;
        it is rewound on RTO (where ``_rtx_done`` is cleared).
        """
        bound = self._loss_bound()
        self._hole_cursor = max(self._hole_cursor, self.snd_una)
        while self._hole_cursor < bound:
            seq = self._hole_cursor
            if seq not in self._sacked and seq not in self._rtx_done:
                return seq
            self._hole_cursor += 1
        return None

    def _new_data_allowed(self) -> bool:
        if self.total_segments is not None and self.snd_nxt >= self.total_segments:
            return False
        return self.snd_nxt < self.snd_una + self._window()

    def _try_send(self) -> None:
        """Send retransmissions (holes first) and then new data."""
        if not self._started:
            return
        budget = self._window()
        occupancy = self._pipe() if self.in_recovery else self.inflight
        occupancy = self._send_retransmissions(budget, occupancy)
        self._send_new_data(budget, occupancy)
        self._arm_rto()

    def _send_retransmissions(self, budget: int, occupancy: int) -> int:
        """Retransmit presumed-lost holes up to the window budget.

        The pipe estimate is computed once by the caller and maintained
        incrementally (+1 per transmission) — recomputing it per packet is
        quadratic in the window during big recoveries.
        """
        if not self.in_recovery:
            return occupancy
        while occupancy < budget:
            hole = self._next_hole()
            if hole is None:
                break
            self._transmit(hole, retransmit=True)
            self._rtx_done.add(hole)
            occupancy += 1
        return occupancy

    def _send_new_data(self, budget: int, occupancy: int) -> None:
        """Fill the remaining window with new segments (overridden by
        MPTCP subflows, where the connection's scheduler assigns data)."""
        while self._new_data_allowed() and occupancy < budget:
            self._transmit(self.snd_nxt, retransmit=False)
            self.snd_nxt += 1
            occupancy += 1

    def _transmit(self, seq: int, retransmit: bool) -> None:
        self.stats.segments_sent += 1
        if retransmit:
            self.stats.retransmissions += 1
        self.path.send_data(
            Packet(
                flow_id=self.flow_id,
                size_bytes=self.segment_bytes,
                seq=seq,
                sent_time_s=self.sim.now,
                retransmit=retransmit,
            )
        )

    # -- ACK processing --------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        """Process a (possibly duplicate, possibly SACK-bearing) ACK."""
        self._rwnd = max(packet.rwnd, 1)
        if packet.timestamp_echo_s >= 0:
            self._rtt_sample(self.sim.now - packet.timestamp_echo_s)
        if packet.sack_start >= 0:
            for seq in range(packet.sack_start, packet.sack_end):
                if seq >= self.snd_una:
                    self._sacked.add(seq)
            self._fack = max(self._fack, packet.sack_end)
            self._last_progress_s = self.sim.now  # SACKs are forward progress

        if packet.ack > self.snd_una:
            self._last_progress_s = self.sim.now
            newly_acked = packet.ack - self.snd_una
            self.snd_una = packet.ack
            self.stats.bytes_acked += newly_acked * self.segment_bytes
            self._dupacks = 0
            self._prune_scoreboard()
            if not self.in_recovery:
                self._recover = -1
            # Window growth continues on every ACK advance: after an RTO the
            # sender is in slow start (not fast recovery), and freezing the
            # window until the whole pre-loss flight is re-acked would turn
            # every outage into a multi-second crawl.
            self.cc.on_ack(newly_acked, self.smoothed_rtt_s, self.sim.now)
            self._reset_rto()
            self._try_send()
        elif packet.ack == self.snd_una and self.inflight > 0:
            self._dupacks += 1
            if not self.in_recovery and (
                self._dupacks >= _DUPACK_THRESHOLD
                or len(self._sacked) >= _DUPACK_THRESHOLD
            ):
                self._enter_recovery()
            elif self.in_recovery:
                self._try_send()

    def _prune_scoreboard(self) -> None:
        self._sacked = {s for s in self._sacked if s >= self.snd_una}
        self._rtx_done = {s for s in self._rtx_done if s >= self.snd_una}
        if not self._sacked:
            self._fack = self.snd_una

    def _enter_recovery(self) -> None:
        self._recover = self.snd_nxt
        self._hole_cursor = self.snd_una
        self.cc.on_loss(self.sim.now)
        self.stats.fast_retransmits += 1
        if not self._sacked:
            # Pure-dupack entry (ACK SACK info lost): assume snd_una is lost.
            self._transmit(self.snd_una, retransmit=True)
            self._rtx_done.add(self.snd_una)
        self._try_send()

    # -- RTT / RTO -------------------------------------------------------

    def _rtt_sample(self, rtt_s: float) -> None:
        if rtt_s <= 0:
            return
        self.stats.rtt_samples.append(rtt_s)
        self._min_rtt = min(self._min_rtt, rtt_s)
        if self._srtt is None:
            self._srtt = rtt_s
            self._rttvar = rtt_s / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt_s)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt_s
        self._rto = min(
            max(self._srtt + 4.0 * self._rttvar, _RTO_MIN_S), _RTO_MAX_S
        )
        # HyStart-like safeguard: queueing delay while still in slow start
        # means the pipe is full — stop doubling before a mega-burst drop.
        if (
            self.cc.cwnd < self.cc.ssthresh
            and self._srtt > _HYSTART_RTT_FACTOR * self._min_rtt
        ):
            self.cc.ssthresh = self.cc.cwnd

    def _arm_rto(self) -> None:
        if self._rto_timer is None and self.inflight > 0:
            self._rto_timer = self.sim.schedule(self._rto, self._on_rto)

    def _reset_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        self._arm_rto()

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.inflight == 0:
            return
        # The timer is restarted lazily: if there has been progress since it
        # was armed, push it out instead of declaring a timeout.
        elapsed = self.sim.now - self._last_progress_s
        if elapsed < self._rto - 1e-9:
            self._rto_timer = self.sim.schedule(
                max(self._rto - elapsed, 1e-3), self._on_rto
            )
            return
        self._last_progress_s = self.sim.now
        self.stats.rto_events += 1
        self.cc.on_rto(self.sim.now, inflight=self.inflight)
        self._recover = self.snd_nxt
        self._dupacks = 0
        self._rtx_done.clear()
        self._hole_cursor = self.snd_una
        self._high_lost = self.snd_nxt
        self._rto = min(self._rto * 2.0, _RTO_MAX_S)
        self._transmit(self.snd_una, retransmit=True)
        self._rtx_done.add(self.snd_una)
        self._arm_rto()


def open_tcp_connection(
    sim: Simulator,
    path: Path,
    flow_id: int = 0,
    segment_bytes: int = 1500,
    congestion: str = "cubic",
    receiver_buffer_segments: int = 1 << 20,
    total_segments: int | None = None,
) -> tuple[TcpSender, TcpReceiver]:
    """Create a wired sender/receiver pair over ``path``.

    The returned sender still needs :meth:`TcpSender.start`.
    """
    receiver = TcpReceiver(
        sim, path, flow_id, segment_bytes, receiver_buffer_segments
    )
    sender = TcpSender(
        sim,
        path,
        flow_id=flow_id,
        segment_bytes=segment_bytes,
        congestion=congestion,
        receiver_buffer_segments=receiver_buffer_segments,
        total_segments=total_segments,
    )
    path.connect(receiver.on_data, sender.on_ack)
    return sender, receiver
