"""Transport protocols implemented packet-by-packet on the simulator."""

from repro.transport.congestion import (
    CongestionControl,
    Cubic,
    Reno,
    make_congestion_control,
)
from repro.transport.fec import (
    FecConfig,
    FecReceiver,
    FecSender,
    FecStats,
    open_fec_flow,
)
from repro.transport.parallel import ParallelStats, ParallelTcp
from repro.transport.tcp import TcpReceiver, TcpSender, TcpStats, open_tcp_connection
from repro.transport.udp import UdpReceiver, UdpSender, UdpStats, open_udp_flow

__all__ = [
    "CongestionControl",
    "Cubic",
    "FecConfig",
    "FecReceiver",
    "FecSender",
    "FecStats",
    "ParallelStats",
    "ParallelTcp",
    "Reno",
    "TcpReceiver",
    "TcpSender",
    "TcpStats",
    "UdpReceiver",
    "UdpSender",
    "UdpStats",
    "make_congestion_control",
    "open_fec_flow",
    "open_tcp_connection",
    "open_udp_flow",
]
