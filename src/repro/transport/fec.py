"""Forward error correction over UDP — the paper's suggested remedy.

Section 1: Starlink's elevated packet loss "calls for better congestion
control or Forward Error Correction (FEC) algorithms tailored for such
characteristics."  This module implements a block FEC transport: the
sender groups ``k`` data segments into a block and appends ``r`` repair
segments (systematic erasure code — any ``k`` of the ``k+r`` segments
reconstruct the block, the property Reed-Solomon provides); the receiver
reconstructs blocks as segments arrive.

The transport is rate-based like iPerf UDP — FEC does not help a
congestion-collapsed sender, so the experiment pairs it with a fixed
sending rate just under capacity, the regime a rate-based video call or
QUIC-with-FEC stack would occupy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet
from repro.net.path import Path
from repro.net.simulator import Simulator


@dataclass(frozen=True)
class FecConfig:
    """Block code parameters."""

    data_segments: int = 20  # k
    repair_segments: int = 4  # r

    def __post_init__(self) -> None:
        if self.data_segments < 1:
            raise ValueError("need at least one data segment per block")
        if self.repair_segments < 0:
            raise ValueError("repair segment count cannot be negative")

    @property
    def block_size(self) -> int:
        return self.data_segments + self.repair_segments

    @property
    def overhead(self) -> float:
        """Fraction of sent bytes that are repair data."""
        return self.repair_segments / self.block_size


@dataclass
class FecStats:
    """Both-ends accounting for one FEC session."""

    segments_sent: int = 0
    segments_received: int = 0
    blocks_sent: int = 0
    blocks_recovered: int = 0  # complete after erasure repair
    blocks_intact: int = 0  # complete with no repair needed
    blocks_lost: int = 0  # unrecoverable (fewer than k arrived)
    data_bytes_delivered: int = 0

    @property
    def block_loss_rate(self) -> float:
        done = self.blocks_recovered + self.blocks_intact + self.blocks_lost
        if done == 0:
            return 0.0
        return self.blocks_lost / done


class FecReceiver:
    """Counts arrivals per block; a block completes at >= k segments."""

    def __init__(self, sim: Simulator, config: FecConfig, stats: FecStats,
                 segment_bytes: int):
        self.sim = sim
        self.config = config
        self.stats = stats
        self.segment_bytes = segment_bytes
        self._arrived: dict[int, int] = {}
        self._delivered: set[int] = set()
        self.delivery_log: list[tuple[float, int]] = []

    def on_data(self, packet: Packet) -> None:
        self.stats.segments_received += 1
        block_id = packet.seq // self.config.block_size
        count = self._arrived.get(block_id, 0) + 1
        self._arrived[block_id] = count
        if (
            count == self.config.data_segments
            and block_id not in self._delivered
        ):
            # Any k of the k+r symbols reconstruct the k data segments.
            self._delivered.add(block_id)
            self.stats.data_bytes_delivered += (
                self.config.data_segments * self.segment_bytes
            )
            self.delivery_log.append(
                (self.sim.now, self.config.data_segments)
            )

    def finalize(self, blocks_sent: int, exclude_tail: int = 8) -> None:
        """Classify sent blocks once the run ends.

        The last ``exclude_tail`` blocks are skipped: their segments may
        still be in flight when the run stops, which would misclassify
        them as losses.
        """
        for block_id in range(max(blocks_sent - exclude_tail, 0)):
            arrived = self._arrived.get(block_id, 0)
            if arrived >= self.config.block_size:
                self.stats.blocks_intact += 1
            elif block_id in self._delivered:
                self.stats.blocks_recovered += 1
            else:
                self.stats.blocks_lost += 1


class FecSender:
    """Paces ``k+r`` segments per block at a configured data rate."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        data_rate_mbps: float,
        config: FecConfig | None = None,
        segment_bytes: int = 1500,
        flow_id: int = 0,
    ):
        if data_rate_mbps <= 0:
            raise ValueError(f"data rate must be positive, got {data_rate_mbps}")
        self.sim = sim
        self.path = path
        self.config = config or FecConfig()
        self.segment_bytes = segment_bytes
        self.flow_id = flow_id
        self.stats = FecStats()
        # Wire rate includes the repair overhead.
        wire_rate = data_rate_mbps / (1.0 - self.config.overhead)
        self.interval_s = segment_bytes * 8.0 / (wire_rate * 1e6)
        self._next_seq = 0

    def start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        self.stats.segments_sent += 1
        if self._next_seq % self.config.block_size == 0:
            self.stats.blocks_sent += 1
        self.path.send_data(
            Packet(
                flow_id=self.flow_id,
                size_bytes=self.segment_bytes,
                seq=self._next_seq,
                sent_time_s=self.sim.now,
            )
        )
        self._next_seq += 1
        self.sim.schedule(self.interval_s, self._send_next)

    def on_ack(self, packet: Packet) -> None:  # pragma: no cover - no ACKs
        """FEC-over-UDP has no ACK channel; present for Path symmetry."""


def open_fec_flow(
    sim: Simulator,
    path: Path,
    data_rate_mbps: float,
    config: FecConfig | None = None,
    segment_bytes: int = 1500,
) -> tuple[FecSender, FecReceiver]:
    """Create a wired FEC sender/receiver pair over ``path``."""
    sender = FecSender(
        sim,
        path,
        data_rate_mbps,
        config=config,
        segment_bytes=segment_bytes,
    )
    receiver = FecReceiver(sim, sender.config, sender.stats, segment_bytes)
    path.connect(receiver.on_data, sender.on_ack)
    return sender, receiver
