"""Figure 3: throughput CDFs — TCP vs UDP, Roam vs Mobility, UL vs DL.

Three panels, all from the campaign dataset:

* (a) TCP vs UDP downlink: Starlink TCP collapses to ~1/5 of its UDP
  throughput (mean 29 vs 128 Mbps in the paper) while cellular TCP tracks
  cellular UDP;
* (b) Roam vs Mobility: Mobility roughly doubles Roam
  (median/mean 197/128 vs 93/63 Mbps);
* (c) Starlink uplink vs downlink: FDD gives the downlink ~10x the uplink.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.analysis import SummaryStats
from repro.core.dataset import CELLULAR_NETWORKS, DriveDataset
from repro.experiments.common import campaign_dataset


@dataclass
class CurveData:
    """One CDF curve: label + raw per-second samples."""

    label: str
    samples: list[float]

    @property
    def stats(self) -> SummaryStats:
        return SummaryStats.from_values(self.samples)


@dataclass
class Figure3Result:
    """All three panels."""

    panel_a: list[CurveData]  # MOB-TCP, Cellular-TCP, MOB-UDP, Cellular-UDP
    panel_b: list[CurveData]  # RM-UDP-DL, MOB-UDP-DL
    panel_c: list[CurveData]  # MOB-UDP-UL, MOB-UDP-DL

    def rows(self) -> list[tuple]:
        rows = []
        for panel, curves in (
            ("3a", self.panel_a),
            ("3b", self.panel_b),
            ("3c", self.panel_c),
        ):
            for curve in curves:
                s = curve.stats
                rows.append(
                    (panel, curve.label, round(s.mean, 1), round(s.median, 1))
                )
        return rows

    @property
    def tcp_udp_gap(self) -> float:
        """MOB TCP mean / MOB UDP mean (paper: ~1/5)."""
        tcp = self.panel_a[0].stats.mean
        udp = self.panel_a[2].stats.mean
        return tcp / udp if udp > 0 else float("nan")

    @property
    def mobility_over_roam(self) -> float:
        """MOB mean / RM mean, UDP downlink (paper: ~2x)."""
        rm = self.panel_b[0].stats.mean
        mob = self.panel_b[1].stats.mean
        return mob / rm if rm > 0 else float("nan")

    @property
    def downlink_over_uplink(self) -> float:
        """MOB DL mean / UL mean (paper: ~10x)."""
        ul = self.panel_c[0].stats.mean
        dl = self.panel_c[1].stats.mean
        return dl / ul if ul > 0 else float("nan")


def _pooled(dataset: DriveDataset, networks, protocol, direction) -> list[float]:
    values: list[float] = []
    for network in networks:
        values.extend(
            dataset.filter(
                network=network,
                protocol=protocol,
                direction=direction,
                parallel=1,
            ).throughput_samples()
        )
    return values


def run(scale: str = "medium", seed: int = 0) -> Figure3Result:
    """Regenerate Figure 3's data from the campaign dataset."""
    ds = campaign_dataset(scale, seed)
    cl = list(CELLULAR_NETWORKS)
    panel_a = [
        CurveData("MOB-TCP", _pooled(ds, ["MOB"], "tcp", "dl")),
        CurveData("Cellular-TCP", _pooled(ds, cl, "tcp", "dl")),
        CurveData("MOB-UDP", _pooled(ds, ["MOB"], "udp", "dl")),
        CurveData("Cellular-UDP", _pooled(ds, cl, "udp", "dl")),
    ]
    panel_b = [
        CurveData("RM-UDP-DL", _pooled(ds, ["RM"], "udp", "dl")),
        CurveData("MOB-UDP-DL", _pooled(ds, ["MOB"], "udp", "dl")),
    ]
    panel_c = [
        CurveData("MOB-UDP-UL", _pooled(ds, ["MOB"], "udp", "ul")),
        CurveData("MOB-UDP-DL", _pooled(ds, ["MOB"], "udp", "dl")),
    ]
    for curves in (panel_a, panel_b, panel_c):
        for curve in curves:
            if not curve.samples:
                raise RuntimeError(
                    f"campaign produced no samples for {curve.label}"
                )
    return Figure3Result(panel_a=panel_a, panel_b=panel_b, panel_c=panel_c)
