"""Figure 7: TCP parallelism gains (1, 4, 8 connections).

The paper: parallel connections raise downlink throughput on both network
types, but far more on Starlink (Roam) — >50 % with 4 connections and
>130 % with 8 — because independent windows contain the damage of Starlink's
bursty loss.  Regenerated with the packet-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import collect_conditions
from repro.core.analysis import improvement_percent
from repro.tools.iperf import run_tcp_test

PARALLELISM_LEVELS = (1, 4, 8)


@dataclass
class ParallelismRow:
    """Throughput at each parallelism level for one network."""

    network: str
    throughput_by_level: dict[int, float]

    def improvement(self, level: int) -> float:
        """Percent improvement of N connections over 1 (the figure's bars)."""
        return improvement_percent(
            self.throughput_by_level[1], self.throughput_by_level[level]
        )


@dataclass
class Figure7Result:
    rows_by_network: list[ParallelismRow]

    def rows(self) -> list[tuple]:
        out = []
        for row in self.rows_by_network:
            for level in PARALLELISM_LEVELS[1:]:
                out.append(
                    (
                        row.network,
                        f"{level}P",
                        round(row.throughput_by_level[level], 1),
                        round(row.improvement(level), 1),
                    )
                )
        return out

    def row(self, network: str) -> ParallelismRow:
        for row in self.rows_by_network:
            if row.network == network:
                return row
        raise KeyError(network)


def run(
    duration_s: int = 120,
    seed: int = 3,
    segment_bytes: int = 6000,
    networks: tuple[str, ...] = ("RM", "VZ"),
    repeats: int = 2,
) -> Figure7Result:
    """Regenerate Figure 7: parallel TCP downloads per network.

    The paper uses Roam for the Starlink side and cellular carriers for the
    comparison; ``repeats`` averages over seeds to steady the estimate.
    """
    traces = collect_conditions(duration_s=duration_s, seed=seed)
    rows = []
    for network in networks:
        by_level: dict[int, float] = {}
        for level in PARALLELISM_LEVELS:
            total = 0.0
            for rep in range(repeats):
                result = run_tcp_test(
                    traces[network],
                    duration_s=float(duration_s),
                    parallel=level,
                    segment_bytes=segment_bytes,
                    seed=seed + 1000 * rep,
                )
                total += result.throughput_mbps
            by_level[level] = total / repeats
        rows.append(
            ParallelismRow(network=network, throughput_by_level=by_level)
        )
    return Figure7Result(rows_by_network=rows)
