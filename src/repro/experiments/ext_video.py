"""Extension experiment: does each network sustain 1080p video in motion?

Quantifies the paper's Roam cost-benefit claim (Section 4.1): "the network
requirements of most applications such as 1080P video streaming can
already be met by Roam."  A buffer-based ABR player streams over each
network's campaign throughput samples; the verdict is time-at-HD and
rebuffering per network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.video import VideoVerdict, evaluate_network
from repro.core.dataset import NETWORKS
from repro.experiments.common import campaign_dataset


@dataclass
class ExtVideoResult:
    verdicts: list[VideoVerdict]

    def rows(self) -> list[tuple]:
        return [
            (
                v.network,
                round(v.hd_time_share, 3),
                round(v.rebuffer_ratio, 3),
                round(v.mean_bitrate_mbps, 1),
                "HD-ok" if v.supports_hd else "not-HD",
            )
            for v in self.verdicts
        ]

    def verdict(self, network: str) -> VideoVerdict:
        for v in self.verdicts:
            if v.network == network:
                return v
        raise KeyError(network)


def run(scale: str = "medium", seed: int = 0) -> ExtVideoResult:
    """Stream over each network's UDP-downlink samples from the campaign."""
    ds = campaign_dataset(scale, seed)
    verdicts = []
    for network in NETWORKS:
        series = ds.filter(
            network=network, protocol="udp", direction="dl"
        ).throughput_samples()
        if not series:
            raise RuntimeError(f"no samples for {network}")
        verdicts.append(evaluate_network(network, series))
    return ExtVideoResult(verdicts=verdicts)
