"""Figure 10: single-path TCP vs MPTCP download performance.

The paper's emulation result: over MpShell replaying aligned traces,
MPTCP with *tuned* buffers (>10x BDP) reaches 81 %/84 % aggregate
bandwidth utilization and beats the better single path by 30 %
(MOB+ATT) and 66 % (MOB+VZ); with *default* buffers the gains are
marginal and throughput sometimes collapses toward zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import collect_conditions, mean_capacity_mbps
from repro.core.analysis import improvement_percent
from repro.tools.iperf import run_mptcp_test, run_single_path_over_mpshell

#: Default (untuned) meta receive buffer, in segments: the Linux default
#: rmem cap (~6 MB) at MTU segments, scaled to our segment size at run time.
UNTUNED_BUFFER_BYTES = 256 * 1024
#: The paper tunes buffers to exceed 10x the BDP; ~64 MB covers it.
TUNED_BUFFER_BYTES = 64 * 1024 * 1024


@dataclass
class BoxData:
    """One box: repeated 5-minute (scaled) download runs."""

    label: str
    throughputs_mbps: list[float]

    @property
    def mean(self) -> float:
        return sum(self.throughputs_mbps) / len(self.throughputs_mbps)


@dataclass
class Figure10Result:
    boxes: list[BoxData]
    #: Aggregate capacity (Mbps) per combo, for utilization reporting.
    combo_capacity: dict[str, float]

    def rows(self) -> list[tuple]:
        return [(b.label, round(b.mean, 1)) for b in self.boxes]

    def box(self, label: str) -> BoxData:
        for box in self.boxes:
            if box.label == label:
                return box
        raise KeyError(label)

    def improvement_over_better_path(self, combo: str) -> float:
        """Tuned-MPTCP gain over the better single path (paper: 30 %, 66 %)."""
        starlink, cellular = combo.split("+")
        better = max(self.box(starlink).mean, self.box(cellular).mean)
        return improvement_percent(better, self.box(f"{combo} tuned").mean)

    def utilization(self, combo: str) -> float:
        """Tuned-MPTCP throughput / aggregate capacity (paper: 81 %, 84 %)."""
        capacity = self.combo_capacity[combo]
        if capacity <= 0:
            return float("nan")
        return self.box(f"{combo} tuned").mean / capacity


def run(
    duration_s: int = 120,
    seed: int = 11,
    segment_bytes: int = 6000,
    repeats: int = 3,
    combos: tuple[str, ...] = ("MOB+ATT", "MOB+VZ"),
) -> Figure10Result:
    """Regenerate Figure 10 (durations scaled down from the paper's 300 s).

    ``segment_bytes`` aggregates several MTUs per simulated packet to keep
    the pure-Python event count tractable; window dynamics are preserved
    (see DESIGN.md, fidelity strategy).
    """
    traces = collect_conditions(duration_s=duration_s, seed=seed)
    singles = sorted({n for combo in combos for n in combo.split("+")})

    boxes: list[BoxData] = []
    for network in singles:
        runs = [
            run_single_path_over_mpshell(
                network,
                traces[network],
                duration_s=float(duration_s),
                segment_bytes=segment_bytes,
                seed=seed + 31 * rep,
            ).throughput_mbps
            for rep in range(repeats)
        ]
        boxes.append(BoxData(network, runs))

    combo_capacity: dict[str, float] = {}
    for combo in combos:
        names = combo.split("+")
        combo_capacity[combo] = sum(
            mean_capacity_mbps(traces[n], downlink=True) for n in names
        )
        for label, buffer_bytes in (
            ("tuned", TUNED_BUFFER_BYTES),
            ("untuned", UNTUNED_BUFFER_BYTES),
        ):
            runs = [
                run_mptcp_test(
                    {n: traces[n] for n in names},
                    duration_s=float(duration_s),
                    buffer_segments=max(2, buffer_bytes // segment_bytes),
                    segment_bytes=segment_bytes,
                    seed=seed + 31 * rep,
                ).throughput_mbps
                for rep in range(repeats)
            ]
            boxes.append(BoxData(f"{combo} {label}", runs))
    return Figure10Result(boxes=boxes, combo_capacity=combo_capacity)
