"""Dataset summary (Section 3.3): campaign totals and area proportions.

Paper totals: 1,239 network tests, 9,083 minutes of traces, >3,800 km
driven; area shares 29.78 % urban / 34.30 % suburban / 35.91 % rural.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import campaign_dataset
from repro.geo.classify import AreaType


@dataclass
class DatasetSummary:
    num_tests: int
    trace_minutes: float
    distance_km: float
    area_proportions: dict[AreaType, float]

    def rows(self) -> list[tuple]:
        rows = [
            ("tests", self.num_tests),
            ("trace-minutes", round(self.trace_minutes)),
            ("distance-km", round(self.distance_km)),
        ]
        for area in (AreaType.URBAN, AreaType.SUBURBAN, AreaType.RURAL):
            rows.append(
                (f"share-{area.value}", round(self.area_proportions[area], 4))
            )
        return rows


def run(scale: str = "medium", seed: int = 0) -> DatasetSummary:
    """Summarize a campaign dataset."""
    ds = campaign_dataset(scale, seed)
    return DatasetSummary(
        num_tests=ds.num_tests,
        trace_minutes=ds.trace_minutes,
        distance_km=ds.distance_km,
        area_proportions=ds.area_proportions,
    )
