"""Figure 8: UDP downlink throughput by area type.

The paper's crossover result: cellular throughput *falls* from urban to
rural (base-station density follows population) while Starlink *rises*
(fewer obstructions), making Starlink the better network outside cities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import SummaryStats
from repro.core.dataset import CELLULAR_NETWORKS
from repro.experiments.common import campaign_dataset
from repro.geo.classify import AreaType


@dataclass
class AreaBox:
    """One box of the figure: a network group in one area type."""

    label: str
    area: AreaType
    stats: SummaryStats


@dataclass
class Figure8Result:
    boxes: list[AreaBox]

    def rows(self) -> list[tuple]:
        return [
            (
                b.label,
                b.area.value,
                round(b.stats.median, 1),
                round(b.stats.mean, 1),
                round(b.stats.p75, 1),
            )
            for b in self.boxes
        ]

    def median(self, label: str, area: AreaType) -> float:
        for box in self.boxes:
            if box.label == label and box.area == area:
                return box.stats.median
        raise KeyError((label, area))


def run(scale: str = "medium", seed: int = 0) -> Figure8Result:
    """Regenerate Figure 8 from UDP downlink samples split by area."""
    ds = campaign_dataset(scale, seed)
    boxes = []
    for area in (AreaType.URBAN, AreaType.SUBURBAN, AreaType.RURAL):
        cellular: list[float] = []
        for network in CELLULAR_NETWORKS:
            cellular.extend(
                ds.filter(
                    network=network, protocol="udp", direction="dl", area=area
                ).throughput_samples()
            )
        mob = ds.filter(
            network="MOB", protocol="udp", direction="dl", area=area
        ).throughput_samples()
        if not cellular or not mob:
            raise RuntimeError(f"campaign produced no samples in {area}")
        boxes.append(
            AreaBox("Cellular", area, SummaryStats.from_values(cellular))
        )
        boxes.append(AreaBox("MOB", area, SummaryStats.from_values(mob)))
    return Figure8Result(boxes=boxes)
