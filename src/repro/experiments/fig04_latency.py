"""Figure 4 (+ Equation 1): UDP-Ping latency CDFs for all five networks.

Paper findings: RTTs cluster in 50-100 ms for every network; Verizon and
T-Mobile are lowest, AT&T highest; Starlink sits only slightly above the
good carriers because the 550 km hop adds just ~1.8 ms each way (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import SummaryStats, cdf_at
from repro.core.dataset import NETWORKS
from repro.experiments.common import campaign_dataset
from repro.leo.geometry import equation1_one_way_latency_ms


@dataclass
class LatencyCurve:
    """RTT samples for one network."""

    network: str
    rtt_ms: list[float]

    @property
    def stats(self) -> SummaryStats:
        return SummaryStats.from_values(self.rtt_ms)

    @property
    def share_in_50_100ms(self) -> float:
        """Fraction of RTTs in the paper's 50-100 ms band."""
        below_100 = cdf_at(self.rtt_ms, 100.0)
        below_50 = cdf_at(self.rtt_ms, 50.0)
        return below_100 - below_50


@dataclass
class Figure4Result:
    curves: list[LatencyCurve]
    equation1_ms: float

    def rows(self) -> list[tuple]:
        rows = [
            (
                c.network,
                round(c.stats.median, 1),
                round(c.stats.mean, 1),
                round(c.share_in_50_100ms, 3),
            )
            for c in self.curves
        ]
        rows.append(("Eq1-one-way", round(self.equation1_ms, 3), "", ""))
        return rows

    def median(self, network: str) -> float:
        for curve in self.curves:
            if curve.network == network:
                return curve.stats.median
        raise KeyError(network)


def run(scale: str = "medium", seed: int = 0) -> Figure4Result:
    """Regenerate Figure 4's data from the campaign's UDP-Ping records."""
    ds = campaign_dataset(scale, seed)
    curves = []
    for network in NETWORKS:
        rtts = ds.filter(network=network, protocol="ping").rtt_samples()
        if not rtts:
            raise RuntimeError(f"no ping samples for {network}")
        curves.append(LatencyCurve(network=network, rtt_ms=rtts))
    return Figure4Result(
        curves=curves, equation1_ms=equation1_one_way_latency_ms()
    )
