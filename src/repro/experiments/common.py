"""Shared fixtures for the experiment modules.

Experiments at campaign scale share one dataset per (scale, seed); the
module memoizes them because several figures read the same campaign, just
like the paper's figures all read the same field data.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cellular.carriers import carrier_by_short_name
from repro.cellular.channel import CellularChannel
from repro.conditions import LinkConditions
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.dataset import (
    CELLULAR_NETWORKS,
    DriveDataset,
    NETWORKS,
    STARLINK_NETWORKS,
)
from repro.geo.mobility import VehicleTrace
from repro.leo.channel import StarlinkChannel
from repro.leo.dish import DishPlan, dish_for_plan

#: Campaign sizes for experiments: "small" for unit tests, "medium" for
#: benchmark runs, "paper" for the full-scale reproduction.
SCALES = ("small", "medium", "paper")

#: Worker processes campaign datasets are generated with (see
#: :attr:`repro.core.campaign.CampaignConfig.workers`).  Module-level so
#: the CLI's ``--workers`` reaches every experiment without threading a
#: parameter through each figure's ``run()`` signature.
_default_workers = 1

#: Resilience settings campaign datasets are generated with (see
#: :mod:`repro.resilience`); ``None`` keeps the bare fail-once
#: behaviour.  Module-level for the same reason as ``_default_workers``:
#: the CLI's ``--retries``/``--drive-timeout`` reach every experiment
#: without touching figure signatures.
_default_resilience = None


def set_default_workers(workers: int) -> None:
    """Set the worker count campaign datasets are generated with.

    Execution-only: any worker count produces byte-identical datasets,
    which is why :func:`campaign_dataset`'s memoization key deliberately
    ignores it.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    global _default_workers
    _default_workers = workers


def default_workers() -> int:
    """The worker count :func:`campaign_dataset` currently uses."""
    return _default_workers


#: Content-addressed drive cache directory campaign datasets are
#: generated with (see :mod:`repro.store.cache`); ``None`` disables the
#: cache.  Module-level like ``_default_workers``: the CLI's
#: ``--cache-dir`` reaches every experiment without touching figure
#: signatures.
_default_cache_dir = None

#: Artifact layout campaigns persist through when a checkpoint path is
#: used (``"json"`` monolithic or ``"jsonl"`` sharded streaming store;
#: see ``docs/ARTIFACTS.md``).
_default_artifact_format = "json"


def set_default_cache_dir(cache_dir) -> None:
    """Set the drive-cache directory campaigns are generated with.

    Execution-only like :func:`set_default_workers`: cached and
    recomputed drives are byte-identical, so the memoization key
    ignores it too.  ``None`` disables caching.
    """
    global _default_cache_dir
    _default_cache_dir = cache_dir


def default_cache_dir():
    """The cache directory :func:`campaign_dataset` currently uses."""
    return _default_cache_dir


def set_default_artifact_format(artifact_format: str) -> None:
    """Set the artifact layout campaigns persist through."""
    if artifact_format not in ("json", "jsonl"):
        raise ValueError(
            f"artifact_format must be 'json' or 'jsonl', got {artifact_format!r}"
        )
    global _default_artifact_format
    _default_artifact_format = artifact_format


def default_artifact_format() -> str:
    """The artifact layout :func:`campaign_dataset` currently uses."""
    return _default_artifact_format


def set_default_resilience(resilience) -> None:
    """Set the self-healing settings campaigns are generated with.

    Takes a :class:`repro.resilience.ResilienceConfig` or ``None``.
    Execution-only like :func:`set_default_workers`: retried and
    watchdog-healed runs are byte-identical to untouched ones, so the
    memoization key ignores it too.
    """
    from repro.resilience import ResilienceConfig

    if resilience is not None and not isinstance(resilience, ResilienceConfig):
        raise ValueError(
            f"resilience must be a ResilienceConfig or None, got {type(resilience)}"
        )
    global _default_resilience
    _default_resilience = resilience


def default_resilience():
    """The resilience settings :func:`campaign_dataset` currently uses."""
    return _default_resilience


def config_for_scale(scale: str, seed: int = 0) -> CampaignConfig:
    """Campaign configuration for a named scale."""
    if scale == "small":
        # One capped interstate drive that still crosses urban, suburban,
        # and rural stretches (the metro exit takes ~20 minutes).
        return CampaignConfig.small(seed=seed)
    if scale == "medium":
        return CampaignConfig(
            seed=seed,
            num_interstate_drives=4,
            num_city_drives=0,
            max_drive_seconds=2400.0,
            test_duration_s=60.0,
            window_period_s=75.0,
        )
    if scale == "paper":
        return CampaignConfig.paper_scale(seed=seed)
    raise ValueError(f"unknown scale {scale!r}; options: {SCALES}")


@lru_cache(maxsize=4)
def campaign_dataset(scale: str = "medium", seed: int = 0) -> DriveDataset:
    """The memoized campaign dataset for a scale/seed.

    Runs with :func:`default_workers` worker processes; the cache key is
    (scale, seed) only because the dataset is byte-identical at any
    worker count.
    """
    config = config_for_scale(scale, seed)
    config.workers = _default_workers
    config.resilience = _default_resilience
    config.artifact_format = _default_artifact_format
    config.cache_dir = _default_cache_dir
    return Campaign(config).run()


@lru_cache(maxsize=8)
def collect_conditions(
    duration_s: int = 300,
    seed: int = 7,
    networks: tuple[str, ...] = tuple(NETWORKS),
    skip_s: int = 1200,
) -> dict[str, list[LinkConditions]]:
    """Aligned per-second channel traces for one drive segment.

    This is the raw material of the transport-level experiments (Figures 5,
    7, 10, 11): all devices observe the same drive at the same timestamps,
    exactly like the paper's trace alignment (Section 6).  ``skip_s`` drops
    the urban departure loop so the default segment is the open-road
    driving the paper's MPTCP traces come from.
    """
    campaign = Campaign(config_for_scale("small", seed))
    route = campaign.route_generator.interstate_drive(
        f"trace-{seed}", campaign.places.cities()[0], campaign.places.cities()[3]
    )
    trace = VehicleTrace(route, campaign.rng)
    samples = trace.samples[int(skip_s) : int(skip_s) + int(duration_s)]
    if len(samples) < int(duration_s):
        raise ValueError(
            f"route too short: wanted {duration_s}s after skipping {skip_s}s,"
            f" got {len(samples)}s"
        )

    channels: dict[str, object] = {}
    for name in networks:
        if name in STARLINK_NETWORKS:
            channels[name] = StarlinkChannel(
                dish_for_plan(DishPlan(name)),
                constellation=campaign.constellation,
                gateways=campaign.gateways,
                places=campaign.places,
                rng=campaign.rng.fork(seed),
            )
        elif name in CELLULAR_NETWORKS:
            channels[name] = CellularChannel(
                carrier_by_short_name(name), campaign.rng.fork(seed)
            )
        else:
            raise KeyError(f"unknown network {name!r}")

    out: dict[str, list[LinkConditions]] = {name: [] for name in networks}
    for mob in samples:
        area = campaign.classifier.classify(mob.position)
        for name in networks:
            out[name].append(
                channels[name].sample(
                    mob.time_s, mob.position, mob.speed_kmh, area
                )
            )
    return out


def mean_capacity_mbps(
    samples: list[LinkConditions], downlink: bool = True
) -> float:
    """Mean capacity of a trace (used for utilization figures)."""
    if not samples:
        return 0.0
    return sum(s.capacity_mbps(downlink) for s in samples) / len(samples)
