"""Figure 5: TCP retransmission rate, uplink and downlink, five networks.

The paper runs iPerf TCP while capturing tcpdump traces, then reports the
average retransmitted fraction: 0.3-1.3 % on Starlink (both directions)
versus well under that on the cellular carriers.  We regenerate it with the
packet-level simulator so the retransmissions come from real loss recovery,
not from the channel's loss parameter directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import CELLULAR_NETWORKS, NETWORKS, STARLINK_NETWORKS
from repro.experiments.common import collect_conditions
from repro.tools.iperf import run_tcp_test


@dataclass
class LossBar:
    """One bar of Figure 5."""

    network: str
    direction: str  # "ul" | "dl"
    retransmission_rate: float


@dataclass
class Figure5Result:
    bars: list[LossBar]

    def rows(self) -> list[tuple]:
        return [
            (b.network, b.direction, round(b.retransmission_rate, 4))
            for b in self.bars
        ]

    def rate(self, network: str, direction: str) -> float:
        for bar in self.bars:
            if bar.network == network and bar.direction == direction:
                return bar.retransmission_rate
        raise KeyError((network, direction))

    @property
    def starlink_mean(self) -> float:
        rates = [
            b.retransmission_rate
            for b in self.bars
            if b.network in STARLINK_NETWORKS
        ]
        return sum(rates) / len(rates)

    @property
    def cellular_mean(self) -> float:
        rates = [
            b.retransmission_rate
            for b in self.bars
            if b.network in CELLULAR_NETWORKS
        ]
        return sum(rates) / len(rates)


def run(
    duration_s: int = 120,
    seed: int = 3,
    segment_bytes: int = 6000,
) -> Figure5Result:
    """Regenerate Figure 5: one TCP run per (network, direction)."""
    traces = collect_conditions(duration_s=duration_s, seed=seed)
    bars = []
    for network in NETWORKS:
        for direction in ("ul", "dl"):
            # Uplink rates are low; use real-MTU segments there so window
            # quantization does not inflate the retransmission ratio.
            seg = segment_bytes if direction == "dl" else 1500
            result = run_tcp_test(
                traces[network],
                duration_s=float(duration_s),
                downlink=direction == "dl",
                segment_bytes=seg,
                seed=seed,
            )
            bars.append(
                LossBar(
                    network=network,
                    direction=direction,
                    retransmission_rate=result.retransmission_rate,
                )
            )
    return Figure5Result(bars=bars)
