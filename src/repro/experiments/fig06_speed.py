"""Figure 6: impact of vehicle speed on throughput (rural data only).

The paper extracts rural samples (to dodge the urban confound where speed
limits and obstructions correlate), buckets them by 10 km/h of vehicle
speed, and finds throughput essentially flat for both Starlink Mobility
and the cellular carriers — LEO satellites move at 28,000 km/h, so the
vehicle is stationary by comparison, and cellular handovers are efficient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import group_means, speed_bucket
from repro.core.dataset import CELLULAR_NETWORKS
from repro.experiments.common import campaign_dataset
from repro.geo.classify import AreaType


@dataclass
class SpeedSeries:
    """Mean throughput per speed bucket for one network group."""

    label: str
    #: bucket (low, high) -> mean Mbps
    by_bucket: dict[tuple[int, int], float]

    @property
    def variation_coefficient(self) -> float:
        """Std/mean across buckets — the flatness metric."""
        values = np.array(list(self.by_bucket.values()))
        if values.size == 0 or values.mean() == 0:
            return float("nan")
        return float(values.std() / values.mean())


@dataclass
class Figure6Result:
    starlink: SpeedSeries
    cellular: SpeedSeries

    def rows(self) -> list[tuple]:
        buckets = sorted(
            set(self.starlink.by_bucket) | set(self.cellular.by_bucket)
        )
        return [
            (
                f"{lo}-{hi}",
                round(self.starlink.by_bucket.get((lo, hi), float("nan")), 1),
                round(self.cellular.by_bucket.get((lo, hi), float("nan")), 1),
            )
            for lo, hi in buckets
        ]


def _series(label: str, samples) -> SpeedSeries:
    keys = [speed_bucket(s.speed_kmh) for s in samples]
    values = [s.throughput_mbps for s in samples]
    return SpeedSeries(label=label, by_bucket=group_means(keys, values))


def run(scale: str = "medium", seed: int = 0) -> Figure6Result:
    """Regenerate Figure 6 from rural UDP downlink samples."""
    ds = campaign_dataset(scale, seed)
    rural = ds.filter(protocol="udp", direction="dl", area=AreaType.RURAL)

    mob_samples = [
        s
        for rec in rural.filter(network="MOB").records
        for s in rec.samples
        if s.area == AreaType.RURAL
    ]
    cl_samples = [
        s
        for network in CELLULAR_NETWORKS
        for rec in rural.filter(network=network).records
        for s in rec.samples
        if s.area == AreaType.RURAL
    ]
    if not mob_samples or not cl_samples:
        raise RuntimeError("campaign produced no rural samples")
    return Figure6Result(
        starlink=_series("MOB", mob_samples),
        cellular=_series("Cellular", cl_samples),
    )
