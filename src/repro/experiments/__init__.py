"""One module per paper figure, plus the dataset summary.

Every module exposes ``run(...)`` returning a result object with a
``rows()`` method that prints the same rows/series the paper reports.
The registry maps experiment ids to those entry points.
"""

from repro.experiments import (
    dataset_summary,
    ext_fec,
    ext_scheduler,
    ext_switching,
    ext_video,
    ext_weather,
    fig01_motivation,
    fig03_throughput,
    fig04_latency,
    fig05_loss,
    fig06_speed,
    fig07_parallelism,
    fig08_area,
    fig09_coverage,
    fig10_mptcp_box,
    fig11_mptcp_trace,
)

#: Experiment id -> (module, description).
REGISTRY = {
    "fig1": (fig01_motivation, "Motivation: 5-network throughput timeline"),
    "fig3": (fig03_throughput, "Throughput CDFs: TCP/UDP, RM/MOB, UL/DL"),
    "fig4": (fig04_latency, "UDP-Ping latency CDFs + Equation 1"),
    "fig5": (fig05_loss, "TCP retransmission rates, UL/DL x 5 networks"),
    "fig6": (fig06_speed, "Throughput vs vehicle speed (rural)"),
    "fig7": (fig07_parallelism, "TCP parallelism gains (1/4/8 connections)"),
    "fig8": (fig08_area, "Throughput by area type"),
    "fig9": (fig09_coverage, "Performance-coverage shares + combinations"),
    "fig10": (fig10_mptcp_box, "Single-path vs MPTCP downloads (tuned/untuned)"),
    "fig11": (fig11_mptcp_trace, "MPTCP vs single-path time series"),
    "dataset": (dataset_summary, "Campaign totals (Section 3.3)"),
    "ext-fec": (ext_fec, "Extension: FEC vs TCP vs UDP on Starlink"),
    "ext-scheduler": (ext_scheduler, "Extension: LEO-aware MPTCP scheduler"),
    "ext-switching": (ext_switching, "Extension: switching oracle vs reality vs MPTCP"),
    "ext-video": (ext_video, "Extension: 1080p streaming QoE per network"),
    "ext-weather": (ext_weather, "Extension: weather sensitivity of Starlink"),
}


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment by id and return its result object."""
    if experiment_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; options: {sorted(REGISTRY)}"
        )
    module, _ = REGISTRY[experiment_id]
    return module.run(**kwargs)


__all__ = ["REGISTRY", "run_experiment"]
