"""Figure 11: throughput over time — MPTCP vs each single path.

Two panels (MOB+ATT, MOB+VZ).  The paper's observations: MPTCP tracks or
exceeds the better path almost everywhere; when the cellular path degrades
(weak signal stretch) MPTCP holds throughput up via the Starlink subflow;
when both paths are strong the aggregate exceeds 300 Mbps — beyond what
either network ever reaches alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import collect_conditions
from repro.experiments.fig10_mptcp_box import TUNED_BUFFER_BYTES
from repro.tools.iperf import run_mptcp_test, run_single_path_over_mpshell


@dataclass
class TracePanel:
    """One panel: per-second series for the two paths and MPTCP."""

    combo: str
    series: dict[str, list[float]]  # label -> Mbps per second

    @property
    def mptcp_at_least_best_fraction(self) -> float:
        """Share of seconds where MPTCP >= 0.9x the better single path."""
        labels = [l for l in self.series if l != "MPTCP"]
        best = np.max(np.vstack([self.series[l] for l in labels]), axis=0)
        mptcp = np.array(self.series["MPTCP"])
        return float(np.mean(mptcp >= 0.9 * best))

    @property
    def peak_mbps(self) -> float:
        return float(np.max(self.series["MPTCP"]))


@dataclass
class Figure11Result:
    panels: list[TracePanel]

    def rows(self) -> list[tuple]:
        out = []
        for panel in self.panels:
            for label, series in panel.series.items():
                arr = np.array(series)
                out.append(
                    (
                        panel.combo,
                        label,
                        round(float(arr.mean()), 1),
                        round(float(arr.max()), 1),
                    )
                )
        return out

    def panel(self, combo: str) -> TracePanel:
        for panel in self.panels:
            if panel.combo == combo:
                return panel
        raise KeyError(combo)


def run(
    duration_s: int = 120,
    seed: int = 11,
    segment_bytes: int = 6000,
    combos: tuple[str, ...] = ("MOB+ATT", "MOB+VZ"),
) -> Figure11Result:
    """Regenerate Figure 11's time series (scaled from the paper's 300 s)."""
    traces = collect_conditions(duration_s=duration_s, seed=seed)
    panels = []
    for combo in combos:
        names = combo.split("+")
        series: dict[str, list[float]] = {}
        for name in names:
            result = run_single_path_over_mpshell(
                name,
                traces[name],
                duration_s=float(duration_s),
                segment_bytes=segment_bytes,
                seed=seed,
            )
            series[name] = result.series_mbps
        mptcp = run_mptcp_test(
            {n: traces[n] for n in names},
            duration_s=float(duration_s),
            buffer_segments=max(2, TUNED_BUFFER_BYTES // segment_bytes),
            segment_bytes=segment_bytes,
            seed=seed,
        )
        series["MPTCP"] = mptcp.series_mbps
        panels.append(TracePanel(combo=combo, series=series))
    return Figure11Result(panels=panels)
