"""Command-line figure regeneration.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments fig9       # regenerate Figure 9 (medium)
    python -m repro.experiments fig9 --scale small --seed 3
    python -m repro.experiments fig10 --duration 90

Campaign-scale experiments accept ``--scale/--seed`` (plus ``--workers``
to shard campaign generation across processes — output is byte-identical
at any worker count); transport-scale experiments accept
``--duration/--seed``.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.experiments import REGISTRY, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(REGISTRY),
        help="experiment id (omit to list all)",
    )
    parser.add_argument("--scale", default="medium", help="campaign scale")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for campaign generation (same output at "
        "any count; see docs/API.md)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failed drive up to N times when the failure is "
        "transient (same output with or without retries; see "
        "docs/FAULTS.md)",
    )
    parser.add_argument(
        "--drive-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per drive; with --workers > 1 a drive "
        "exceeding it is killed and requeued on another worker",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed drive cache: reuse digest-verified drive "
        "results across runs sharing a config fingerprint (same output "
        "with or without the cache; see docs/ARTIFACTS.md)",
    )
    parser.add_argument(
        "--artifact-format",
        choices=["json", "jsonl"],
        default=None,
        help="checkpoint layout: monolithic 'json' or digest-chained "
        "streaming 'jsonl' shards (see docs/ARTIFACTS.md)",
    )
    parser.add_argument(
        "--duration", type=int, default=None, help="test duration (seconds)"
    )
    parser.add_argument(
        "--csv", default=None, metavar="FILE", help="also write rows as CSV"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII version of the figure",
    )
    args = parser.parse_args(argv)

    if args.experiment is None:
        print("Available experiments:")
        for key, (_, description) in sorted(REGISTRY.items()):
            print(f"  {key:<8} {description}")
        return 0

    if args.workers != 1:
        from repro.experiments.common import set_default_workers

        set_default_workers(args.workers)

    if args.retries is not None or args.drive_timeout is not None:
        from repro.experiments.common import set_default_resilience
        from repro.resilience import ResilienceConfig, RetryPolicy

        if args.retries is not None and args.retries < 0:
            parser.error(f"--retries must be >= 0, got {args.retries}")
        retry = RetryPolicy(
            max_attempts=(args.retries + 1) if args.retries is not None else 1
        )
        set_default_resilience(
            ResilienceConfig(retry=retry, drive_timeout_s=args.drive_timeout)
        )

    if args.cache_dir is not None:
        from repro.experiments.common import set_default_cache_dir

        set_default_cache_dir(args.cache_dir)

    if args.artifact_format is not None:
        from repro.experiments.common import set_default_artifact_format

        set_default_artifact_format(args.artifact_format)

    module, description = REGISTRY[args.experiment]
    accepted = inspect.signature(module.run).parameters
    kwargs = {}
    if "scale" in accepted:
        kwargs["scale"] = args.scale
    if args.seed is not None and "seed" in accepted:
        kwargs["seed"] = args.seed
    if args.duration is not None and "duration_s" in accepted:
        kwargs["duration_s"] = args.duration

    print(f"== {args.experiment}: {description}")
    result = run_experiment(args.experiment, **kwargs)
    for row in result.rows():
        print("  ", *row)
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerows(result.rows())
        print(f"wrote {args.csv}")
    if args.plot:
        rendered = render_ascii(args.experiment, result)
        if rendered:
            print("\n" + rendered)
        else:
            print("(no ASCII rendering for this experiment)")
    return 0


def render_ascii(experiment_id: str, result) -> str | None:
    """Best-effort ASCII rendering per figure family."""
    from repro import report

    if experiment_id in ("fig1", "fig11"):
        if experiment_id == "fig1":
            return report.timeline(result.series_mbps)
        return "\n\n".join(
            f"[{panel.combo}]\n" + report.timeline(panel.series)
            for panel in result.panels
        )
    if experiment_id == "fig3":
        return "\n\n".join(
            report.cdf_plot({c.label: c.samples for c in panel})
            for panel in (result.panel_a, result.panel_b, result.panel_c)
        )
    if experiment_id == "fig4":
        return report.cdf_plot(
            {c.network: c.rtt_ms for c in result.curves}, x_label="ms RTT"
        )
    if experiment_id == "fig9":
        return report.stacked_shares(
            [b.name for b in result.bars],
            [[b.very_low, b.low, b.medium, b.high] for b in result.bars],
            legend=["<20", "20-50", "50-100", ">100 Mbps"],
        )
    if experiment_id in ("fig5", "fig6", "fig7", "fig8", "fig10"):
        rows = result.rows()
        labels = [" ".join(str(c) for c in row[:-1]) for row in rows]
        values = []
        for row in rows:
            try:
                values.append(float(row[-1]))
            except (TypeError, ValueError):
                return None
        return report.bar_chart(labels, values)
    return None


if __name__ == "__main__":
    sys.exit(main())
