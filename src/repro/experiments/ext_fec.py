"""Extension experiment: FEC vs TCP vs UDP on the Starlink channel.

The paper's Section 1 call to action: Starlink's bursty loss "calls for
better congestion control or Forward Error Correction (FEC) algorithms
tailored for such characteristics."  This experiment quantifies the
opportunity: on the same Starlink Mobility trace we run

* iPerf UDP (the available-bandwidth ceiling),
* single-connection TCP (the collapsed baseline of Figure 3a),
* rate-based FEC at ~80 % of mean capacity with several (k, r) codes.

A useful FEC configuration should recover most of the TCP-vs-UDP gap at
single-digit percent overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import collect_conditions
from repro.net.path import Path
from repro.net.simulator import Simulator
from repro.tools.iperf import _default_buffer, run_tcp_test, run_udp_test
from repro.transport.fec import FecConfig, open_fec_flow


@dataclass
class FecRow:
    """One transport configuration's outcome."""

    label: str
    goodput_mbps: float
    overhead: float
    block_loss_rate: float


@dataclass
class ExtFecResult:
    rows_data: list[FecRow]

    def rows(self) -> list[tuple]:
        return [
            (
                r.label,
                round(r.goodput_mbps, 1),
                f"{r.overhead:.0%}",
                round(r.block_loss_rate, 4),
            )
            for r in self.rows_data
        ]

    def row(self, label: str) -> FecRow:
        for row in self.rows_data:
            if row.label == label:
                return row
        raise KeyError(label)


def run(
    duration_s: int = 90,
    seed: int = 3,
    segment_bytes: int = 6000,
    network: str = "MOB",
) -> ExtFecResult:
    """Run the FEC-vs-TCP-vs-UDP comparison on one Starlink trace."""
    traces = collect_conditions(duration_s=duration_s, seed=seed)
    trace = traces[network]
    live = [s for s in trace if not s.is_outage] or trace
    mean_capacity = sum(s.downlink_mbps for s in live) / len(live)

    udp = run_udp_test(
        trace, duration_s=float(duration_s), segment_bytes=segment_bytes, seed=seed
    )
    tcp = run_tcp_test(
        trace, duration_s=float(duration_s), segment_bytes=segment_bytes, seed=seed
    )
    rows = [
        FecRow("UDP (ceiling)", udp.throughput_mbps, 0.0, 0.0),
        FecRow("TCP (baseline)", tcp.throughput_mbps, 0.0, 0.0),
    ]

    target_rate = 0.8 * mean_capacity
    for k, r in ((20, 2), (20, 4), (10, 4)):
        config = FecConfig(data_segments=k, repair_segments=r)
        sim = Simulator()
        path = Path.from_conditions(
            sim,
            trace,
            np.random.default_rng(seed),
            buffer_bytes=_default_buffer(trace, True),
            name="fec",
        )
        sender, receiver = open_fec_flow(
            sim, path, target_rate, config=config, segment_bytes=segment_bytes
        )
        sender.start()
        sim.run(until_s=float(duration_s))
        receiver.finalize(sender.stats.blocks_sent)
        goodput = sender.stats.data_bytes_delivered * 8 / 1e6 / duration_s
        rows.append(
            FecRow(
                f"FEC k={k} r={r}",
                goodput,
                config.overhead,
                sender.stats.block_loss_rate,
            )
        )
    return ExtFecResult(rows_data=rows)
