"""Figure 1: download throughput of all five networks over one drive.

The paper's motivation figure: a ~1,200 s timeline where Starlink and
cellular alternate as the better network as the vehicle moves through
different areas.  We regenerate the underlying per-second series and report
the complementarity statistics the figure is meant to convey.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import NETWORKS
from repro.core.fluid import fluid_udp_series
from repro.experiments.common import collect_conditions


@dataclass
class MotivationResult:
    """Per-network throughput timelines plus complementarity stats."""

    duration_s: int
    series_mbps: dict[str, list[float]]
    #: Fraction of seconds where the best Starlink beats the best cellular.
    starlink_wins_fraction: float
    #: Fraction of seconds where the winner differs from the previous second's.
    lead_changes: int

    def rows(self) -> list[tuple]:
        """Printable rows: network, mean, median, share of seconds it leads."""
        rows = []
        leaders = self._leaders()
        for name in NETWORKS:
            values = np.array(self.series_mbps[name])
            lead_share = float(np.mean([ld == name for ld in leaders]))
            rows.append(
                (
                    name,
                    round(float(values.mean()), 1),
                    round(float(np.median(values)), 1),
                    round(lead_share, 3),
                )
            )
        return rows

    def _leaders(self) -> list[str]:
        names = list(self.series_mbps)
        columns = [self.series_mbps[n] for n in names]
        return [
            names[int(np.argmax(vals))]
            for vals in zip(*columns, strict=True)
        ]


def run(duration_s: int = 1200, seed: int = 7) -> MotivationResult:
    """Regenerate Figure 1's data.

    The segment starts at the edge of the origin metro (skip 600 s) so the
    timeline crosses urban, suburban, and rural stretches — the alternating
    winners the figure is about.
    """
    traces = collect_conditions(duration_s=duration_s, seed=seed, skip_s=600)
    series = {
        name: fluid_udp_series(samples, downlink=True)
        for name, samples in traces.items()
    }
    starlink = np.maximum(np.array(series["RM"]), np.array(series["MOB"]))
    cellular = np.max(
        np.vstack([series["ATT"], series["TM"], series["VZ"]]), axis=0
    )
    wins = float(np.mean(starlink > cellular))
    leaders = MotivationResult(
        duration_s=duration_s,
        series_mbps=series,
        starlink_wins_fraction=wins,
        lead_changes=0,
    )._leaders()
    lead_changes = sum(
        1 for a, b in zip(leaders, leaders[1:], strict=False) if a != b
    )
    return MotivationResult(
        duration_s=duration_s,
        series_mbps=series,
        starlink_wins_fraction=wins,
        lead_changes=lead_changes,
    )
