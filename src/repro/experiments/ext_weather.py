"""Extension experiment: weather sensitivity of the Starlink channel.

Section 3.3: the campaign covered "not only clear weather conditions but
also rainy and snowy conditions, to capture potential performance
variations"; the paper then folds weather into the environmental factors
found to have modest impact.  This experiment makes the sensitivity
explicit: the same drive segment is replayed under clear, rain, and snow
attenuation states, reporting capacity and achievable-throughput deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.campaign import Campaign
from repro.core.fluid import fluid_udp_series
from repro.experiments.common import config_for_scale
from repro.geo.mobility import VehicleTrace
from repro.leo.channel import CLEAR, RAIN, SNOW, StarlinkChannel, WeatherState
from repro.leo.dish import DishPlan, dish_for_plan

WEATHER_STATES: tuple[WeatherState, ...] = (CLEAR, RAIN, SNOW)


@dataclass
class WeatherRow:
    weather: str
    mean_mbps: float
    median_mbps: float
    outage_share: float
    mean_loss: float


@dataclass
class ExtWeatherResult:
    rows_data: list[WeatherRow]

    def rows(self) -> list[tuple]:
        return [
            (
                r.weather,
                round(r.mean_mbps, 1),
                round(r.median_mbps, 1),
                round(r.outage_share, 3),
                round(r.mean_loss, 4),
            )
            for r in self.rows_data
        ]

    def row(self, weather: str) -> WeatherRow:
        for row in self.rows_data:
            if row.weather == weather:
                return row
        raise KeyError(weather)


def run(
    duration_s: int = 600,
    seed: int = 3,
    plan: str = "MOB",
    skip_s: int = 1200,
) -> ExtWeatherResult:
    """Replay one drive segment under each weather state."""
    campaign = Campaign(config_for_scale("small", seed))
    route = campaign.route_generator.interstate_drive(
        f"weather-{seed}",
        campaign.places.cities()[0],
        campaign.places.cities()[3],
    )
    trace = VehicleTrace(route, campaign.rng)
    samples = trace.samples[skip_s : skip_s + duration_s]

    rows = []
    for weather in WEATHER_STATES:
        channel = StarlinkChannel(
            dish_for_plan(DishPlan(plan)),
            constellation=campaign.constellation,
            gateways=campaign.gateways,
            places=campaign.places,
            rng=campaign.rng.fork(seed),  # same randomness per state
            weather=weather,
        )
        conditions = [
            channel.sample(m.time_s, m.position, m.speed_kmh,
                           campaign.classifier.classify(m.position))
            for m in samples
        ]
        series = np.array(fluid_udp_series(conditions))
        live = [c for c in conditions if not c.is_outage]
        rows.append(
            WeatherRow(
                weather=weather.name,
                mean_mbps=float(series.mean()),
                median_mbps=float(np.median(series)),
                outage_share=float(np.mean([c.is_outage for c in conditions])),
                mean_loss=float(np.mean([c.loss_rate for c in live]))
                if live
                else 1.0,
            )
        )
    return ExtWeatherResult(rows_data=rows)
