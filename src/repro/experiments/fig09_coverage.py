"""Figure 9: performance-coverage shares for singles and combinations.

Paper numbers to reproduce in shape: MOB leads with ~60.6 % of samples in
the high band (>100 Mbps); VZ ~44.4 % and TM ~42.5 % follow; RM and ATT
trail with ~39.9 % and ~53.5 % of samples at low-or-worse (<50 Mbps); the
switching combinations (BestCL, RM+CL, MOB+CL) beat their components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coverage import CoverageShares, figure9_shares
from repro.experiments.common import campaign_dataset


@dataclass
class Figure9Result:
    bars: list[CoverageShares]

    def rows(self) -> list[tuple]:
        return [
            (
                b.name,
                round(b.very_low, 3),
                round(b.low, 3),
                round(b.medium, 3),
                round(b.high, 3),
            )
            for b in self.bars
        ]

    def bar(self, name: str) -> CoverageShares:
        for bar in self.bars:
            if bar.name == name:
                return bar
        raise KeyError(name)


def run(scale: str = "medium", seed: int = 0) -> Figure9Result:
    """Regenerate Figure 9's stacked bars from the campaign dataset."""
    return Figure9Result(bars=figure9_shares(campaign_dataset(scale, seed)))
