"""Extension experiment: oracle switching vs realistic switching vs MPTCP.

Figure 9's combination bars assume zero-effort switching.  This experiment
prices that assumption: on one drive's aligned traces we compare

* the single best network (no switching),
* a realistic hysteresis switcher (margin + dwell + reattach outage),
* the zero-effort oracle (Figure 9's assumption),
* tuned MPTCP using both paths at once (Section 6's answer).

The expected ordering — best single < switcher < oracle <= MPTCP — is the
paper's multipath argument made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fluid import fluid_udp_series
from repro.core.switching import (
    SwitchPolicy,
    hysteresis_switching,
    oracle_switching,
)
from repro.experiments.common import collect_conditions
from repro.tools.iperf import run_mptcp_test


@dataclass
class SwitchRow:
    label: str
    mean_mbps: float
    switches: int


@dataclass
class ExtSwitchingResult:
    rows_data: list[SwitchRow]

    def rows(self) -> list[tuple]:
        return [
            (r.label, round(r.mean_mbps, 1), r.switches) for r in self.rows_data
        ]

    def row(self, label: str) -> SwitchRow:
        for row in self.rows_data:
            if row.label == label:
                return row
        raise KeyError(label)


def run(
    duration_s: int = 120,
    seed: int = 11,
    segment_bytes: int = 6000,
    combo: tuple[str, str] = ("MOB", "VZ"),
    policy: SwitchPolicy | None = None,
) -> ExtSwitchingResult:
    """Price the zero-effort-switching assumption on one drive segment."""
    traces = collect_conditions(duration_s=duration_s, seed=seed)
    series = {
        name: fluid_udp_series(traces[name], downlink=True) for name in combo
    }

    rows = []
    best_single = max(series, key=lambda n: float(np.mean(series[n])))
    rows.append(
        SwitchRow(
            f"best single ({best_single})",
            float(np.mean(series[best_single])),
            0,
        )
    )
    switched = hysteresis_switching(series, policy)
    rows.append(
        SwitchRow("hysteresis switcher", switched.mean_mbps, switched.switches)
    )
    oracle = oracle_switching(series)
    rows.append(SwitchRow("oracle (Fig. 9)", oracle.mean_mbps, oracle.switches))
    mptcp = run_mptcp_test(
        {name: traces[name] for name in combo},
        duration_s=float(duration_s),
        buffer_segments=8192,
        segment_bytes=segment_bytes,
        seed=seed,
    )
    rows.append(SwitchRow("MPTCP (tuned)", mptcp.throughput_mbps, 0))
    return ExtSwitchingResult(rows_data=rows)
