"""Extension experiment: a LEO-aware MPTCP scheduler (paper future work).

Section 6 leaves "developing a MPTCP scheduler for LEO satellite
networks" as future work and names "reducing throughput fluctuations" as
the goal.  Our SatAware scheduler (BLEST + a guard window around the 15 s
reconfiguration grid) is compared against the stock schedulers on a
Starlink+cellular pair; the metrics are mean goodput and the per-second
throughput coefficient of variation (the fluctuation the paper wants
reduced).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import collect_conditions
from repro.tools.iperf import run_mptcp_test

SCHEDULERS = ("blest", "minrtt", "roundrobin", "sataware")


@dataclass
class SchedulerRow:
    name: str
    goodput_mbps: float
    fluctuation_cv: float  # std/mean of the per-second series


@dataclass
class ExtSchedulerResult:
    rows_data: list[SchedulerRow]

    def rows(self) -> list[tuple]:
        return [
            (r.name, round(r.goodput_mbps, 1), round(r.fluctuation_cv, 3))
            for r in self.rows_data
        ]

    def row(self, name: str) -> SchedulerRow:
        for row in self.rows_data:
            if row.name == name:
                return row
        raise KeyError(name)


def run(
    duration_s: int = 120,
    seed: int = 11,
    segment_bytes: int = 6000,
    buffer_segments: int = 8192,
    combo: tuple[str, str] = ("MOB", "VZ"),
) -> ExtSchedulerResult:
    """Compare MPTCP schedulers over the same Starlink+cellular traces."""
    traces = collect_conditions(duration_s=duration_s, seed=seed)
    pair = {name: traces[name] for name in combo}
    rows = []
    for scheduler in SCHEDULERS:
        result = run_mptcp_test(
            pair,
            duration_s=float(duration_s),
            scheduler=scheduler,
            buffer_segments=buffer_segments,
            segment_bytes=segment_bytes,
            seed=seed,
        )
        series = np.array(result.series_mbps[5:])  # skip slow-start ramp
        cv = float(series.std() / series.mean()) if series.mean() > 0 else float("inf")
        rows.append(
            SchedulerRow(
                name=scheduler,
                goodput_mbps=result.throughput_mbps,
                fluctuation_cv=cv,
            )
        )
    return ExtSchedulerResult(rows_data=rows)
