"""Core: fluid models, campaign orchestration, dataset, analysis, coverage."""

from repro.core.analysis import (
    SummaryStats,
    cdf,
    cdf_at,
    group_means,
    improvement_percent,
    speed_bucket,
)
from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    CampaignReport,
    DEFAULT_CYCLE,
    DriveFailure,
    TestKind,
    run_campaign,
)
from repro.core.coverage import (
    CoverageShares,
    LEVEL_EDGES_MBPS,
    PerformanceLevel,
    best_of,
    classify_level,
    coverage_shares,
    figure9_shares,
)
from repro.core.dataset import (
    CELLULAR_NETWORKS,
    DriveDataset,
    NETWORKS,
    STARLINK_NETWORKS,
    SecondSample,
    TestRecord,
)
from repro.core.stats import (
    ComparisonResult,
    ConfidenceInterval,
    block_bootstrap_ci,
    compare_networks,
    summarize_with_ci,
)
from repro.core.switching import (
    SwitchOutcome,
    SwitchPolicy,
    hysteresis_switching,
    oracle_switching,
)
from repro.core.fluid import (
    FluidTcp,
    fluid_tcp_retransmission_rate,
    fluid_tcp_series,
    fluid_udp_series,
    mathis_throughput_mbps,
)

__all__ = [
    "CELLULAR_NETWORKS",
    "Campaign",
    "CampaignConfig",
    "CampaignReport",
    "ComparisonResult",
    "ConfidenceInterval",
    "CoverageShares",
    "DEFAULT_CYCLE",
    "DriveDataset",
    "DriveFailure",
    "FluidTcp",
    "LEVEL_EDGES_MBPS",
    "NETWORKS",
    "PerformanceLevel",
    "STARLINK_NETWORKS",
    "SecondSample",
    "SummaryStats",
    "SwitchOutcome",
    "SwitchPolicy",
    "TestKind",
    "TestRecord",
    "best_of",
    "block_bootstrap_ci",
    "cdf",
    "cdf_at",
    "classify_level",
    "compare_networks",
    "coverage_shares",
    "fluid_tcp_retransmission_rate",
    "fluid_tcp_series",
    "fluid_udp_series",
    "figure9_shares",
    "group_means",
    "hysteresis_switching",
    "improvement_percent",
    "oracle_switching",
    "mathis_throughput_mbps",
    "run_campaign",
    "speed_bucket",
    "summarize_with_ci",
]
