"""Performance-coverage analysis (Section 5.2, Figure 9).

Groups per-second throughput samples into the paper's four performance
levels and computes, per network, the share of samples in each level.  Also
implements the paper's combination bars: ``BestCL`` (an MVNO picking the
best cellular carrier each second), ``RM+CL``/``MOB+CL`` (a user switching
freely between one Starlink plan and the best cellular network).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.dataset import CELLULAR_NETWORKS, DriveDataset


class PerformanceLevel(enum.Enum):
    """The paper's throughput bands (Mbps)."""

    VERY_LOW = "very-low"  # < 20
    LOW = "low"  # 20 - 50
    MEDIUM = "medium"  # 50 - 100
    HIGH = "high"  # > 100


#: Band edges in Mbps, matching Section 5.2's definitions.
LEVEL_EDGES_MBPS = (20.0, 50.0, 100.0)


def classify_level(throughput_mbps: float) -> PerformanceLevel:
    """Performance level of one throughput sample."""
    if throughput_mbps < 0:
        raise ValueError(f"throughput must be non-negative, got {throughput_mbps}")
    if throughput_mbps < LEVEL_EDGES_MBPS[0]:
        return PerformanceLevel.VERY_LOW
    if throughput_mbps < LEVEL_EDGES_MBPS[1]:
        return PerformanceLevel.LOW
    if throughput_mbps < LEVEL_EDGES_MBPS[2]:
        return PerformanceLevel.MEDIUM
    return PerformanceLevel.HIGH


@dataclass(frozen=True)
class CoverageShares:
    """Share of samples per performance level for one (possibly combined)
    network."""

    name: str
    very_low: float
    low: float
    medium: float
    high: float

    def share(self, level: PerformanceLevel) -> float:
        return {
            PerformanceLevel.VERY_LOW: self.very_low,
            PerformanceLevel.LOW: self.low,
            PerformanceLevel.MEDIUM: self.medium,
            PerformanceLevel.HIGH: self.high,
        }[level]

    @property
    def low_or_worse(self) -> float:
        """The paper's 'low and very-low' combined share."""
        return self.very_low + self.low


def coverage_shares(name: str, throughputs_mbps: list[float]) -> CoverageShares:
    """Level shares for one list of per-second samples."""
    if not throughputs_mbps:
        raise ValueError(f"{name}: no samples to classify")
    counts = {level: 0 for level in PerformanceLevel}
    for value in throughputs_mbps:
        counts[classify_level(value)] += 1
    total = len(throughputs_mbps)
    return CoverageShares(
        name=name,
        very_low=counts[PerformanceLevel.VERY_LOW] / total,
        low=counts[PerformanceLevel.LOW] / total,
        medium=counts[PerformanceLevel.MEDIUM] / total,
        high=counts[PerformanceLevel.HIGH] / total,
    )


def _aligned_samples(
    dataset: DriveDataset, networks: list[str], protocol: str, direction: str
) -> dict[str, list[float]]:
    """Per-network per-second throughput, aligned across networks.

    Campaign tests run simultaneously on all devices, so records with the
    same ``test_id`` window share timestamps; alignment pairs the i-th
    second of each network's record within each window.
    """
    subset = dataset.filter(protocol=protocol, direction=direction)
    by_window: dict[tuple[int, float], dict[str, list[float]]] = {}
    for rec in subset.records:
        if rec.network not in networks or not rec.samples:
            continue
        key = (rec.drive_id, rec.samples[0].time_s)
        by_window.setdefault(key, {})[rec.network] = [
            s.throughput_mbps for s in rec.samples
        ]
    out: dict[str, list[float]] = {n: [] for n in networks}
    for window in by_window.values():
        if len(window) != len(networks):
            continue  # a device missed this window
        length = min(len(v) for v in window.values())
        for network in networks:
            out[network].extend(window[network][:length])
    return out


def best_of(
    dataset: DriveDataset,
    networks: list[str],
    protocol: str = "udp",
    direction: str = "dl",
) -> list[float]:
    """Per-second max across networks — the zero-effort switching oracle."""
    aligned = _aligned_samples(dataset, networks, protocol, direction)
    lengths = {len(v) for v in aligned.values()}
    if len(lengths) != 1:
        raise RuntimeError("alignment produced ragged series")
    columns = [aligned[n] for n in networks]
    return [max(values) for values in zip(*columns, strict=True)]


def figure9_shares(
    dataset: DriveDataset, protocol: str = "udp", direction: str = "dl"
) -> list[CoverageShares]:
    """All eight Figure 9 bars, in the paper's order."""
    cl = list(CELLULAR_NETWORKS)

    def single(network: str) -> CoverageShares:
        samples = dataset.filter(
            network=network, protocol=protocol, direction=direction
        ).throughput_samples()
        return coverage_shares(network, samples)

    def combo(name: str, networks: list[str]) -> CoverageShares:
        return coverage_shares(
            name, best_of(dataset, networks, protocol, direction)
        )

    return [
        single("ATT"),
        single("TM"),
        single("VZ"),
        combo("BestCL", cl),
        single("RM"),
        combo("RM+CL", ["RM", *cl]),
        single("MOB"),
        combo("MOB+CL", ["MOB", *cl]),
    ]
