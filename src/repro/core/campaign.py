"""Campaign orchestration: drives, simultaneous device tests, dataset.

Reproduces the paper's data-collection methodology (Section 3.3): a fleet
of one vehicle carrying two Starlink dishes (Roam + Mobility) and three
phones (AT&T, T-Mobile, Verizon) drives routes across five synthetic
states; at scheduled windows all five devices run the same network test
simultaneously (the paper's apples-to-apples setup), while a 5G-Tracker
logger records metadata continuously.

The orchestration is resilient the way a month-long field campaign has to
be: drives are isolated (one drive blowing up becomes a structured
:class:`DriveFailure`, not a lost campaign), progress is checkpointed to
JSON after every drive so an interrupted run resumes from the last
completed drive, and a :class:`CampaignReport` records failures, injected
faults, and resumed state.  Fault injection itself lives in
:mod:`repro.faults` and composes over the channels from the outside.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field

from repro.cellular.carriers import carrier_by_short_name
from repro.cellular.channel import CellularChannel
from repro.core.dataset import (
    CELLULAR_NETWORKS,
    DriveDataset,
    NETWORKS,
    STARLINK_NETWORKS,
    SecondSample,
    TestRecord,
    record_from_dict,
    record_to_dict,
)
from repro.core.fluid import FluidTcp
from repro.faults import FaultInjector, FaultKind, FaultSchedule
from repro.faults.injector import aggregate_fault_stats
from repro.geo.classify import AreaClassifier, AreaType
from repro.geo.coords import GeoPoint
from repro.geo.mobility import VehicleTrace
from repro.geo.places import PlaceDatabase
from repro.geo.routes import Route, RouteGenerator
from repro.leo.channel import StarlinkChannel
from repro.leo.constellation import Constellation
from repro.leo.dish import dish_for_plan, DishPlan
from repro.leo.gateway import GatewayNetwork
from repro.obs.manifest import RunManifest
from repro.obs.recorder import ObsRecorder, get_recorder
from repro.resilience import (
    ATTEMPT_BUCKETS,
    CampaignAborted,
    CheckpointCorruptError,
    DIGEST_KEY,
    FailureClass,
    ResilienceConfig,
    ResilienceReport,
    classify_exception,
    embed_digest,
    graceful_shutdown,
    quarantine,
    salvage_drives,
    verify_digest,
)
from repro.rng import RngStreams
from repro.store import DriveCache, ShardStore
from repro.store.commit import atomic_write_json
from repro.tools.tracker import Tracker

#: Devices the vehicle carries (5 networks measured at once).
DEVICES_PER_VEHICLE = len(NETWORKS)

#: Test-id block reserved per drive.  Drive ``k`` numbers its tests from
#: ``k * TEST_ID_STRIDE``, so a drive's records (including the per-test
#: fluid-model seeds derived from test ids) are identical whether earlier
#: drives succeeded, failed, or were restored from a checkpoint.
TEST_ID_STRIDE = 100_000

#: iPerf-style UDP overdrive: the sender's constant offered load sits
#: ~20% above its running estimate of the link rate.
UDP_OVERDRIVE = 1.2

#: Checkpoint schema version.  v2 added content digests (whole-file and
#: per-drive), which is what makes corruption detectable and salvage
#: possible; v1 files fail the version check with a clear message.
CHECKPOINT_VERSION = 2

#: Bucket bounds for the per-drive wall-clock histogram.
DRIVE_SECONDS_BUCKETS = (0.1, 0.5, 1, 5, 10, 60, 300, 1800)


@dataclass(frozen=True)
class TestKind:
    """One entry of the test schedule."""

    protocol: str  # "tcp" | "udp" | "ping"
    direction: str  # "dl" | "ul"
    parallel: int = 1

    def __post_init__(self) -> None:
        if self.protocol not in ("tcp", "udp", "ping"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.direction not in ("dl", "ul"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {self.parallel}")


#: Default test cycle: weighted toward the UDP/TCP downlink tests the
#: paper's distribution figures are built from, with uplink, latency, and
#: parallelism tests interleaved (Sections 4.1-4.2).
DEFAULT_CYCLE = (
    TestKind("udp", "dl"),
    TestKind("tcp", "dl"),
    TestKind("udp", "ul"),
    TestKind("ping", "dl"),
    TestKind("udp", "dl"),
    TestKind("tcp", "dl", parallel=4),
    TestKind("udp", "dl"),
    TestKind("tcp", "dl", parallel=8),
)


@dataclass
class CampaignConfig:
    """Knobs for one campaign."""

    seed: int = 0
    #: Interstate drives (metro to metro), city loops, and suburban rings.
    num_interstate_drives: int = 1
    num_city_drives: int = 1
    num_ring_drives: int = 0
    #: Cap per-drive duration (seconds); None drives the full route.
    max_drive_seconds: float | None = 2400.0
    #: Length of each test window (the paper's bulk tests are ~60 s).
    test_duration_s: float = 60.0
    #: Seconds from one window start to the next (gap = period - duration).
    window_period_s: float = 75.0
    cycle: tuple[TestKind, ...] = field(default_factory=lambda: DEFAULT_CYCLE)
    #: City-loop route size (segments) — bigger means more urban samples.
    city_loop_segments: int = 30
    #: Optional deterministic fault schedule (see :mod:`repro.faults`).
    fault_schedule: FaultSchedule | None = None
    #: Worker processes for drive execution.  ``1`` runs drives serially
    #: in-process; ``N > 1`` shards drives across a process pool (see
    #: :mod:`repro.core.parallel_campaign`).  Execution-only knob: it is
    #: excluded from :meth:`fingerprint` because any worker count
    #: produces byte-identical output.
    workers: int = 1
    #: Self-healing execution (per-drive retries; watchdog for parallel
    #: runs — see :mod:`repro.resilience`).  ``None`` keeps the bare
    #: fail-once behaviour.  Execution-only like ``workers``: excluded
    #: from :meth:`fingerprint` because retried and watchdog-healed runs
    #: are byte-identical to untouched ones.
    resilience: ResilienceConfig | None = None
    #: How ``checkpoint_path`` is laid out: ``"json"`` keeps the legacy
    #: monolithic checkpoint file; ``"jsonl"`` makes it a
    #: :class:`repro.store.ShardStore` directory of digest-chained
    #: per-drive shards that stream as tests complete (see
    #: ``docs/ARTIFACTS.md``).  Execution-only knob like ``workers``:
    #: excluded from :meth:`fingerprint` because both formats hold the
    #: byte-identical payloads.
    artifact_format: str = "json"
    #: Optional content-addressed result cache
    #: (:class:`repro.store.DriveCache`).  Drives already cached under
    #: ``(fingerprint(), drive_id)`` are restored instead of recomputed;
    #: entries are integrity-verified on read.  Execution-only knob:
    #: excluded from :meth:`fingerprint` because cached and recomputed
    #: payloads are byte-identical.
    cache_dir: str | None = None
    #: Vectorized hot path (:mod:`repro.core.fastpath`): precomputed
    #: mobility route tables and per-drive satellite geometry timelines
    #: replace the per-sample recomputation.  Execution-only knob like
    #: ``workers``: excluded from :meth:`fingerprint` because both paths
    #: produce byte-identical datasets, checkpoints, and manifests
    #: (``tests/test_fastpath_equivalence.py``); ``False`` runs the
    #: legacy per-sample reference path.
    fastpath: bool = True

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        for name in ("num_interstate_drives", "num_city_drives", "num_ring_drives"):
            count = getattr(self, name)
            if count < 0:
                raise ValueError(f"{name} must be non-negative, got {count}")
        if self.max_drive_seconds is not None and self.max_drive_seconds <= 0:
            raise ValueError(
                f"max_drive_seconds must be positive or None, got {self.max_drive_seconds}"
            )
        if self.test_duration_s <= 0:
            raise ValueError(
                f"test_duration_s must be positive, got {self.test_duration_s}"
            )
        if self.window_period_s <= 0:
            raise ValueError(
                f"window_period_s must be positive, got {self.window_period_s}"
            )
        if not self.cycle:
            raise ValueError("cycle must contain at least one TestKind")
        for kind in self.cycle:
            if not isinstance(kind, TestKind):
                raise ValueError(f"cycle entries must be TestKind, got {kind!r}")
        if self.city_loop_segments < 1:
            raise ValueError(
                f"city_loop_segments must be >= 1, got {self.city_loop_segments}"
            )
        if self.fault_schedule is not None and not isinstance(
            self.fault_schedule, FaultSchedule
        ):
            raise ValueError(
                f"fault_schedule must be a FaultSchedule, got {type(self.fault_schedule)}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceConfig
        ):
            raise ValueError(
                f"resilience must be a ResilienceConfig, got {type(self.resilience)}"
            )
        if self.artifact_format not in ("json", "jsonl"):
            raise ValueError(
                f"artifact_format must be 'json' or 'jsonl', "
                f"got {self.artifact_format!r}"
            )
        if self.cache_dir is not None:
            self.cache_dir = os.fspath(self.cache_dir)
        if not isinstance(self.fastpath, bool):
            raise ValueError(f"fastpath must be a bool, got {self.fastpath!r}")

    @property
    def num_drives(self) -> int:
        return (
            self.num_interstate_drives + self.num_city_drives + self.num_ring_drives
        )

    def fingerprint(self) -> str:
        """Stable content hash: guards checkpoint/config mismatches.

        Covers every knob that shapes the dataset; ``workers``,
        ``resilience``, ``artifact_format``, ``cache_dir``, and
        ``fastpath`` are deliberately excluded — they are execution
        knobs, so a checkpoint written by a serial run resumes under any
        worker count, retry/watchdog setting, artifact layout, cache
        configuration, or hot-path implementation (and vice versa), and
        cached results address the same key whatever execution shape
        produced them.
        """
        payload = {
            "seed": self.seed,
            "num_interstate_drives": self.num_interstate_drives,
            "num_city_drives": self.num_city_drives,
            "num_ring_drives": self.num_ring_drives,
            "max_drive_seconds": self.max_drive_seconds,
            "test_duration_s": self.test_duration_s,
            "window_period_s": self.window_period_s,
            "cycle": [[k.protocol, k.direction, k.parallel] for k in self.cycle],
            "city_loop_segments": self.city_loop_segments,
            "fault_schedule": (
                self.fault_schedule.to_json() if self.fault_schedule else None
            ),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "CampaignConfig":
        """A campaign matching the paper's totals (~3,800 km, ~1,239 tests).

        Ten long drives with sparse test windows: the paper tested
        periodically across a month of driving, not back to back.
        """
        return cls(
            seed=seed,
            num_interstate_drives=6,
            num_city_drives=4,
            num_ring_drives=7,
            max_drive_seconds=None,
            test_duration_s=60.0,
            window_period_s=760.0,
            city_loop_segments=150,
        )

    @classmethod
    def small(cls, seed: int = 0, drives: int = 1) -> "CampaignConfig":
        """Capped interstate drives crossing urban/suburban/rural.

        The ``"small"`` scale of :mod:`repro.experiments.common`, exposed
        here so scripts (and the observability examples) can build it
        without importing the experiments layer.  ``drives`` scales the
        number of interstate drives (each with its own route); the
        parallel-equivalence tests and scaling benchmark use ``drives=4``.
        """
        return cls(
            seed=seed,
            num_interstate_drives=drives,
            num_city_drives=0,
            max_drive_seconds=3900.0,
            test_duration_s=30.0,
            window_period_s=60.0,
        )

    @classmethod
    def smoke(cls, seed: int = 0) -> "CampaignConfig":
        """Tiny campaign for unit tests."""
        return cls(
            seed=seed,
            num_interstate_drives=1,
            num_city_drives=0,
            max_drive_seconds=420.0,
            test_duration_s=30.0,
            window_period_s=35.0,
        )


@dataclass(frozen=True)
class DriveFailure:
    """One drive that blew up: captured, logged, and skipped."""

    drive_id: int
    route_name: str
    error_type: str
    message: str
    traceback: str = ""

    @classmethod
    def from_exception(
        cls, drive_id: int, route_name: str, exc: BaseException
    ) -> "DriveFailure":
        return cls(
            drive_id=drive_id,
            route_name=route_name,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(exc)
            )[-4000:],
        )

    def to_dict(self) -> dict:
        return {
            "drive_id": self.drive_id,
            "route_name": self.route_name,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclass
class CampaignReport:
    """What actually happened during a campaign run.

    Surfaces the resilience machinery: per-drive failures (drives the
    dataset is missing), fault-injection totals, and whether/how much of
    the run was restored from a checkpoint.
    """

    drives_total: int = 0
    drives_completed: int = 0
    drives_resumed: int = 0
    failures: list[DriveFailure] = field(default_factory=list)
    #: fault-kind value -> seconds any link spent under that fault.
    fault_seconds: dict[str, int] = field(default_factory=dict)
    #: Seconds forced to full outage by blackout faults (all links).
    fault_outage_seconds: int = 0
    #: fault-kind value -> number of scheduled events (0 when no schedule).
    scheduled_faults: dict[str, int] = field(default_factory=dict)
    num_tests: int = 0
    checkpoint_path: str | None = None
    #: :meth:`repro.resilience.ResilienceReport.to_dict`: retries,
    #: watchdog kills, integrity failures, salvage.  All-zero on a run
    #: that needed no healing.
    resilience: dict = field(default_factory=dict)

    @property
    def drives_failed(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        """True when every drive completed."""
        return self.drives_completed == self.drives_total

    def to_dict(self) -> dict:
        return {
            "drives_total": self.drives_total,
            "drives_completed": self.drives_completed,
            "drives_resumed": self.drives_resumed,
            "drives_failed": self.drives_failed,
            "failures": [f.to_dict() for f in self.failures],
            # Sorted by fault kind: the aggregation loop builds these in
            # payload-encounter order, which depends on which drive hit
            # which fault first — equal totals must serialize equally.
            "fault_seconds": {
                kind: self.fault_seconds[kind]
                for kind in sorted(self.fault_seconds)
            },
            "fault_outage_seconds": self.fault_outage_seconds,
            "scheduled_faults": {
                kind: self.scheduled_faults[kind]
                for kind in sorted(self.scheduled_faults)
            },
            "num_tests": self.num_tests,
            "checkpoint_path": self.checkpoint_path,
            "resilience": dict(self.resilience),
        }

    def save_json(self, path: str | os.PathLike) -> None:
        atomic_write_json(path, self.to_dict(), indent=2, boundary="report")


class Campaign:
    """Builds the world once, then simulates every drive.

    ``recorder`` threads a :mod:`repro.obs` recorder through every layer
    the campaign owns (channels, fault injectors, the orchestration loop
    itself); omitted, it resolves the process-wide default — a
    :class:`~repro.obs.recorder.NullRecorder` unless something installed
    one — so instrumentation costs nothing and changes nothing unless
    observability is switched on.
    """

    def __init__(self, config: CampaignConfig | None = None, recorder=None):
        self.config = config or CampaignConfig()
        self.obs = recorder if recorder is not None else get_recorder()
        self.rng = RngStreams(self.config.seed)
        self.places = PlaceDatabase.synthetic(self.rng)
        self.classifier = AreaClassifier(self.places)
        self.constellation = Constellation()
        self.gateways = GatewayNetwork.synthetic(self.places, self.rng)
        self.route_generator = RouteGenerator(self.places, self.rng)
        #: Filled by :meth:`run`.
        self.report: CampaignReport | None = None
        #: Filled by :meth:`run` when the recorder is enabled.
        self.manifest: RunManifest | None = None
        #: Per-drive wall-clock rows for the manifest.
        self._drive_rows: list[dict] = []
        #: Which attempt of the current drive is running (0-based).
        #: Maintained by the retry machinery; fault hooks and tests key
        #: attempt-dependent behaviour off it.
        self.current_attempt = 0
        #: What the self-healing machinery did this run (see
        #: :class:`repro.resilience.ResilienceReport`).
        self._resilience = ResilienceReport()
        #: Sharded artifact store when ``artifact_format == "jsonl"``
        #: and a checkpoint path is in play; set by :meth:`run` (and by
        #: the parallel executors in their workers).  ``None`` keeps the
        #: legacy monolithic checkpoint writer.
        self._shard_store: ShardStore | None = None
        #: Content-addressed drive cache when ``cache_dir`` is set.
        self._cache: DriveCache | None = None
        #: Monolithic checkpoint path when no shard store is in play.
        self._checkpoint_path: str | None = None
        #: Config fingerprint, cached for the artifact writers.
        self._fingerprint = self.config.fingerprint()

    # -- public API -----------------------------------------------------

    def run(
        self,
        checkpoint_path: str | os.PathLike | None = None,
        manifest_path: str | os.PathLike | None = None,
    ) -> DriveDataset:
        """Simulate the whole campaign and return the dataset.

        With ``checkpoint_path``, progress is written there after every
        drive and a matching checkpoint found at start resumes the run
        from the last completed drive.  Per-drive results are independent
        (seeds and test ids are derived per drive), so a resumed campaign
        produces a dataset identical to an uninterrupted one.

        A drive that raises is captured as a :class:`DriveFailure` in
        :attr:`report` and the campaign continues with the next drive.

        With ``config.workers > 1`` drives are sharded across a process
        pool (:mod:`repro.core.parallel_campaign`) and merged in drive
        order; dataset, checkpoint, and report are byte-identical to a
        serial run, whatever the worker count.

        With an enabled recorder, a :class:`RunManifest` (config
        fingerprint, versions, per-drive timings, metric snapshot) is
        written to ``manifest_path`` — defaulting to
        ``<checkpoint_path>.manifest.json`` next to the checkpoint —
        and kept on :attr:`manifest`.
        """
        cfg = self.config
        fingerprint = cfg.fingerprint()
        obs = self.obs
        self._drive_rows = []
        self._resilience = ResilienceReport()
        self._fingerprint = fingerprint
        self._open_store(checkpoint_path, fingerprint)
        self._cache = DriveCache(cfg.cache_dir) if cfg.cache_dir else None

        with obs.span("campaign.run", fingerprint=fingerprint), graceful_shutdown() as shutdown:
            routes = self._routes()

            drive_payloads: dict[int, dict] = {}
            resumed = 0
            if checkpoint_path is not None and os.path.exists(checkpoint_path):
                drive_payloads = self._resume(checkpoint_path, fingerprint)
                resumed = len(drive_payloads)
                obs.counter("campaign.drives_resumed").inc(resumed)
                for drive_id in sorted(drive_payloads):
                    self._note_drive_resumed(
                        drive_id, routes[drive_id].name, drive_payloads[drive_id]
                    )

            cached = self._restore_from_cache(routes, drive_payloads, fingerprint)
            if (
                checkpoint_path is not None
                and self._shard_store is not None
                and (resumed or cached)
                and drive_payloads
            ):
                # Re-seed the store so migrated, salvaged, and cached
                # drives are durably committed before execution starts.
                self._commit_progress(drive_payloads)

            if cfg.workers > 1:
                if cfg.resilience is not None:
                    from repro.resilience.pool import run_drives_supervised

                    failures = run_drives_supervised(
                        self,
                        routes,
                        drive_payloads,
                        checkpoint_path,
                        fingerprint,
                        shutdown=shutdown,
                    )
                else:
                    from repro.core.parallel_campaign import run_drives_parallel

                    failures = run_drives_parallel(
                        self,
                        routes,
                        drive_payloads,
                        checkpoint_path,
                        fingerprint,
                        shutdown=shutdown,
                    )
            else:
                failures = self._run_drives_serial(
                    routes, drive_payloads, checkpoint_path, fingerprint, shutdown
                )

            dataset = self._assemble(
                routes, drive_payloads, failures, resumed, checkpoint_path
            )

        if obs.enabled:
            if manifest_path is None and checkpoint_path is not None:
                manifest_path = f"{os.fspath(checkpoint_path)}.manifest.json"
            self.manifest = RunManifest.from_recorder(
                obs,
                fingerprint,
                drives=sorted(self._drive_rows, key=lambda row: row["drive"]),
                artifacts=(
                    self._shard_store.artifact_index()
                    if self._shard_store is not None
                    else None
                ),
                num_tests=dataset.num_tests,
                distance_km=round(dataset.distance_km, 3),
                trace_minutes=round(dataset.trace_minutes, 3),
                drives_total=len(routes),
                drives_failed=len(failures),
                drives_resumed=resumed,
            )
            if manifest_path is not None:
                self.manifest.save_json(manifest_path)
        return dataset

    # -- internals ---------------------------------------------------------

    def _open_store(
        self, checkpoint_path: str | os.PathLike | None, fingerprint: str
    ) -> None:
        """Decide the artifact layout for this run.

        ``artifact_format == "jsonl"`` opens a :class:`ShardStore` at
        the checkpoint path; so does an existing store *directory*
        regardless of the configured format (a store, once sharded,
        stays readable).  Everything else keeps the legacy monolithic
        checkpoint writer.
        """
        self._shard_store = None
        self._checkpoint_path = None
        if checkpoint_path is None:
            return
        path = os.fspath(checkpoint_path)
        if self.config.artifact_format == "jsonl" or os.path.isdir(path):
            self._shard_store = ShardStore(path, fingerprint)
        else:
            self._checkpoint_path = path

    def _resume(
        self, checkpoint_path: str | os.PathLike, fingerprint: str
    ) -> dict[int, dict]:
        """Restore completed drives from whatever exists at the path."""
        obs = self.obs
        with obs.span("campaign.resume"):
            if self._shard_store is None:
                try:
                    return _load_checkpoint(checkpoint_path, fingerprint)
                except CheckpointCorruptError as exc:
                    return self._salvage_checkpoint(
                        checkpoint_path, fingerprint, exc
                    )
            path = os.fspath(checkpoint_path)
            if os.path.isfile(path):
                return self._migrate_legacy_checkpoint(path, fingerprint)
            return self._load_store(fingerprint)

    def _migrate_legacy_checkpoint(
        self, path: str, fingerprint: str
    ) -> dict[int, dict]:
        """A monolithic checkpoint file sits where the store goes.

        Load it through the legacy reader (salvage included), move the
        file aside to ``<path>.legacy.json``, and let the caller commit
        the restored drives into the fresh store directory — old
        checkpoints stay readable and upgrade in place.
        """
        from repro.store.commit import fsync_dir

        try:
            payloads = _load_checkpoint(path, fingerprint)
        except CheckpointCorruptError as exc:
            # Quarantines the file itself, freeing the store's name.
            return self._salvage_checkpoint(path, fingerprint, exc)
        legacy = f"{path}.legacy.json"
        os.replace(path, legacy)
        fsync_dir(os.path.dirname(os.path.abspath(path)))
        return payloads

    def _load_store(self, fingerprint: str) -> dict[int, dict]:
        """Recover the shard store, folding repairs into the report."""
        obs = self.obs
        store = self._shard_store
        raw, recovery = store.load()
        if recovery.manifest_quarantined is not None:
            self._resilience.integrity_failures += 1
            self._resilience.checkpoint_quarantined = recovery.manifest_quarantined
            self._resilience.checkpoint_error = recovery.manifest_error
            obs.counter(
                "resilience.integrity_failures", artifact="checkpoint"
            ).inc()
            # The manifest is gone, but intact shards are self-proving
            # (chain + end line).  Without observability they restore
            # directly; an observed run recomputes them instead, because
            # their metric snapshots lived in the lost manifest and a
            # resumed run must still produce the clean-run manifest.
            if not obs.enabled:
                raw = self._adopt_orphan_shards(store)
        if recovery.shards_quarantined:
            count = len(recovery.shards_quarantined)
            self._resilience.integrity_failures += count
            obs.counter(
                "resilience.integrity_failures", artifact="shard"
            ).inc(count)
        if recovery.wal_records_salvaged:
            obs.counter("store.wal_records_salvaged").inc(
                recovery.wal_records_salvaged
            )
        if (
            recovery.manifest_quarantined is not None
            or recovery.shards_quarantined
        ):
            self._resilience.drives_salvaged += len(raw)
            obs.counter("resilience.drives_salvaged").inc(len(raw))
        return {
            drive_id: _payload_from_raw(payload)
            for drive_id, payload in raw.items()
        }

    def _adopt_orphan_shards(self, store: ShardStore) -> dict[int, dict]:
        """Strictly re-verified shards from a store with no manifest."""
        from repro.store import read_shard, shard_name
        from repro.store.shard import ShardCorruptError

        raw: dict[int, dict] = {}
        adopted: dict[int, dict] = {}
        for drive_id in range(self.config.num_drives):
            path = os.path.join(store.root, shard_name(drive_id))
            if not os.path.exists(path):
                continue
            try:
                data = read_shard(
                    path, fingerprint=store.fingerprint, drive_id=drive_id
                )
            except ShardCorruptError:
                continue  # recomputed; commit() will overwrite it
            payload = dict(data.meta)
            payload["records"] = data.records
            raw[drive_id] = payload
            adopted[drive_id] = {
                "shard": shard_name(drive_id),
                "records": len(data.records),
                "head": data.head,
            }
        store._entries.update(adopted)
        return raw

    def _restore_from_cache(
        self, routes: list[Route], drive_payloads: dict[int, dict], fingerprint: str
    ) -> int:
        """Fill not-yet-completed drives from the content-addressed cache.

        Every entry is integrity-verified by the cache itself; a
        damaged one is quarantined and the drive recomputes — a cache
        can save work, never serve corrupt results.  Entries written by
        an unobserved run carry no metric snapshot, so an *observed*
        run treats them as misses (the deterministic manifest must
        match a clean observed run's).
        """
        cache = self._cache
        if cache is None:
            return 0
        obs = self.obs
        hits = 0
        with obs.span("campaign.cache"):
            for drive_id, route in enumerate(routes):
                if drive_id in drive_payloads:
                    continue
                raw, quarantined = cache.get(fingerprint, drive_id)
                if quarantined is not None:
                    self._resilience.integrity_failures += 1
                    obs.counter(
                        "resilience.integrity_failures", artifact="cache"
                    ).inc()
                    obs.counter("store.cache_quarantined").inc()
                if raw is None or (obs.enabled and not raw.get("metrics")):
                    obs.counter("store.cache_misses").inc()
                    continue
                payload = _payload_from_raw(raw)
                drive_payloads[drive_id] = payload
                hits += 1
                obs.counter("store.cache_hits").inc()
                self._note_drive_resumed(drive_id, route.name, payload)
        return hits

    def _commit_progress(self, drive_payloads: dict[int, dict]) -> None:
        """Durably persist completed drives through the active layout."""
        obs = self.obs
        if self._shard_store is not None:
            with obs.span("campaign.checkpoint"):
                self._shard_store.commit(drive_payloads, _records_to_jsonable)
        elif self._checkpoint_path is not None:
            with obs.span("campaign.checkpoint"):
                _write_checkpoint(
                    self._checkpoint_path, self._fingerprint, drive_payloads
                )

    def _cache_put(self, drive_id: int, payload: dict) -> None:
        """Store one freshly computed drive in the cache (if configured)."""
        if self._cache is None:
            return
        records = [record_to_dict(r) for r in payload["records"]]
        meta = {k: v for k, v in payload.items() if k != "records"}
        self._cache.put(self._fingerprint, drive_id, records, meta)
        self.obs.counter("store.cache_writes").inc()

    def _salvage_checkpoint(
        self,
        checkpoint_path: str | os.PathLike,
        fingerprint: str,
        exc: CheckpointCorruptError,
    ) -> dict[int, dict]:
        """Quarantine a corrupt checkpoint and resume from what survives.

        The damaged file moves to ``<path>.corrupt`` (freeing the
        original name for fresh checkpoints), every drive whose own
        digest still verifies is restored, and the rest re-simulate —
        a corrupted checkpoint costs the damaged drives, not the run.
        """
        obs = self.obs
        corrupt_path = quarantine(checkpoint_path)
        raw = salvage_drives(corrupt_path, fingerprint)
        drive_payloads = {
            drive_id: {
                **drive,
                "records": [record_from_dict(r) for r in drive["records"]],
            }
            for drive_id, drive in raw.items()
        }
        self._resilience.integrity_failures += 1
        self._resilience.checkpoint_quarantined = corrupt_path
        self._resilience.checkpoint_error = str(exc)[:500]
        self._resilience.drives_salvaged = len(drive_payloads)
        obs.counter("resilience.integrity_failures", artifact="checkpoint").inc()
        obs.counter("resilience.drives_salvaged").inc(len(drive_payloads))
        return drive_payloads

    def _run_drives_serial(
        self,
        routes: list[Route],
        drive_payloads: dict[int, dict],
        checkpoint_path: str | os.PathLike | None,
        fingerprint: str,
        shutdown=None,
    ) -> list[DriveFailure]:
        """Run every not-yet-completed drive in this process, in order."""
        obs = self.obs
        failures: list[DriveFailure] = []
        for drive_id, route in enumerate(routes):
            if drive_id in drive_payloads:
                continue
            if self.config.resilience is not None:
                payload, failure = self._attempt_drive_with_retry(
                    drive_id, route
                )
                if payload is not None:
                    drive_payloads[drive_id] = payload
                else:
                    failures.append(failure)
                    obs.counter("campaign.drives_failed").inc()
            else:
                started = time.perf_counter()
                scratch = ObsRecorder() if obs.enabled else obs
                try:
                    with obs.span(
                        "campaign.drive", drive=drive_id, route=route.name
                    ):
                        previous_obs, self.obs = self.obs, scratch
                        try:
                            payload = self._simulate_drive(drive_id, route)
                        finally:
                            self.obs = previous_obs
                except Exception as exc:  # isolation is the point
                    failures.append(
                        DriveFailure.from_exception(drive_id, route.name, exc)
                    )
                    obs.counter("campaign.drives_failed").inc()
                else:
                    if obs.enabled:
                        # The per-drive metric delta rides in the payload
                        # (and hence the checkpoint), so a resumed drive
                        # can restore the metrics it would have produced.
                        payload["metrics"] = scratch.registry.snapshot()
                        obs.registry.merge(payload["metrics"])
                    drive_payloads[drive_id] = payload
                    self._note_drive_done(
                        drive_id,
                        route.name,
                        time.perf_counter() - started,
                        len(payload["records"]),
                        payload=payload,
                    )
            if checkpoint_path is not None:
                self._commit_progress(drive_payloads)
            if shutdown is not None and shutdown.requested:
                raise CampaignAborted(
                    f"shutdown requested (signal {shutdown.signum}); "
                    f"{len(drive_payloads)} drives checkpointed"
                )
        return failures

    def _attempt_drive_with_retry(
        self, drive_id: int, route: Route
    ) -> tuple[dict | None, DriveFailure | None]:
        """One drive under the retry policy: ``(payload, None)`` on
        success, ``(None, failure)`` once the budget is spent.

        Each attempt runs under a scratch recorder; only the successful
        attempt's metrics merge into the campaign registry (in drive
        order, exactly like the parallel pool), so abandoned attempts
        leave no trace in deterministic artifacts.  The drive itself is
        a pure function of ``(config, drive_id)``, so a retried drive's
        payload is byte-identical to an untouched run's.
        """
        policy = self.config.resilience.retry
        obs = self.obs
        jitter_rng = (
            self.rng.get(f"resilience.retry.{drive_id}") if policy.jitter else None
        )
        attempt = 0
        while True:
            scratch = ObsRecorder() if obs.enabled else self.obs
            previous_obs, self.obs = self.obs, scratch
            self.current_attempt = attempt
            started = time.perf_counter()
            try:
                payload = self._simulate_drive(drive_id, route)
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                self.obs = previous_obs
                if (
                    classify_exception(exc) is FailureClass.TRANSIENT
                    and attempt + 1 < policy.max_attempts
                ):
                    attempt += 1
                    self._resilience.retries += 1
                    obs.counter(
                        "resilience.retries", kind=type(exc).__name__
                    ).inc()
                    delay = policy.delay_s(attempt, jitter_rng)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                obs.histogram(
                    "resilience.drive_attempts", buckets=ATTEMPT_BUCKETS
                ).observe(attempt + 1)
                return None, DriveFailure.from_exception(
                    drive_id, route.name, exc
                )
            else:
                self.obs = previous_obs
                elapsed = time.perf_counter() - started
                if obs.enabled:
                    payload["metrics"] = scratch.registry.snapshot()
                    obs.registry.merge(payload["metrics"])
                    obs.tracer.record(
                        "campaign.drive",
                        elapsed,
                        drive=drive_id,
                        route=route.name,
                    )
                obs.histogram(
                    "resilience.drive_attempts", buckets=ATTEMPT_BUCKETS
                ).observe(attempt + 1)
                self._note_drive_done(
                    drive_id,
                    route.name,
                    elapsed,
                    len(payload["records"]),
                    payload=payload,
                )
                return payload, None

    def _note_drive_done(
        self,
        drive_id: int,
        route_name: str,
        elapsed: float,
        tests: int,
        payload: dict | None = None,
    ) -> None:
        """Per-drive completion bookkeeping, shared by serial and parallel
        execution so both produce the same counters, histogram, gauges,
        and manifest rows.  ``payload`` (when the caller has it) feeds
        the content-addressed cache: only freshly *computed* drives are
        written back — resumed and cache-restored drives never are."""
        obs = self.obs
        if payload is not None:
            self._cache_put(drive_id, payload)
        obs.counter("campaign.drives_completed").inc()
        obs.counter("campaign.tests").inc(tests)
        obs.histogram(
            "campaign.drive_seconds", buckets=DRIVE_SECONDS_BUCKETS
        ).observe(elapsed)
        obs.gauge("campaign.tests_per_s", drive=str(drive_id)).set(
            tests / elapsed if elapsed > 0 else 0.0
        )
        if obs.enabled:
            self._drive_rows.append(
                {
                    "drive": drive_id,
                    "route": route_name,
                    "duration_s": elapsed,
                    "tests": tests,
                }
            )

    def _note_drive_resumed(
        self, drive_id: int, route_name: str, payload: dict
    ) -> None:
        """Completion bookkeeping for a drive restored from checkpoint.

        The dataset-facing counters, the drive's own metric snapshot
        (carried in its checkpoint entry), and the manifest row are
        identical to a fresh execution — a resumed or salvaged run must
        agree with a clean one on the deterministic manifest view — but
        no wall-clock series are touched: the drive did not run here.
        """
        obs = self.obs
        tests = len(payload["records"])
        if obs.enabled and payload.get("metrics"):
            obs.registry.merge(payload["metrics"])
        obs.counter("campaign.drives_completed").inc()
        obs.counter("campaign.tests").inc(tests)
        if obs.enabled:
            self._drive_rows.append(
                {
                    "drive": drive_id,
                    "route": route_name,
                    "duration_s": 0.0,
                    "tests": tests,
                }
            )

    def _assemble(
        self,
        routes: list[Route],
        drive_payloads: dict[int, dict],
        failures: list[DriveFailure],
        resumed: int,
        checkpoint_path: str | os.PathLike | None,
    ) -> DriveDataset:
        records: list[TestRecord] = []
        trace_minutes = 0.0
        distance_km = 0.0
        area_counts = {area: 0 for area in AreaType}
        fault_seconds: dict[str, int] = {}
        fault_outage_seconds = 0

        for drive_id in sorted(drive_payloads):
            payload = drive_payloads[drive_id]
            records.extend(payload["records"])
            trace_minutes += payload["trace_minutes"]
            distance_km += payload["distance_km"]
            for area_value, count in payload["area_counts"].items():
                area_counts[AreaType(area_value)] += count
            for kind, seconds in payload["fault_seconds"].items():
                fault_seconds[kind] = fault_seconds.get(kind, 0) + seconds
            fault_outage_seconds += payload["fault_outage_seconds"]

        schedule = self.config.fault_schedule
        self.report = CampaignReport(
            drives_total=len(routes),
            drives_completed=len(drive_payloads),
            drives_resumed=resumed,
            failures=failures,
            fault_seconds=fault_seconds,
            fault_outage_seconds=fault_outage_seconds,
            scheduled_faults=(
                schedule.counts_by_kind()
                if schedule
                else {kind.value: 0 for kind in FaultKind}
            ),
            num_tests=len(records),
            checkpoint_path=(
                os.fspath(checkpoint_path) if checkpoint_path is not None else None
            ),
            resilience=self._resilience.to_dict(),
        )

        total = sum(area_counts.values()) or 1
        proportions = {a: c / total for a, c in area_counts.items()}
        return DriveDataset(
            records,
            trace_minutes=trace_minutes,
            distance_km=distance_km,
            area_proportions=proportions,
        )

    def _simulate_drive(self, drive_id: int, route: Route) -> dict:
        """One drive, fully self-contained: trace, channels, tests.

        Seeds (``rng.fork(drive_id)``) and test ids
        (``drive_id * TEST_ID_STRIDE``) depend only on the drive id, so
        the result is byte-identical regardless of what happened to other
        drives — the invariant checkpoint/resume relies on.

        Under a shard store, records additionally *stream* to the
        drive's write-ahead shard as they complete, and the shard is
        sealed (fsync + atomic rename) before the payload is returned —
        a crash mid-drive loses at most the record being written.  The
        stream is a durability optimization only: the committing parent
        re-derives the expected shard bytes from the payload and trusts
        the streamed file only when identical.
        """
        cfg = self.config
        drive_rng = self.rng.fork(drive_id)
        limit = (
            int(cfg.max_drive_seconds) if cfg.max_drive_seconds is not None else None
        )
        # The mobility stream is private to the trace, so the fast path
        # can stop driving at the sample cap instead of simulating the
        # whole route and slicing; both yield the identical prefix.
        trace = VehicleTrace(
            route,
            drive_rng,
            fast=cfg.fastpath,
            max_samples=limit if cfg.fastpath else None,
        )
        samples = trace.samples
        if limit is not None:
            samples = samples[:limit]
        tracker = Tracker(self.classifier)
        area_counts = {area: 0 for area in AreaType}
        if cfg.fastpath:
            for record in tracker.observe_many(samples):
                area_counts[record.area] += 1
        else:
            for mob in samples:
                record = tracker.observe(mob)
                area_counts[record.area] += 1

        channels = self._make_channels(drive_rng)
        if cfg.fastpath:
            self._attach_timelines(tracker, channels)
        injectors: list[FaultInjector] = []
        if cfg.fault_schedule:
            channels = {
                network: FaultInjector(
                    channel,
                    network,
                    cfg.fault_schedule,
                    drive_id=drive_id,
                    recorder=self.obs,
                )
                for network, channel in channels.items()
            }
            injectors = list(channels.values())

        writer = (
            self._shard_store.begin_drive(drive_id)
            if self._shard_store is not None
            else None
        )
        try:
            drive_records, _ = self._run_tests(
                drive_id, tracker, channels, drive_id * TEST_ID_STRIDE, sink=writer
            )
        except BaseException:
            if writer is not None:
                writer.abort()
            raise

        payload = {
            "records": drive_records,
            "trace_minutes": tracker.duration_minutes * DEVICES_PER_VEHICLE,
            "distance_km": tracker.distance_km,
            "area_counts": {area.value: c for area, c in area_counts.items()},
            **aggregate_fault_stats(injectors),
        }
        if writer is not None:
            writer.finish({k: v for k, v in payload.items() if k != "records"})
        return payload

    def _routes(self) -> list[Route]:
        cities = self.places.cities()
        routes: list[Route] = []
        for i in range(self.config.num_interstate_drives):
            origin = cities[(2 * i) % len(cities)]
            dest = cities[(2 * i + 3) % len(cities)]
            routes.append(
                self.route_generator.interstate_drive(
                    f"interstate-{i}", origin, dest
                )
            )
        gen = self.rng.get("campaign.routes")
        for i in range(self.config.num_city_drives):
            around = cities[int(gen.integers(0, len(cities)))]
            route = self.route_generator.local_loop(f"city-{i}", around)
            if not route.segments:
                # extend-by-chaining below would never terminate on an
                # empty loop; fail loudly instead of spinning.
                raise ValueError(
                    f"city loop {route.name!r} around {around.name!r} "
                    "generated no segments; cannot extend it to "
                    f"{self.config.city_loop_segments} segments"
                )
            # Extend the loop to the configured size by chaining copies.
            while len(route.segments) < self.config.city_loop_segments:
                route.segments.extend(route.segments[:10])
            routes.append(route)
        metros = [c for c in cities if c.population >= 400_000] or cities
        thresholds = self.classifier.thresholds
        for i in range(self.config.num_ring_drives):
            around = metros[i % len(metros)]
            # Sit the ring in the metro's own suburban band.
            ring_km = (8.0 + 1.5 * (i % 3)) * thresholds.scale(
                around.population
            )
            routes.append(
                self.route_generator.ring_road(
                    f"ring-{i}", around, ring_km=ring_km
                )
            )
        return routes

    def _make_channels(self, drive_rng: RngStreams) -> dict[str, object]:
        if self.config.fastpath:
            # Bit-identical subclasses with scalarized inner loops; the
            # legacy classes stay as the reference implementation.
            from repro.core.fastpath.channels import (
                CellularChannelFast as cellular_cls,
            )
            from repro.core.fastpath.channels import (
                StarlinkChannelFast as starlink_cls,
            )
        else:
            cellular_cls = CellularChannel
            starlink_cls = StarlinkChannel
        channels: dict[str, object] = {}
        for plan_name in STARLINK_NETWORKS:
            plan = DishPlan(plan_name)
            channels[plan_name] = starlink_cls(
                dish_for_plan(plan),
                constellation=self.constellation,
                gateways=self.gateways,
                places=self.places,
                rng=drive_rng,
                recorder=self.obs,
            )
        for carrier_name in CELLULAR_NETWORKS:
            channels[carrier_name] = cellular_cls(
                carrier_by_short_name(carrier_name), drive_rng, recorder=self.obs
            )
        return channels

    def _attach_timelines(self, tracker: Tracker, channels: dict[str, object]) -> None:
        """Precompute the drive's satellite geometry for the fast path.

        Collects exactly the seconds the test windows will sample (the
        same slicing :meth:`_run_tests` performs), builds one
        :class:`~repro.core.fastpath.GeometryTimeline` over them, and
        attaches it to both Starlink channels — the geometry is shared;
        every random draw stays per-channel in the legacy order.
        """
        from repro.core.fastpath import GeometryTimeline

        cfg = self.config
        metadata = tracker.records
        window_starts = range(
            0,
            max(0, len(metadata) - int(cfg.test_duration_s)),
            int(cfg.window_period_s),
        )
        sampled: dict[float, GeoPoint] = {}
        for start in window_starts:
            for meta in metadata[start : start + int(cfg.test_duration_s)]:
                if meta.time_s not in sampled:
                    sampled[meta.time_s] = GeoPoint(meta.lat_deg, meta.lon_deg)
        if not sampled:
            return
        timeline = GeometryTimeline(
            self.constellation,
            self.gateways,
            list(sampled.keys()),
            list(sampled.values()),
        )
        for network in STARLINK_NETWORKS:
            channels[network].attach_timeline(timeline)

    def _run_tests(
        self,
        drive_id: int,
        tracker: Tracker,
        channels: dict[str, object],
        test_id: int,
        sink=None,
    ) -> tuple[list[TestRecord], int]:
        """Run every scheduled test window; ``sink`` (a
        :class:`repro.store.ShardWriter`) receives each completed record
        as it exists, streaming results to durable storage mid-drive."""
        cfg = self.config
        records: list[TestRecord] = []
        metadata = tracker.records
        if cfg.fastpath:
            # Scalar-lane stepper, bit-identical to FluidTcp (same RNG
            # stream consumption; see repro.core.fastpath.fluid).
            from repro.core.fastpath.fluid import FluidTcpFast as fluid_cls
        else:
            fluid_cls = FluidTcp
        window_starts = range(
            0,
            max(0, len(metadata) - int(cfg.test_duration_s)),
            int(cfg.window_period_s),
        )
        for window_idx, start in enumerate(window_starts):
            kind = cfg.cycle[window_idx % len(cfg.cycle)]
            window = metadata[start : start + int(cfg.test_duration_s)]
            per_network: dict[str, list[SecondSample]] = {n: [] for n in NETWORKS}
            retx: dict[str, float] = {}
            fluids = {
                network: fluid_cls(
                    parallel=kind.parallel,
                    seed=cfg.seed * 7919 + test_id + i,
                )
                for i, network in enumerate(NETWORKS)
            }
            loss_weighted: dict[str, float] = {n: 0.0 for n in NETWORKS}
            capacity_sum: dict[str, float] = {n: 0.0 for n in NETWORKS}
            # Running per-network link-rate estimate the UDP sender's
            # offered load tracks (reset each window, like iPerf restarts).
            udp_rate_est: dict[str, float] = {}
            downlink = kind.direction == "dl"
            protocol = kind.protocol
            # Bound methods hoisted out of the per-second loop (the
            # network sampling order per second is unchanged); the
            # protocol branch is hoisted with them, giving one tight
            # loop per test kind instead of a per-second dispatch.
            lanes = [
                (n, channels[n].sample, per_network[n].append, fluids[n])
                for n in NETWORKS
            ]
            if protocol == "udp":
                for meta in window:
                    position = GeoPoint(meta.lat_deg, meta.lon_deg)
                    time_s = meta.time_s
                    speed_kmh = meta.speed_kmh
                    area = meta.area
                    for network, sample_fn, append, _fluid in lanes:
                        conditions = sample_fn(time_s, position, speed_kmh, area)
                        capacity = (
                            conditions.downlink_mbps
                            if downlink
                            else conditions.uplink_mbps
                        )
                        # iPerf UDP overdrive model: the sender blasts a
                        # constant offered load ~20% above its EWMA
                        # estimate of the link rate; delivered goodput is
                        # min(offered, capacity) thinned by random loss.
                        # During dips the link saturates; during spikes
                        # goodput is capped by the offered rate.
                        est = udp_rate_est.get(network)
                        est = (
                            capacity
                            if est is None
                            else est + 0.25 * (capacity - est)
                        )
                        udp_rate_est[network] = est
                        offered = UDP_OVERDRIVE * est
                        throughput = min(offered, capacity) * (
                            1.0 - conditions.loss_rate
                        )
                        append(
                            SecondSample(
                                time_s=time_s,
                                throughput_mbps=throughput,
                                rtt_ms=conditions.rtt_ms,
                                loss_rate=conditions.loss_rate,
                                speed_kmh=speed_kmh,
                                area=area,
                                lat_deg=meta.lat_deg,
                                lon_deg=meta.lon_deg,
                            )
                        )
            elif protocol == "tcp":
                for meta in window:
                    position = GeoPoint(meta.lat_deg, meta.lon_deg)
                    time_s = meta.time_s
                    speed_kmh = meta.speed_kmh
                    area = meta.area
                    for network, sample_fn, append, fluid in lanes:
                        conditions = sample_fn(time_s, position, speed_kmh, area)
                        throughput = fluid.step(conditions, downlink=downlink)
                        capacity = (
                            conditions.downlink_mbps
                            if downlink
                            else conditions.uplink_mbps
                        )
                        loss_weighted[network] += capacity * conditions.loss_rate
                        capacity_sum[network] += capacity
                        append(
                            SecondSample(
                                time_s=time_s,
                                throughput_mbps=throughput,
                                rtt_ms=conditions.rtt_ms,
                                loss_rate=conditions.loss_rate,
                                speed_kmh=speed_kmh,
                                area=area,
                                lat_deg=meta.lat_deg,
                                lon_deg=meta.lon_deg,
                            )
                        )
            else:  # ping
                for meta in window:
                    position = GeoPoint(meta.lat_deg, meta.lon_deg)
                    time_s = meta.time_s
                    speed_kmh = meta.speed_kmh
                    area = meta.area
                    for _network, sample_fn, append, _fluid in lanes:
                        conditions = sample_fn(time_s, position, speed_kmh, area)
                        append(
                            SecondSample(
                                time_s=time_s,
                                throughput_mbps=0.0,
                                rtt_ms=conditions.rtt_ms,
                                loss_rate=conditions.loss_rate,
                                speed_kmh=speed_kmh,
                                area=area,
                                lat_deg=meta.lat_deg,
                                lon_deg=meta.lon_deg,
                            )
                        )
            for network in NETWORKS:
                if kind.protocol == "tcp":
                    retx[network] = loss_weighted[network] / max(
                        capacity_sum[network], 1e-9
                    )
                record = TestRecord(
                    test_id=test_id,
                    drive_id=drive_id,
                    network=network,
                    protocol=kind.protocol,
                    direction=kind.direction,
                    parallel=kind.parallel,
                    samples=per_network[network],
                    retransmission_rate=min(retx.get(network, 0.0), 1.0),
                )
                records.append(record)
                if sink is not None:
                    sink.append(record_to_dict(record))
                test_id += 1
        return records, test_id


# -- checkpoint I/O ------------------------------------------------------


def _payload_from_raw(raw: dict) -> dict:
    """JSON-level drive payload -> in-memory payload (records rebuilt)."""
    return {
        **{k: v for k, v in raw.items() if k != "records"},
        "records": [record_from_dict(r) for r in raw["records"]],
    }


def _records_to_jsonable(records: list[TestRecord]) -> list[dict]:
    """Record objects -> JSON dicts (the shard store's converter)."""
    return [record_to_dict(r) for r in records]


def _load_checkpoint(path: str | os.PathLike, fingerprint: str) -> dict[int, dict]:
    """Completed drives from a checkpoint, keyed by drive id.

    Validates in order of increasing trust: JSON well-formedness, schema
    (``version``/``drives`` keys present), version compatibility,
    whole-file digest, config fingerprint, then per-drive digests.
    Corruption (truncation, tampering, bit rot) raises
    :class:`~repro.resilience.CheckpointCorruptError` — the campaign
    responds by quarantining the file and salvaging intact drives.  A
    structurally sound checkpoint from the wrong version or config
    raises plain ``ValueError``: that is operator error, not damage,
    and salvage must not paper over it.
    """
    name = os.fspath(path)
    with open(path) as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(
            f"checkpoint {name!r} is not valid JSON ({exc}); likely a "
            "truncated or interrupted write — it will be quarantined to "
            f"'{name}.corrupt' and intact drives salvaged"
        ) from exc
    if not isinstance(payload, dict) or not (
        "version" in payload and "drives" in payload
    ):
        raise CheckpointCorruptError(
            f"checkpoint {name!r} is missing required keys "
            "('version', 'drives'); the file is damaged or is not a "
            "campaign checkpoint"
        )
    if payload["version"] != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {name!r} has version "
            f"{payload.get('version')!r}, expected {CHECKPOINT_VERSION}"
        )
    if not verify_digest(payload):
        raise CheckpointCorruptError(
            f"checkpoint {name!r} fails its content digest; the file was "
            "modified or damaged after it was written"
        )
    if payload.get("fingerprint") != fingerprint:
        raise ValueError(
            f"checkpoint {name!r} was written by a different "
            f"campaign config (fingerprint {payload.get('fingerprint')!r} "
            f"!= {fingerprint!r}); delete it or fix the config"
        )
    drives: dict[int, dict] = {}
    for key, raw in payload["drives"].items():
        if not isinstance(raw, dict) or not verify_digest(raw):
            raise CheckpointCorruptError(
                f"checkpoint {name!r}: drive {key} fails its digest"
            )
        drives[int(key)] = {
            **{k: v for k, v in raw.items() if k != DIGEST_KEY},
            "records": [record_from_dict(r) for r in raw["records"]],
        }
    return drives


def _write_checkpoint(
    path: str | os.PathLike,
    fingerprint: str,
    drive_payloads: dict[int, dict],
) -> None:
    """Durably and atomically persist completed drives.

    Written through :func:`repro.store.commit.atomic_write_json` — tmp
    file, fsync, atomic rename, directory fsync — so a crash (even a
    power loss) at any boundary leaves the previous checkpoint intact
    and no partial file under the real name; the tmp file is removed on
    any failure.  Drives are emitted in drive-id order regardless of
    completion order, so a checkpoint from a parallel run is
    byte-identical to a serial one.  Each drive entry and the whole
    payload embed content digests (see :mod:`repro.resilience.integrity`)
    for load-time corruption detection and per-drive salvage.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "drives": {
            str(drive_id): embed_digest(
                {
                    **drive_payloads[drive_id],
                    "records": [
                        record_to_dict(r)
                        for r in drive_payloads[drive_id]["records"]
                    ],
                }
            )
            for drive_id in sorted(drive_payloads)
        },
    }
    embed_digest(payload)
    atomic_write_json(path, payload, boundary="checkpoint")


def run_campaign(
    config: CampaignConfig | None = None,
    checkpoint_path: str | os.PathLike | None = None,
    recorder=None,
    manifest_path: str | os.PathLike | None = None,
) -> DriveDataset:
    """Convenience wrapper: build and run a campaign."""
    return Campaign(config, recorder=recorder).run(
        checkpoint_path=checkpoint_path, manifest_path=manifest_path
    )
