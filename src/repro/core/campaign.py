"""Campaign orchestration: drives, simultaneous device tests, dataset.

Reproduces the paper's data-collection methodology (Section 3.3): a fleet
of one vehicle carrying two Starlink dishes (Roam + Mobility) and three
phones (AT&T, T-Mobile, Verizon) drives routes across five synthetic
states; at scheduled windows all five devices run the same network test
simultaneously (the paper's apples-to-apples setup), while a 5G-Tracker
logger records metadata continuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellular.carriers import carrier_by_short_name
from repro.cellular.channel import CellularChannel
from repro.core.dataset import (
    CELLULAR_NETWORKS,
    DriveDataset,
    NETWORKS,
    STARLINK_NETWORKS,
    SecondSample,
    TestRecord,
)
from repro.core.fluid import FluidTcp, fluid_udp_series
from repro.geo.classify import AreaClassifier, AreaType
from repro.geo.coords import GeoPoint
from repro.geo.mobility import VehicleTrace
from repro.geo.places import PlaceDatabase
from repro.geo.routes import Route, RouteGenerator
from repro.leo.channel import StarlinkChannel
from repro.leo.constellation import Constellation
from repro.leo.dish import dish_for_plan, DishPlan
from repro.leo.gateway import GatewayNetwork
from repro.rng import RngStreams
from repro.tools.tracker import Tracker

#: Devices the vehicle carries (5 networks measured at once).
DEVICES_PER_VEHICLE = len(NETWORKS)


@dataclass(frozen=True)
class TestKind:
    """One entry of the test schedule."""

    protocol: str  # "tcp" | "udp" | "ping"
    direction: str  # "dl" | "ul"
    parallel: int = 1


#: Default test cycle: weighted toward the UDP/TCP downlink tests the
#: paper's distribution figures are built from, with uplink, latency, and
#: parallelism tests interleaved (Sections 4.1-4.2).
DEFAULT_CYCLE = (
    TestKind("udp", "dl"),
    TestKind("tcp", "dl"),
    TestKind("udp", "ul"),
    TestKind("ping", "dl"),
    TestKind("udp", "dl"),
    TestKind("tcp", "dl", parallel=4),
    TestKind("udp", "dl"),
    TestKind("tcp", "dl", parallel=8),
)


@dataclass
class CampaignConfig:
    """Knobs for one campaign."""

    seed: int = 0
    #: Interstate drives (metro to metro), city loops, and suburban rings.
    num_interstate_drives: int = 1
    num_city_drives: int = 1
    num_ring_drives: int = 0
    #: Cap per-drive duration (seconds); None drives the full route.
    max_drive_seconds: float | None = 2400.0
    #: Length of each test window (the paper's bulk tests are ~60 s).
    test_duration_s: float = 60.0
    #: Seconds from one window start to the next (gap = period - duration).
    window_period_s: float = 75.0
    cycle: tuple[TestKind, ...] = field(default_factory=lambda: DEFAULT_CYCLE)
    #: City-loop route size (segments) — bigger means more urban samples.
    city_loop_segments: int = 30

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "CampaignConfig":
        """A campaign matching the paper's totals (~3,800 km, ~1,239 tests).

        Ten long drives with sparse test windows: the paper tested
        periodically across a month of driving, not back to back.
        """
        return cls(
            seed=seed,
            num_interstate_drives=6,
            num_city_drives=4,
            num_ring_drives=7,
            max_drive_seconds=None,
            test_duration_s=60.0,
            window_period_s=760.0,
            city_loop_segments=150,
        )

    @classmethod
    def smoke(cls, seed: int = 0) -> "CampaignConfig":
        """Tiny campaign for unit tests."""
        return cls(
            seed=seed,
            num_interstate_drives=1,
            num_city_drives=0,
            max_drive_seconds=420.0,
            test_duration_s=30.0,
            window_period_s=35.0,
        )


class Campaign:
    """Builds the world once, then simulates every drive."""

    def __init__(self, config: CampaignConfig | None = None):
        self.config = config or CampaignConfig()
        self.rng = RngStreams(self.config.seed)
        self.places = PlaceDatabase.synthetic(self.rng)
        self.classifier = AreaClassifier(self.places)
        self.constellation = Constellation()
        self.gateways = GatewayNetwork.synthetic(self.places, self.rng)
        self.route_generator = RouteGenerator(self.places, self.rng)

    # -- public API -----------------------------------------------------

    def run(self) -> DriveDataset:
        """Simulate the whole campaign and return the dataset."""
        records: list[TestRecord] = []
        trace_minutes = 0.0
        distance_km = 0.0
        area_counts = {area: 0 for area in AreaType}
        test_id = 0

        for drive_id, route in enumerate(self._routes()):
            drive_rng = self.rng.fork(drive_id)
            trace = VehicleTrace(route, drive_rng)
            samples = trace.samples
            if self.config.max_drive_seconds is not None:
                limit = int(self.config.max_drive_seconds)
                samples = samples[:limit]
            tracker = Tracker(self.classifier)
            for mob in samples:
                record = tracker.observe(mob)
                area_counts[record.area] += 1
            trace_minutes += tracker.duration_minutes * DEVICES_PER_VEHICLE
            distance_km += tracker.distance_km

            channels = self._make_channels(drive_rng)
            drive_records, test_id = self._run_tests(
                drive_id, tracker, channels, test_id
            )
            records.extend(drive_records)

        total = sum(area_counts.values()) or 1
        proportions = {a: c / total for a, c in area_counts.items()}
        return DriveDataset(
            records,
            trace_minutes=trace_minutes,
            distance_km=distance_km,
            area_proportions=proportions,
        )

    # -- internals ---------------------------------------------------------

    def _routes(self) -> list[Route]:
        cities = self.places.cities()
        routes: list[Route] = []
        for i in range(self.config.num_interstate_drives):
            origin = cities[(2 * i) % len(cities)]
            dest = cities[(2 * i + 3) % len(cities)]
            routes.append(
                self.route_generator.interstate_drive(
                    f"interstate-{i}", origin, dest
                )
            )
        gen = self.rng.get("campaign.routes")
        for i in range(self.config.num_city_drives):
            around = cities[int(gen.integers(0, len(cities)))]
            route = self.route_generator.local_loop(f"city-{i}", around)
            # Extend the loop to the configured size by chaining copies.
            while len(route.segments) < self.config.city_loop_segments:
                route.segments.extend(route.segments[:10])
            routes.append(route)
        metros = [c for c in cities if c.population >= 400_000] or cities
        thresholds = self.classifier.thresholds
        for i in range(self.config.num_ring_drives):
            around = metros[i % len(metros)]
            # Sit the ring in the metro's own suburban band.
            ring_km = (8.0 + 1.5 * (i % 3)) * thresholds.scale(
                around.population
            )
            routes.append(
                self.route_generator.ring_road(
                    f"ring-{i}", around, ring_km=ring_km
                )
            )
        return routes

    def _make_channels(self, drive_rng: RngStreams) -> dict[str, object]:
        channels: dict[str, object] = {}
        for plan_name in STARLINK_NETWORKS:
            plan = DishPlan(plan_name)
            channels[plan_name] = StarlinkChannel(
                dish_for_plan(plan),
                constellation=self.constellation,
                gateways=self.gateways,
                places=self.places,
                rng=drive_rng,
            )
        for carrier_name in CELLULAR_NETWORKS:
            channels[carrier_name] = CellularChannel(
                carrier_by_short_name(carrier_name), drive_rng
            )
        return channels

    def _run_tests(
        self,
        drive_id: int,
        tracker: Tracker,
        channels: dict[str, object],
        test_id: int,
    ) -> tuple[list[TestRecord], int]:
        cfg = self.config
        records: list[TestRecord] = []
        metadata = tracker.records
        window_starts = range(
            0,
            max(0, len(metadata) - int(cfg.test_duration_s)),
            int(cfg.window_period_s),
        )
        for window_idx, start in enumerate(window_starts):
            kind = cfg.cycle[window_idx % len(cfg.cycle)]
            window = metadata[start : start + int(cfg.test_duration_s)]
            per_network: dict[str, list[SecondSample]] = {n: [] for n in NETWORKS}
            retx: dict[str, float] = {}
            fluids = {
                network: FluidTcp(
                    parallel=kind.parallel,
                    seed=cfg.seed * 7919 + test_id + i,
                )
                for i, network in enumerate(NETWORKS)
            }
            loss_weighted: dict[str, float] = {n: 0.0 for n in NETWORKS}
            capacity_sum: dict[str, float] = {n: 0.0 for n in NETWORKS}
            for meta in window:
                position = GeoPoint(meta.lat_deg, meta.lon_deg)
                for network in NETWORKS:
                    conditions = channels[network].sample(
                        meta.time_s, position, meta.speed_kmh, meta.area
                    )
                    downlink = kind.direction == "dl"
                    if kind.protocol == "udp":
                        capacity = conditions.capacity_mbps(downlink)
                        throughput = min(capacity * 1.2, capacity) * (
                            1.0 - conditions.loss_rate
                        )
                    elif kind.protocol == "tcp":
                        throughput = fluids[network].step(
                            conditions, downlink=downlink
                        )
                        capacity = conditions.capacity_mbps(downlink)
                        loss_weighted[network] += capacity * conditions.loss_rate
                        capacity_sum[network] += capacity
                    else:  # ping
                        throughput = 0.0
                    per_network[network].append(
                        SecondSample(
                            time_s=meta.time_s,
                            throughput_mbps=throughput,
                            rtt_ms=conditions.rtt_ms,
                            loss_rate=conditions.loss_rate,
                            speed_kmh=meta.speed_kmh,
                            area=meta.area,
                            lat_deg=meta.lat_deg,
                            lon_deg=meta.lon_deg,
                        )
                    )
            for network in NETWORKS:
                if kind.protocol == "tcp":
                    retx[network] = loss_weighted[network] / max(
                        capacity_sum[network], 1e-9
                    )
                records.append(
                    TestRecord(
                        test_id=test_id,
                        drive_id=drive_id,
                        network=network,
                        protocol=kind.protocol,
                        direction=kind.direction,
                        parallel=kind.parallel,
                        samples=per_network[network],
                        retransmission_rate=min(retx.get(network, 0.0), 1.0),
                    )
                )
                test_id += 1
        return records, test_id


def run_campaign(config: CampaignConfig | None = None) -> DriveDataset:
    """Convenience wrapper: build and run a campaign."""
    return Campaign(config).run()
