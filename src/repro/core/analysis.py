"""Statistics helpers used throughout the analysis pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """The summary numbers the paper quotes for a distribution."""

    count: int
    mean: float
    median: float
    p25: float
    p75: float
    p90: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float] | np.ndarray) -> "SummaryStats":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan, nan)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p25=float(np.percentile(arr, 25)),
            p75=float(np.percentile(arr, 75)),
            p90=float(np.percentile(arr, 90)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )


def cdf(values: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities).

    The probabilities use the ``i/n`` convention so the last point is 1.0,
    matching how the paper's CDF figures terminate.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, probs


def cdf_at(values: Iterable[float], threshold: float) -> float:
    """Fraction of values <= threshold (one point of the CDF)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.mean(arr <= threshold))


def group_means(
    keys: Iterable, values: Iterable[float]
) -> dict:
    """Mean of ``values`` grouped by ``keys`` (e.g. speed bucket -> Mbps)."""
    sums: dict = {}
    counts: dict = {}
    for key, value in zip(keys, values, strict=True):
        sums[key] = sums.get(key, 0.0) + value
        counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}


def speed_bucket(speed_kmh: float, width_kmh: float = 10.0) -> tuple[int, int]:
    """The paper's Figure 6 buckets: (0-10], (10-20], ... (90-100]."""
    if speed_kmh < 0:
        raise ValueError(f"speed must be non-negative, got {speed_kmh}")
    low = int(speed_kmh // width_kmh) * int(width_kmh)
    low = min(low, 90)
    return (low, low + int(width_kmh))


def improvement_percent(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline``."""
    if baseline <= 0:
        return float("nan")
    return (improved - baseline) / baseline * 100.0
