"""The driving dataset: test records and their per-second samples.

Mirrors the shape of the paper's released dataset: a list of network tests
(each tagged with network, protocol, direction, parallelism) whose rows are
1 Hz samples joining measurement values with 5G-Tracker metadata.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.geo.classify import AreaType

#: Canonical network identifiers, matching the paper's abbreviations.
NETWORKS = ("RM", "MOB", "ATT", "TM", "VZ")
STARLINK_NETWORKS = ("RM", "MOB")
CELLULAR_NETWORKS = ("ATT", "TM", "VZ")


@dataclass(frozen=True)
class SecondSample:
    """One second of one network test, joined with tracker metadata."""

    time_s: float
    throughput_mbps: float
    rtt_ms: float
    loss_rate: float
    speed_kmh: float
    area: AreaType
    lat_deg: float
    lon_deg: float


@dataclass
class TestRecord:
    """One network test (one iPerf/UDP-Ping invocation on one device)."""

    test_id: int
    drive_id: int
    network: str
    protocol: str  # "tcp" | "udp" | "ping"
    direction: str  # "dl" | "ul"
    parallel: int
    samples: list[SecondSample] = field(default_factory=list)
    retransmission_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.network not in NETWORKS:
            raise ValueError(f"unknown network {self.network!r}")
        if self.protocol not in ("tcp", "udp", "ping"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.direction not in ("dl", "ul"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {self.parallel}")

    @property
    def duration_s(self) -> float:
        return float(len(self.samples))

    @property
    def mean_throughput_mbps(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.throughput_mbps for s in self.samples]))

    @property
    def median_throughput_mbps(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.median([s.throughput_mbps for s in self.samples]))

    @property
    def is_starlink(self) -> bool:
        return self.network in STARLINK_NETWORKS


def record_to_dict(rec: TestRecord) -> dict:
    """JSON-safe dict for one test record (samples included).

    Shared by :meth:`DriveDataset.save_json` and the campaign's
    checkpoint writer, so both persist records identically.
    """
    return {
        **{k: v for k, v in asdict(rec).items() if k != "samples"},
        "samples": [
            {**asdict(s), "area": s.area.value} for s in rec.samples
        ],
    }


def record_from_dict(raw: dict) -> TestRecord:
    """Rebuild a record serialized by :func:`record_to_dict`."""
    raw = dict(raw)
    samples = [
        SecondSample(**{**s, "area": AreaType(s["area"])})
        for s in raw.pop("samples")
    ]
    return TestRecord(**raw, samples=samples)


class DriveDataset:
    """Everything one campaign produced."""

    def __init__(
        self,
        records: list[TestRecord],
        trace_minutes: float = 0.0,
        distance_km: float = 0.0,
        area_proportions: dict[AreaType, float] | None = None,
    ):
        self.records = list(records)
        self.trace_minutes = trace_minutes
        self.distance_km = distance_km
        self.area_proportions = area_proportions or {}

    # -- selection ---------------------------------------------------------

    def filter(
        self,
        network: str | None = None,
        protocol: str | None = None,
        direction: str | None = None,
        parallel: int | None = None,
        area: AreaType | None = None,
    ) -> "DriveDataset":
        """Subset of records (area filters *samples* within records)."""
        out: list[TestRecord] = []
        for rec in self.records:
            if network is not None and rec.network != network:
                continue
            if protocol is not None and rec.protocol != protocol:
                continue
            if direction is not None and rec.direction != direction:
                continue
            if parallel is not None and rec.parallel != parallel:
                continue
            if area is not None:
                samples = [s for s in rec.samples if s.area == area]
                if not samples:
                    continue
                rec = TestRecord(
                    test_id=rec.test_id,
                    drive_id=rec.drive_id,
                    network=rec.network,
                    protocol=rec.protocol,
                    direction=rec.direction,
                    parallel=rec.parallel,
                    samples=samples,
                    retransmission_rate=rec.retransmission_rate,
                )
            out.append(rec)
        return DriveDataset(
            out, self.trace_minutes, self.distance_km, self.area_proportions
        )

    def throughput_samples(self) -> list[float]:
        """All per-second throughput values across matching records."""
        return [
            s.throughput_mbps for rec in self.records for s in rec.samples
        ]

    def rtt_samples(self) -> list[float]:
        """All per-second RTT values (outage seconds excluded)."""
        return [
            s.rtt_ms
            for rec in self.records
            for s in rec.samples
            if s.loss_rate < 1.0
        ]

    def test_means(self) -> list[float]:
        """Per-test mean throughput (one value per record)."""
        return [rec.mean_throughput_mbps for rec in self.records]

    @property
    def num_tests(self) -> int:
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    # -- persistence ---------------------------------------------------------

    def save_json(self, path: str | os.PathLike) -> None:
        """Serialize the dataset (samples included) to JSON.

        The payload embeds a content digest (see
        :mod:`repro.resilience.integrity`); :meth:`load_json` verifies
        it, so silent corruption surfaces at load time.  The digest is a
        pure function of content — byte-identical datasets stay
        byte-identical.  The write goes through the atomic commit
        protocol (:mod:`repro.store.commit`): tmp file, fsync, rename,
        directory fsync — a crash never leaves a torn dataset under the
        real name.
        """
        from repro.resilience.integrity import embed_digest
        from repro.store.commit import atomic_write_json

        payload = embed_digest(
            {
                "trace_minutes": self.trace_minutes,
                "distance_km": self.distance_km,
                # Sorted: two datasets with equal proportions must
                # serialize byte-identically no matter what order the
                # caller's dict was built in.
                "area_proportions": {
                    area.value: share
                    for area, share in sorted(
                        self.area_proportions.items(),
                        key=lambda item: item[0].value,
                    )
                },
                "records": [record_to_dict(rec) for rec in self.records],
            }
        )
        atomic_write_json(path, payload, boundary="dataset")

    def export_csv(self, path: str | os.PathLike) -> int:
        """Write per-second rows as CSV (one row per sample); returns count.

        Columns mirror the released dataset's joined form: test metadata
        plus the 5G-Tracker fields for each second.
        """
        import csv

        count = 0
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "test_id", "drive_id", "network", "protocol",
                    "direction", "parallel", "time_s", "throughput_mbps",
                    "rtt_ms", "loss_rate", "speed_kmh", "area",
                    "lat_deg", "lon_deg",
                ]
            )
            for rec in self.records:
                for s in rec.samples:
                    writer.writerow(
                        [
                            rec.test_id, rec.drive_id, rec.network,
                            rec.protocol, rec.direction, rec.parallel,
                            s.time_s, s.throughput_mbps, s.rtt_ms,
                            s.loss_rate, s.speed_kmh, s.area.value,
                            s.lat_deg, s.lon_deg,
                        ]
                    )
                    count += 1
        return count

    @classmethod
    def load_json(cls, path: str | os.PathLike) -> "DriveDataset":
        """Load a dataset written by :meth:`save_json`.

        Raises :class:`~repro.resilience.ArtifactCorruptError` when the
        embedded content digest no longer matches the body (truncated
        write, bit rot, hand-edit).  Digest-less files — written before
        digests existed — load without the check.
        """
        from repro.resilience.integrity import verify_digest
        from repro.resilience.taxonomy import ArtifactCorruptError

        with open(path) as handle:
            payload = json.load(handle)
        if not verify_digest(payload):
            raise ArtifactCorruptError(
                f"dataset {os.fspath(path)!r} fails its content digest; "
                "the file was modified or damaged after it was written"
            )
        records = [record_from_dict(raw) for raw in payload["records"]]
        return cls(
            records,
            trace_minutes=payload["trace_minutes"],
            distance_km=payload["distance_km"],
            area_proportions={
                AreaType(k): v for k, v in payload["area_proportions"].items()
            },
        )
