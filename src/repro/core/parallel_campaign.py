"""Drive-sharded parallel campaign execution.

Drives are embarrassingly parallel by construction: every drive derives
its RNG family from ``rng.fork(drive_id)`` (a pure function of the
campaign seed) and numbers its tests from ``drive_id * TEST_ID_STRIDE``,
so a drive's payload is byte-identical whether the drives around it ran
earlier, later, in another process, or not at all — the same invariant
checkpoint/resume has always relied on.  This module exploits it: shard
the not-yet-completed drives across a :class:`ProcessPoolExecutor`, let
each worker rebuild the (deterministic, cheap) campaign world from the
pickled config, and merge results back **in drive order** so the final
dataset, checkpoint JSON, and campaign report are byte-identical to a
serial run.

Merge semantics, per drive in ascending drive-id order:

* drive payloads land in the shared ``drive_payloads`` dict (the
  checkpoint writer sorts by drive id, so mid-run checkpoints from any
  completion order are valid resume points for any worker count);
* worker metric snapshots fold into the parent registry via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` — counters and
  histograms add, gauges are last-write-wins in drive order;
* worker-measured drive durations are grafted into the parent tracer
  (:meth:`~repro.obs.tracer.SpanTracer.record`) so ``campaign.drive``
  still shows up in manifest timings;
* a drive that raised inside a worker comes back as a structured
  :class:`~repro.core.campaign.DriveFailure` (worker-side traceback
  attached), keeping per-drive failure isolation identical to serial
  execution.

``KeyboardInterrupt`` (or any other ``BaseException``) is *not*
isolation-captured — it aborts the pool after the last finished drive
was checkpointed, which is what makes mid-parallel-run resume work.

The pool prefers the ``fork`` start method when the platform offers it
(cheap worker start; the parent's world pages are shared copy-on-write
until the worker rebuilds its own) and falls back to the platform
default elsewhere.  Workers are only ever handed the campaign *config*;
nothing stateful crosses the process boundary in either direction except
plain payload dicts and metric snapshots.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.obs.recorder import NULL_RECORDER, ObsRecorder

# -- worker side ---------------------------------------------------------

#: Per-worker-process state: the rebuilt campaign world and its routes,
#: constructed once per process by :func:`_init_worker`.
_WORKER: dict = {}


def _init_worker(config, store_root=None) -> None:
    """Process-pool initializer: rebuild the campaign world from config.

    World construction is deterministic (named RNG substreams keyed off
    the config seed) and takes ~1 ms, so every worker independently
    arrives at the identical world a serial run would have built.

    ``store_root`` (set when the parent runs a sharded store) lets the
    worker *stream* each drive's records to its write-ahead shard as
    they complete.  Streaming is a durability optimization only — the
    parent re-derives the expected shard bytes when committing and only
    trusts a streamed file that matches exactly.
    """
    from repro.core.campaign import Campaign

    campaign = Campaign(config, recorder=NULL_RECORDER)
    if store_root is not None:
        from repro.store import ShardStore

        campaign._shard_store = ShardStore(store_root, config.fingerprint())
    _WORKER["campaign"] = campaign
    _WORKER["routes"] = campaign._routes()


def _run_drive(drive_id: int, observe: bool) -> dict:
    """Simulate one drive in this worker; return a plain result dict.

    ``observe`` mirrors the parent recorder's ``enabled`` flag: when set,
    the drive runs under a fresh :class:`ObsRecorder` whose registry
    snapshot rides back with the payload for the drive-order merge.
    Ordinary exceptions become a failure entry (worker traceback
    included); ``BaseException`` escapes and aborts the run, like a
    ``KeyboardInterrupt`` in a serial campaign.
    """
    from repro.core.campaign import DriveFailure

    campaign = _WORKER["campaign"]
    route = _WORKER["routes"][drive_id]
    recorder = ObsRecorder() if observe else NULL_RECORDER
    campaign.obs = recorder
    started = time.perf_counter()
    try:
        payload = campaign._simulate_drive(drive_id, route)
    except Exception as exc:  # isolation, as in serial runs
        return {
            "drive_id": drive_id,
            "ok": False,
            "failure": DriveFailure.from_exception(
                drive_id, route.name, exc
            ).to_dict(),
            "elapsed_s": time.perf_counter() - started,
            "metrics": recorder.registry.snapshot() if observe else [],
        }
    return {
        "drive_id": drive_id,
        "ok": True,
        "payload": payload,
        "elapsed_s": time.perf_counter() - started,
        "metrics": recorder.registry.snapshot() if observe else [],
    }


# -- parent side ---------------------------------------------------------


def _mp_context():
    """Prefer fork where available; otherwise the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def run_drives_parallel(
    campaign,
    routes,
    drive_payloads: dict[int, dict],
    checkpoint_path: str | os.PathLike | None,
    fingerprint: str,
    shutdown=None,
) -> list:
    """Run every not-yet-completed drive across a process pool.

    Fills ``drive_payloads`` in place (drives already present — e.g.
    restored from a checkpoint — are never re-executed) and returns the
    list of :class:`~repro.core.campaign.DriveFailure`, sorted by drive
    id like a serial run's append order.

    ``shutdown`` is a :class:`~repro.resilience.signals.ShutdownFlag`
    (or ``None``); when it trips, the pool stops dispatching and raises
    :class:`~repro.resilience.CampaignAborted` after the last finished
    drive has been checkpointed, so a later run resumes cleanly.
    """
    from repro.resilience import CampaignAborted

    cfg = campaign.config
    obs = campaign.obs
    pending = [d for d in range(len(routes)) if d not in drive_payloads]
    if not pending:
        return []

    store = campaign._shard_store
    max_workers = min(cfg.workers, len(pending))
    results: dict[int, dict] = {}
    with obs.span("campaign.parallel", workers=max_workers):
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(cfg, store.root if store is not None else None),
        ) as pool:
            futures = {
                pool.submit(_run_drive, drive_id, obs.enabled): drive_id
                for drive_id in pending
            }
            try:
                for future in as_completed(futures):
                    result = future.result()
                    results[result["drive_id"]] = result
                    if result["ok"]:
                        if result["metrics"]:
                            # Ride the per-drive metric delta in the
                            # checkpoint so resume can restore it.
                            result["payload"]["metrics"] = result["metrics"]
                        drive_payloads[result["drive_id"]] = result["payload"]
                    if checkpoint_path is not None:
                        campaign._commit_progress(drive_payloads)
                    if shutdown is not None and shutdown.requested:
                        raise CampaignAborted(
                            f"shutdown requested (signal {shutdown.signum}); "
                            f"{len(drive_payloads)} drives checkpointed"
                        )
            except BaseException:
                # Abort (KeyboardInterrupt & co.): drop what hasn't
                # started; whatever completed is already checkpointed,
                # so a resume — at any worker count — picks up here.
                for future in futures:
                    future.cancel()
                raise

    return merge_drive_results(campaign, routes, results)


def merge_drive_results(campaign, routes, results: dict[int, dict]) -> list:
    """Fold per-drive worker results into the parent, in drive order.

    Shared by the plain executor pool and the supervised
    (:mod:`repro.resilience.pool`) one, so both produce identical
    counters, histograms, gauges, tracer rows, and failure lists.  A
    result may carry an ``"attempts"`` count (supervised pool / retry
    path), which feeds the ``resilience.drive_attempts`` histogram —
    that series is excluded from the deterministic manifest view, so
    healed and untouched runs still match byte-for-byte.
    """
    from repro.core.campaign import DriveFailure
    from repro.resilience import ATTEMPT_BUCKETS

    obs = campaign.obs
    failures: list = []
    for drive_id in sorted(results):
        result = results[drive_id]
        if obs.enabled and result["metrics"]:
            obs.registry.merge(result["metrics"])
        if "attempts" in result:
            obs.histogram(
                "resilience.drive_attempts", buckets=ATTEMPT_BUCKETS
            ).observe(result["attempts"])
        if result["ok"]:
            if obs.enabled:
                obs.tracer.record(
                    "campaign.drive",
                    result["elapsed_s"],
                    drive=drive_id,
                    route=routes[drive_id].name,
                )
            campaign._note_drive_done(
                drive_id,
                routes[drive_id].name,
                result["elapsed_s"],
                len(result["payload"]["records"]),
                payload=result["payload"],
            )
        else:
            failures.append(DriveFailure(**result["failure"]))
            obs.counter("campaign.drives_failed").inc()
    return failures
