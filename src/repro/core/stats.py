"""Uncertainty quantification for campaign comparisons.

The paper reports point estimates; a reproduction should also say how
stable they are.  These helpers add bootstrap confidence intervals for the
headline means/medians and a nonparametric test for the per-network
comparisons (per-second samples are long-tailed and autocorrelated, so a
block bootstrap is used).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def block_bootstrap_ci(
    values,
    statistic=np.mean,
    confidence: float = 0.95,
    num_resamples: int = 1000,
    block_s: int = 30,
    seed: int = 0,
) -> ConfidenceInterval:
    """Moving-block bootstrap CI for an autocorrelated 1 Hz series.

    Per-second throughput samples within a test window are strongly
    correlated (the channel state persists for seconds), so i.i.d.
    resampling would understate the interval; blocks of ``block_s``
    seconds are resampled instead.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    block = max(1, min(block_s, arr.size))
    num_blocks = int(np.ceil(arr.size / block))
    starts_max = arr.size - block + 1
    gen = np.random.default_rng(seed)
    estimates = np.empty(num_resamples)
    for i in range(num_resamples):
        starts = gen.integers(0, starts_max, size=num_blocks)
        sample = np.concatenate([arr[s : s + block] for s in starts])[: arr.size]
        estimates[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(arr)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-network comparison."""

    statistic: float
    p_value: float
    #: Probability a random sample from A exceeds one from B (common
    #: language effect size).
    prob_a_greater: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def compare_networks(samples_a, samples_b) -> ComparisonResult:
    """Mann-Whitney U test between two per-second sample sets.

    Nonparametric on purpose: throughput distributions here are bimodal
    (blocked vs serving) and heavy-tailed, so t-tests mislead.
    """
    a = np.asarray(list(samples_a), dtype=float)
    b = np.asarray(list(samples_b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both sample sets must be non-empty")
    u_stat, p_value = sp_stats.mannwhitneyu(a, b, alternative="two-sided")
    return ComparisonResult(
        statistic=float(u_stat),
        p_value=float(p_value),
        prob_a_greater=float(u_stat) / (a.size * b.size),
    )


def summarize_with_ci(
    name: str, values, confidence: float = 0.95, seed: int = 0
) -> str:
    """One-line report: ``name: mean 128.3 [120.1, 136.0] (95% CI)``."""
    ci = block_bootstrap_ci(values, confidence=confidence, seed=seed)
    return (
        f"{name}: mean {ci.estimate:.1f} "
        f"[{ci.low:.1f}, {ci.high:.1f}] ({confidence:.0%} CI)"
    )
