"""Fluid (per-second) transport models for campaign-scale analysis.

Running the packet-level simulator for all ~1,200 campaign tests would be
needlessly slow: the *distribution* figures (3, 6, 8, 9) depend on window
dynamics only through their second-scale averages.  The fluid models evolve
a congestion window once per second against the channel samples — loss
events arrive as a Poisson process derived from the channel's loss rate and
burstiness — and reproduce the packet-level simulator's throughput within
the tolerance checked by ``tests/test_fluid_vs_packet.py``.  The
transport-microscopic experiments (Figures 5, 7, 10, 11) always use the
packet-level simulator instead.
"""

from __future__ import annotations

import math

import numpy as np

from repro.conditions import LinkConditions
from repro.units import DEFAULT_MTU_BYTES


def fluid_udp_series(
    samples: list[LinkConditions],
    downlink: bool = True,
    offered_mbps: float | None = None,
) -> list[float]:
    """Per-second UDP goodput (Mbps): delivered share of the offered load.

    iPerf UDP at a high target rate simply measures the channel's usable
    capacity, so goodput is ``min(offered, capacity) * (1 - loss)``.
    """
    series = []
    for sample in samples:
        capacity = sample.capacity_mbps(downlink)
        offered = capacity * 1.2 if offered_mbps is None else offered_mbps
        series.append(min(offered, capacity) * (1.0 - sample.loss_rate))
    return series


class FluidTcp:
    """Per-second congestion-window evolution for N parallel connections.

    Mechanisms kept (they drive every TCP result in the paper):

    * slow start then AIMD with CUBIC's beta = 0.7;
    * loss events per second ~ Poisson(packets * loss_rate / loss_burst) —
      clustered Starlink loss produces far fewer *events* than its average
      loss rate suggests, which is why Starlink TCP reaches ~1/5 of UDP
      rather than collapsing entirely;
    * a second of outage behaves like an RTO: window back to minimum;
    * the receive buffer caps the window (untuned-buffer experiments);
    * N connections share capacity equally when jointly limited.
    """

    #: CUBIC's scaling constant (packets / s^3).
    CUBIC_C = 0.4

    def __init__(
        self,
        parallel: int = 1,
        mss_bytes: int = DEFAULT_MTU_BYTES,
        beta: float = 0.7,
        growth_gain: float = 1.0,
        buffer_bytes: float = float("inf"),
        seed: int = 0,
    ):
        if parallel < 1:
            raise ValueError(f"need at least one connection, got {parallel}")
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.parallel = parallel
        self.mss = mss_bytes
        self.beta = beta
        self.growth_gain = growth_gain
        self.buffer_bytes = buffer_bytes
        self._gen = np.random.default_rng(seed)
        self._cwnd = np.full(parallel, 10.0 * mss_bytes)
        self._ssthresh = np.full(parallel, float("inf"))
        self._w_max = np.full(parallel, 10.0 * mss_bytes)
        self._epoch_s = np.zeros(parallel)
        self._in_outage = False

    def reset(self) -> None:
        """Back to initial windows (new test)."""
        self._cwnd[:] = 10.0 * self.mss
        self._ssthresh[:] = float("inf")
        self._w_max[:] = 10.0 * self.mss
        self._epoch_s[:] = 0.0
        self._in_outage = False

    def step(self, sample: LinkConditions, downlink: bool = True) -> float:
        """Advance one second; return delivered goodput (Mbps)."""
        if sample.is_outage:
            # The retransmission timer fires during a dead second; ssthresh
            # remembers half the pre-outage window (RFC 5681), once.
            if not self._in_outage:
                self._ssthresh = np.maximum(self._cwnd / 2.0, 2.0 * self.mss)
                self._in_outage = True
            self._cwnd[:] = 2.0 * self.mss
            self._epoch_s[:] = 0.0
            return 0.0
        self._in_outage = False

        capacity_bytes = sample.capacity_mbps(downlink) * 1e6 / 8.0
        rtt_s = max(sample.rtt_ms / 1000.0, 1e-3)
        rates = self._allocate(capacity_bytes, rtt_s)
        delivered = rates.sum() * (1.0 - sample.loss_rate)

        # Loss events per connection this second.  Loss parameters are
        # defined per reference MTU, independent of this model's mss.
        ref_pkts = rates / DEFAULT_MTU_BYTES
        event_rate = ref_pkts * sample.loss_rate / max(sample.loss_burst, 1.0)
        # Queue-overflow events when a window overshoots the pipe.
        bdp = capacity_bytes * rtt_s / self.parallel
        overshoot = self._cwnd > 1.5 * bdp + 10.0 * self.mss
        event_rate = event_rate + np.where(overshoot, 0.7, 0.0)
        events = self._gen.poisson(event_rate)

        lost = events > 0
        # CUBIC fast convergence: remember (a shrunk) peak, restart epoch.
        self._w_max[lost] = np.where(
            self._cwnd[lost] < self._w_max[lost],
            self._cwnd[lost] * (1.0 + self.beta) / 2.0,
            self._cwnd[lost],
        )
        self._epoch_s[lost] = 0.0
        self._cwnd[lost] *= self.beta ** np.minimum(events[lost], 2)
        self._ssthresh[lost] = self._cwnd[lost]
        self._cwnd = np.maximum(self._cwnd, 2.0 * self.mss)

        # Growth for loss-free connections: slow start doubles per RTT; in
        # congestion avoidance the window follows CUBIC's real-time curve
        # W(t) = C*(t-K)^3 + W_max evaluated once per second, which makes
        # the fluid equilibrium under random loss match the packet-level
        # simulator's CUBIC (tests/test_fluid_vs_packet.py).
        acked_bytes = rates * (1.0 - sample.loss_rate)
        grow = ~lost
        in_ss = grow & (self._cwnd < self._ssthresh)
        in_ca = grow & ~in_ss
        self._cwnd[in_ss] += acked_bytes[in_ss]
        # Window validation: CUBIC's clock only advances while the flow is
        # actually window-limited (>= ~80 % of the window in use).
        utilization = np.minimum(
            acked_bytes / np.maximum(self._cwnd / rtt_s, 1.0), 1.0
        )
        self._epoch_s[grow] += np.where(utilization[grow] > 0.8, 1.0, 0.2)
        w_max_pkts = self._w_max / self.mss
        k = (w_max_pkts * (1.0 - self.beta) / self.CUBIC_C) ** (1.0 / 3.0)
        target_pkts = (
            self.CUBIC_C * (self._epoch_s - k) ** 3 + w_max_pkts
        )
        target = np.maximum(target_pkts * self.mss, 2.0 * self.mss)
        self._cwnd[in_ca] = np.maximum(
            self._cwnd[in_ca], np.minimum(target[in_ca], 2.0 * self._cwnd[in_ca])
        )
        self._cwnd = np.minimum(self._cwnd, self.buffer_bytes)
        return delivered * 8.0 / 1e6

    def _allocate(self, capacity_bytes: float, rtt_s: float) -> np.ndarray:
        """Water-fill capacity among window-limited connections."""
        demand = self._cwnd / rtt_s
        total = demand.sum()
        if total <= capacity_bytes:
            return demand
        # Progressive filling: connections below the fair share keep their
        # demand; the rest split what remains equally.
        order = np.argsort(demand)
        rates = np.zeros_like(demand)
        remaining = capacity_bytes
        left = len(demand)
        for idx in order:
            share = remaining / left
            rates[idx] = min(demand[idx], share)
            remaining -= rates[idx]
            left -= 1
        return rates


def fluid_tcp_series(
    samples: list[LinkConditions],
    parallel: int = 1,
    downlink: bool = True,
    mss_bytes: int = DEFAULT_MTU_BYTES,
    buffer_bytes: float = float("inf"),
    seed: int = 0,
) -> list[float]:
    """Per-second TCP goodput (Mbps) over a channel trace."""
    model = FluidTcp(
        parallel=parallel,
        mss_bytes=mss_bytes,
        buffer_bytes=buffer_bytes,
        seed=seed,
    )
    return [model.step(sample, downlink=downlink) for sample in samples]


def fluid_tcp_retransmission_rate(
    samples: list[LinkConditions], downlink: bool = True
) -> float:
    """Expected retransmitted fraction over a trace.

    Every randomly lost segment is eventually retransmitted, so the
    long-run retransmission rate tracks the delivered-weighted loss rate.
    """
    lost = 0.0
    sent = 0.0
    for sample in samples:
        capacity = sample.capacity_mbps(downlink)
        if sample.is_outage or capacity <= 0:
            continue
        sent += capacity
        lost += capacity * sample.loss_rate
    if sent == 0:
        return 0.0
    return lost / sent


def mathis_throughput_mbps(
    mss_bytes: float, rtt_ms: float, loss_event_rate: float
) -> float:
    """The Mathis et al. TCP bound, for sanity checks and docs.

    ``rate = 1.22 * MSS / (RTT * sqrt(p))`` with p the *loss event* rate.
    """
    if rtt_ms <= 0 or loss_event_rate <= 0:
        raise ValueError("rtt and loss event rate must be positive")
    rate_bytes = 1.22 * mss_bytes / (rtt_ms / 1000.0 * math.sqrt(loss_event_rate))
    return rate_bytes * 8.0 / 1e6
