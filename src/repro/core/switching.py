"""Network switching policies over aligned per-second series.

Figure 9's combination bars assume a user who "can switch between them
with zero effort" — an oracle.  This module quantifies how much of that
oracle a *realistic* switcher keeps once switching costs exist: a policy
observes each network's recent throughput, switches only when another
network has looked better by a margin for a dwell period, and pays a
connection-setup outage on every switch.  The gap between oracle and
policy is the paper's implicit argument for MPTCP (use both at once, no
switching at all).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SwitchPolicy:
    """Hysteresis switcher parameters."""

    #: Relative advantage another network must show before switching.
    margin: float = 0.25
    #: Seconds the advantage must persist (debounce).
    dwell_s: int = 5
    #: Seconds of dead time per switch (attach/DHCP/app reconnect).
    switch_outage_s: int = 3

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ValueError(f"margin must be non-negative, got {self.margin}")
        if self.dwell_s < 1:
            raise ValueError(f"dwell must be >= 1 s, got {self.dwell_s}")
        if self.switch_outage_s < 0:
            raise ValueError(
                f"switch outage must be non-negative, got {self.switch_outage_s}"
            )


@dataclass
class SwitchOutcome:
    """What a policy achieved over the aligned series."""

    achieved_mbps: list[float]
    switches: int
    #: Which network served each second (by series key).
    serving: list[str]

    @property
    def mean_mbps(self) -> float:
        if not self.achieved_mbps:
            return 0.0
        return float(np.mean(self.achieved_mbps))


def oracle_switching(series: dict[str, list[float]]) -> SwitchOutcome:
    """The paper's zero-effort upper bound: per-second max."""
    names = list(series)
    _validate(series)
    columns = np.vstack([series[n] for n in names])
    best_idx = np.argmax(columns, axis=0)
    achieved = columns[best_idx, np.arange(columns.shape[1])]
    switches = int(np.sum(best_idx[1:] != best_idx[:-1]))
    return SwitchOutcome(
        achieved_mbps=[float(v) for v in achieved],
        switches=switches,
        serving=[names[i] for i in best_idx],
    )


def hysteresis_switching(
    series: dict[str, list[float]], policy: SwitchPolicy | None = None
) -> SwitchOutcome:
    """A realistic single-homed client with switching costs.

    The client only observes the network it is currently attached to at
    full fidelity; candidates are judged by their actual capacity (an
    optimistic assumption — real clients probe — so the result is an upper
    bound on single-homed switching).
    """
    policy = policy or SwitchPolicy()
    names = list(series)
    _validate(series)
    length = len(series[names[0]])
    columns = {n: np.asarray(series[n], float) for n in names}

    current = max(names, key=lambda n: columns[n][0])
    achieved: list[float] = []
    serving: list[str] = []
    switches = 0
    better_streak: dict[str, int] = {n: 0 for n in names}
    outage_left = 0

    for t in range(length):
        # Update challenger streaks.
        for name in names:
            if name == current:
                better_streak[name] = 0
                continue
            if columns[name][t] > (1.0 + policy.margin) * columns[current][t]:
                better_streak[name] += 1
            else:
                better_streak[name] = 0

        if outage_left > 0:
            outage_left -= 1
            achieved.append(0.0)
            serving.append(current)
            continue

        challenger = max(names, key=lambda n: better_streak[n])
        if better_streak[challenger] >= policy.dwell_s:
            current = challenger
            switches += 1
            better_streak = {n: 0 for n in names}
            outage_left = policy.switch_outage_s
            if outage_left > 0:
                outage_left -= 1
                achieved.append(0.0)
                serving.append(current)
                continue

        achieved.append(float(columns[current][t]))
        serving.append(current)

    return SwitchOutcome(
        achieved_mbps=achieved, switches=switches, serving=serving
    )


def _validate(series: dict[str, list[float]]) -> None:
    if not series:
        raise ValueError("need at least one network series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {lengths}")
    if lengths == {0}:
        raise ValueError("series are empty")
