"""Vectorized fast path for the campaign hot loop.

The campaign's per-second Python loops — mobility trace generation,
constellation visibility, bent-pipe RTT pricing, and fluid-model sampling
— dominate campaign wall time (see ``docs/PERFORMANCE.md``).  This package
precomputes the *deterministic* parts of those loops as numpy timelines
once per drive and replays them as array lookups, while every random draw
keeps its exact legacy call sequence.  The contract is byte-identity: for
any config, the fast path produces bit-for-bit the same datasets,
checkpoints, and deterministic manifests as the legacy per-sample path
(``tests/test_fastpath_equivalence.py`` is the proof; the legacy path
stays available behind ``CampaignConfig(fastpath=False)``).

Layout:

* :mod:`repro.core.fastpath.route` — FP-exact precomputed route lookup
  (replaces the O(segments) haversine rescan per mobility step);
* :mod:`repro.core.fastpath.timeline` — per-drive satellite visibility /
  elevation / bent-pipe RTT timelines shared by both Starlink channels;
* :mod:`repro.core.fastpath.fluid` — scalar-lane fluid TCP stepping and
  whole-trace array sampling for the fluid transport models
  (:class:`repro.conditions.ConditionsArray` in, series out).
"""

from repro.core.fastpath.fluid import (
    FluidTcpFast,
    fluid_tcp_series_fast,
    fluid_udp_series_fast,
)
from repro.core.fastpath.route import RouteTable
from repro.core.fastpath.timeline import GeometryTimeline

__all__ = [
    "FluidTcpFast",
    "GeometryTimeline",
    "RouteTable",
    "fluid_tcp_series_fast",
    "fluid_udp_series_fast",
]
