"""Re-export of :class:`repro.geo.route_table.RouteTable`.

The route table lives in :mod:`repro.geo` so that
:class:`repro.geo.mobility.VehicleTrace` can use it without importing
``repro.core`` (which drags in scipy); the fast path re-exports it here
as part of its public surface.
"""

from __future__ import annotations

from repro.geo.route_table import RouteTable

__all__ = ["RouteTable"]
