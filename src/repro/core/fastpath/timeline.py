"""Per-drive satellite geometry timelines.

The legacy Starlink channel recomputes, for every sampled second: all
satellite positions, all 1,584 look angles, and the bent-pipe gateway
geometry — twice over for the two dishes on the vehicle.  All of that is
RNG-free and depends only on (constellation, time, vehicle position), so
a drive can precompute it once as arrays and the channels replay lookups.

Bit-exactness strategy (each step verified by
``tests/test_fastpath_equivalence.py``):

* the candidate *prefilter* is approximate and trig-free: satellite /
  observer dot products come from the per-plane basis decomposition
  (:meth:`repro.leo.constellation.Constellation.plane_frames`) and the
  angle-sum identity, with a full degree of slack below the lowest mask
  any dish can have (the Mobility dish's 15 deg floor) — slack that
  dwarfs the ~1e-12 relative error of the reordered arithmetic;
* *exact* positions are then computed only for the union of surviving
  satellites via
  :meth:`repro.leo.constellation.Constellation.positions_ecef_subset_many`,
  bit-identical to slicing the full per-second result (elementwise
  ufuncs and row-wise matmul/norm are shape-independent);
* candidates are stored sorted by descending elevation, so a lookup
  walks the sorted prefix and stops at the first candidate below the
  dish mask.  ``np.argsort`` over *distinct* keys defines the same
  total order on any subset, which is how the sorted-prefix walk
  reproduces the legacy per-call ``argsort``; seconds with duplicated
  elevations (never observed in practice) fall back to a literal
  replay of the legacy filter;
* gateway ground distances are computed with a vectorized haversine
  whose only bitwise divergence from the exact scalar
  :func:`repro.geo.coords.haversine_km` is ulp-level (``math.asin`` vs
  ``np.arcsin``); they only feed *threshold* and *argmin* decisions, so
  any pair within a generous boundary band of a decision is re-checked
  with the exact scalar function.  The bent-pipe gateway scan uses the
  same approximate-scan / exact-winner pattern per lookup.
"""

from __future__ import annotations

import math
import weakref

import numpy as np

from repro.geo.classify import obstruction_elevation_mask_deg
from repro.geo.coords import GeoPoint, geodetic_to_ecef_km, haversine_km
from repro.leo.constellation import EARTH_ROTATION_RAD_S, Constellation
from repro.leo.dish import DishModel
from repro.leo.gateway import GatewayNetwork
from repro.leo.visibility import VisibleSatellite
from repro.units import EARTH_RADIUS_KM, SPEED_OF_LIGHT_KM_S

#: Lowest elevation mask any dish/obstruction combination can produce
#: (the Mobility dish's 15 deg field-of-view floor).
FLOOR_DEG = 15.0

#: Slack prefilter threshold: sine of one degree below the floor.  The
#: prefilter uses approximate geometry (plane-basis dot products via the
#: angle-sum identity), so it must over-select; a full degree of slack
#: dwarfs the ~1e-12 relative error of reordered float arithmetic.
_SIN_PREFILTER = math.sin(math.radians(FLOOR_DEG - 1.0))

#: Time chunk for the batched geometry build, bounding peak memory
#: (a chunk holds a handful of (CHUNK, num_sats) float64 scratch arrays).
_CHUNK = 512

#: Maximum gateway ground distance the bent-pipe path considers (km).
_GW_REACH_KM = 1_500.0

#: Boundary band for approximate-vs-exact adjudication (km or ms).  The
#: vectorized haversine / gateway scans differ from the exact scalar
#: arithmetic by reduction-order ulps (~1e-12 relative); any comparison
#: decided by less than this generous margin is re-run exactly.
_EXACT_BAND = 1e-6

#: Per-constellation cache of float32-cast plane frames.  The prefilter
#: is approximate with a full degree of slack, so it runs in float32
#: (error ~1e-6 vs slack ~1.7e-2): half the memory traffic of the
#: (chunk, num_satellites) scratch arrays.  One campaign builds one
#: timeline per drive from the same constellation, so the cast (and the
#: basis transpose) happens once per campaign, not once per drive.
_FRAMES_F32: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _frames_f32(constellation: Constellation) -> list[dict]:
    frames = _FRAMES_F32.get(constellation)
    if frames is None:
        frames = [
            {
                "radius_km": fr["radius_km"],
                "mean_motion_rad_s": fr["mean_motion_rad_s"],
                "cos_phase": np.asarray(fr["cos_phase"], dtype=np.float32),
                "sin_phase": np.asarray(fr["sin_phase"], dtype=np.float32),
                "p_T": np.asarray(fr["p_vec"], dtype=np.float32).T.copy(),
                "q_T": np.asarray(fr["q_vec"], dtype=np.float32).T.copy(),
            }
            for fr in constellation.plane_frames()
        ]
        _FRAMES_F32[constellation] = frames
    return frames


class GeometryTimeline:
    """Precomputed per-second satellite geometry for one drive.

    Built from the sampled seconds of a drive (``times``) and the vehicle
    position at each (``observers``).  Exposes exactly the two lookups
    the Starlink channel needs: the legacy-identical visible-satellite
    candidate list, and the legacy-identical bent-pipe space RTT.
    """

    def __init__(
        self,
        constellation: Constellation,
        gateways: GatewayNetwork,
        times: list[float],
        observers: list[GeoPoint],
    ):
        if len(times) != len(observers):
            raise ValueError(
                f"times and observers must align, got {len(times)} != {len(observers)}"
            )
        self._index = {t: i for i, t in enumerate(times)}
        n_t = len(times)
        # Vectorized :func:`geodetic_to_ecef_km` / :func:`enu_basis` over
        # every observer at once: the scalar versions are elementwise trig
        # on float64, which the batched ufuncs reproduce bit-for-bit.
        lat = np.radians(np.asarray([o.lat_deg for o in observers], dtype=float))
        lon = np.radians(np.asarray([o.lon_deg for o in observers], dtype=float))
        clat, slat = np.cos(lat), np.sin(lat)
        clon, slon = np.cos(lon), np.sin(lon)
        self._user_ecef = np.column_stack(
            [
                EARTH_RADIUS_KM * clat * clon,
                EARTH_RADIUS_KM * clat * slon,
                EARTH_RADIUS_KM * slat,
            ]
        )
        bases = np.empty((n_t, 3, 3))
        bases[:, 0, 0] = -slon
        bases[:, 0, 1] = clon
        bases[:, 0, 2] = 0.0
        bases[:, 1, 0] = -slat * clon
        bases[:, 1, 1] = -slat * slon
        bases[:, 1, 2] = clat
        bases[:, 2, 0] = clat * clon
        bases[:, 2, 1] = clat * slon
        bases[:, 2, 2] = slat

        # -- candidate satellites per second (sorted by elevation) -------
        # Plain Python lists per second: the per-sample lookups walk a
        # short sorted prefix, which is faster scalar than re-dispatching
        # numpy kernels on 40-element arrays every call.
        self._cand_idx: list[list[int]] = [[] for _ in range(n_t)]
        self._cand_elev: list[list[float]] = [[] for _ in range(n_t)]
        self._cand_azim: list[list[float]] = [[] for _ in range(n_t)]
        self._cand_range: list[list[float]] = [[] for _ in range(n_t)]
        self._cand_pos: list[np.ndarray] = [
            np.zeros((0, 3)) for _ in range(n_t)
        ]
        self._cand_row: list[dict[int, int]] = [{} for _ in range(n_t)]
        self._has_ties = np.zeros(n_t, dtype=bool)
        self._vs_cache: dict[tuple[int, int], VisibleSatellite] = {}
        times_arr = np.asarray(times, dtype=float)
        frames = _frames_f32(constellation)
        for lo in range(0, n_t, _CHUNK):
            hi = min(lo + _CHUNK, n_t)
            self._build_chunk(
                constellation, frames, times_arr, bases, lo, hi
            )

        # -- gateway geometry per second ---------------------------------
        self._gw = gateways
        gw_list = gateways.gateways
        self._gw_ecef = [geodetic_to_ecef_km(g.location) for g in gw_list]
        self._gw_pos = (
            np.asarray(self._gw_ecef) if gw_list else np.zeros((0, 3))
        )
        self._backhaul_list = [g.backhaul_ms for g in gw_list]
        self._backhaul_arr = np.asarray(self._backhaul_list, dtype=float)
        n_g = len(gw_list)
        if n_g:
            # Vectorized haversine (same formula as the exact scalar
            # one); only threshold / argmin decisions use it, and any
            # pair within the boundary band is adjudicated exactly.
            lat1 = np.radians(np.asarray([o.lat_deg for o in observers]))
            lon1 = np.radians(np.asarray([o.lon_deg for o in observers]))
            lat2 = np.radians(np.asarray([g.location.lat_deg for g in gw_list]))
            lon2 = np.radians(np.asarray([g.location.lon_deg for g in gw_list]))
            dlat = lat2[None, :] - lat1[:, None]
            dlon = lon2[None, :] - lon1[:, None]
            h = (
                np.sin(dlat / 2.0) ** 2
                + np.cos(lat1)[:, None] * np.cos(lat2)[None, :]
                * np.sin(dlon / 2.0) ** 2
            )
            ground = (
                2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))
            )
            reach_mask = ground <= _GW_REACH_KM
            for i, j in zip(*np.nonzero(np.abs(ground - _GW_REACH_KM) <= _EXACT_BAND)):
                reach_mask[i, j] = (
                    haversine_km(observers[i], gw_list[j].location)
                    <= _GW_REACH_KM
                )
            self._reach = [np.nonzero(reach_mask[i])[0] for i in range(n_t)]
            # First index achieving the minimum — same gateway the legacy
            # strict-< scan in ``GatewayNetwork.nearest`` picks; rows with
            # a near-tie are re-scanned with exact scalar distances.
            nearest = np.argmin(ground, axis=1)
            rowmin = ground[np.arange(n_t), nearest]
            for i in range(n_t):
                cand = np.nonzero(ground[i] <= rowmin[i] + _EXACT_BAND)[0]
                if cand.size > 1:
                    exact = [
                        haversine_km(observers[i], gw_list[j].location)
                        for j in cand
                    ]
                    nearest[i] = cand[int(np.argmin(exact))]
            self._nearest_idx = nearest
        else:
            self._reach = [np.zeros(0, dtype=np.intp) for _ in range(n_t)]
            self._nearest_idx = np.zeros(n_t, dtype=np.int64)
        self._rtt_cache: dict[tuple[int, int], float] = {}
        if n_g:
            self._precompute_top_rtts()

    def _precompute_top_rtts(self) -> None:
        """Warm the RTT cache for every second's top two candidates.

        The serving satellite is either the highest-elevation candidate
        or — thanks to the handover process's within-slot hysteresis — a
        recently-best one still near the top, so warming the first two
        ranks absorbs nearly every :meth:`bent_pipe_rtt_ms` lookup.
        Same approximate-scan / exact-winner scheme as the lazy path —
        the cached values are bit-identical to the legacy per-call
        arithmetic.
        """
        n_t = len(self._cand_idx)
        cache = self._rtt_cache
        for rank in (0, 1):
            top_t = [t for t in range(n_t) if len(self._cand_idx[t]) > rank]
            if not top_t:
                continue
            sat = np.array([self._cand_pos[t][rank] for t in top_t])
            diff = sat - self._user_ecef[top_t]
            up_a = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            d = sat[:, None, :] - self._gw_pos[None, :, :]
            down_a = np.sqrt(np.einsum("tgj,tgj->tg", d, d))
            vals = 2.0 * (
                (up_a[:, None] + down_a) / SPEED_OF_LIGHT_KM_S * 1000.0
                + self._backhaul_arr[None, :]
            )
            for k, t in enumerate(top_t):
                reach = self._reach[t]
                if reach.size:
                    sel = vals[k][reach]
                    cand = reach[sel <= sel.min() + _EXACT_BAND].tolist()
                else:
                    cand = [int(self._nearest_idx[t])]
                sat_t = self._cand_pos[t][rank]
                du = sat_t - self._user_ecef[t]
                up_km = math.sqrt(np.dot(du, du))
                best_ms = float("inf")
                for j in cand:
                    dg = sat_t - self._gw_ecef[j]
                    down_km = math.sqrt(np.dot(dg, dg))
                    one_way_ms = (
                        (up_km + down_km) / SPEED_OF_LIGHT_KM_S * 1000.0
                        + self._backhaul_list[j]
                    )
                    best_ms = min(best_ms, 2.0 * one_way_ms)
                cache[(t, self._cand_idx[t][rank])] = best_ms

    def _build_chunk(
        self,
        constellation: Constellation,
        frames: list[dict],
        times_arr: np.ndarray,
        bases: np.ndarray,
        lo: int,
        hi: int,
    ) -> None:
        """Prefilter + exact geometry for timeline rows [lo, hi)."""
        times = times_arr[lo:hi]
        user = self._user_ecef[lo:hi]
        up = bases[lo:hi, 2, :]
        # Observer vectors rotated into the inertial frame (the inverse
        # of the constellation's inertial->ECEF rotation).  Everything
        # below is float32: the prefilter over-selects by a full degree
        # of slack, which dwarfs single-precision error.
        theta = EARTH_ROTATION_RAD_S * times
        ct, st = np.cos(theta), np.sin(theta)
        up_i = np.column_stack(
            [up[:, 0] * ct - up[:, 1] * st, up[:, 0] * st + up[:, 1] * ct, up[:, 2]]
        ).astype(np.float32)
        obs_i = np.column_stack(
            [
                user[:, 0] * ct - user[:, 1] * st,
                user[:, 0] * st + user[:, 1] * ct,
                user[:, 2],
            ]
        ).astype(np.float32)
        obs_dot_up = np.einsum("td,td->t", user, up).astype(np.float32)[:, None]
        obs_norm2 = np.einsum("td,td->t", user, user)

        keep = np.zeros((hi - lo, constellation.num_satellites), dtype=bool)
        base = 0
        for fr in frames:
            r = float(fr["radius_km"])
            mm = float(fr["mean_motion_rad_s"])
            cph, sph = fr["cos_phase"], fr["sin_phase"]
            n = cph.size
            mt = mm * times
            # cos/sin(phase0 + mm*t) via the angle-sum identity: exact in
            # real arithmetic, ~1e-6 off in float32 — prefilter only.
            cmt = np.cos(mt).astype(np.float32)[:, None]
            smt = np.sin(mt).astype(np.float32)[:, None]
            cosarg = cmt * cph - smt * sph
            sinarg = smt * cph + cmt * sph
            # sat . v for ECEF vectors v, via the per-satellite in-plane
            # basis: sat_inertial = r * (cos(arg) p + sin(arg) q).
            pu = up_i @ fr["p_T"]
            qu = up_i @ fr["q_T"]
            po = obs_i @ fr["p_T"]
            qo = obs_i @ fr["q_T"]
            z_enu = r * (cosarg * pu + sinarg * qu) - obs_dot_up
            rel2 = (
                (r * r + obs_norm2).astype(np.float32)[:, None]
                - (2.0 * r) * (cosarg * po + sinarg * qo)
            )
            keep[:, base : base + n] = z_enu >= _SIN_PREFILTER * np.sqrt(rel2)
            base += n

        union = np.nonzero(keep.any(axis=0))[0]
        sat_u = constellation.positions_ecef_subset_many(times, union)
        keep_u = keep[:, union]
        nt = hi - lo
        # Exact legacy arithmetic on the surviving rows only — flattened
        # across the chunk.  Elementwise ufuncs and row-local norms are
        # shape-independent, so the flat pass produces identical bits to
        # the per-second evaluation; only the ENU rotation stays
        # per-second (batched BLAS matmul reduces in a different order
        # than the legacy (K, 3) @ (3, 3) call and drifts by an ulp).
        t_rel, cols = np.nonzero(keep_u)
        sat_flat = sat_u[keep_u]  # (K, 3) rows in (second, satellite) order
        counts = np.bincount(t_rel, minlength=nt)
        offsets = np.zeros(nt + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        rel_flat = sat_flat - np.repeat(self._user_ecef[lo:hi], counts, axis=0)
        enu_flat = np.empty_like(rel_flat)
        for trel in range(nt):
            o0, o1 = offsets[trel], offsets[trel + 1]
            if o0 != o1:
                enu_flat[o0:o1] = rel_flat[o0:o1] @ bases[lo + trel].T
        rng_flat = np.linalg.norm(enu_flat, axis=1)
        with np.errstate(invalid="ignore"):
            elev_flat = np.degrees(
                np.arcsin(np.clip(enu_flat[:, 2] / rng_flat, -1.0, 1.0))
            )
        azim_flat = (
            np.degrees(np.arctan2(enu_flat[:, 0], enu_flat[:, 1])) + 360.0
        ) % 360.0

        above = elev_flat >= FLOOR_DEG
        t_sel = t_rel[above]
        elev_sel = elev_flat[above]
        # Stable sort by (second, descending elevation): with distinct
        # elevations this is exactly the per-second ``argsort(-elev)``
        # the legacy path performs — a total order does not depend on
        # the sorting algorithm.  Duplicated elevations within a second
        # (never observed) are flagged for the tied-second replay.
        perm = np.lexsort((-elev_sel, t_sel))
        t_sorted = t_sel[perm]
        elev_sorted = elev_sel[perm]
        idx_sorted = union[cols[above][perm]]
        azim_sorted = azim_flat[above][perm]
        range_sorted = rng_flat[above][perm]
        pos_sorted = sat_flat[above][perm]
        if elev_sorted.size > 1:
            tie = (t_sorted[1:] == t_sorted[:-1]) & (
                elev_sorted[1:] == elev_sorted[:-1]
            )
            for k in np.nonzero(tie)[0]:
                self._has_ties[lo + int(t_sorted[k])] = True

        a_off = np.zeros(nt + 1, dtype=np.intp)
        np.cumsum(np.bincount(t_sel, minlength=nt), out=a_off[1:])
        idx_list = idx_sorted.tolist()
        elev_list = elev_sorted.tolist()
        azim_list = azim_sorted.tolist()
        range_list = range_sorted.tolist()
        for trel in range(nt):
            t = lo + trel
            o0, o1 = int(a_off[trel]), int(a_off[trel + 1])
            ids = idx_list[o0:o1]
            self._cand_idx[t] = ids
            self._cand_elev[t] = elev_list[o0:o1]
            self._cand_azim[t] = azim_list[o0:o1]
            self._cand_range[t] = range_list[o0:o1]
            self._cand_pos[t] = pos_sorted[o0:o1]
            self._cand_row[t] = dict(zip(ids, range(o1 - o0)))

    # -- lookups ---------------------------------------------------------

    def index_of(self, time_s: float) -> int | None:
        """Timeline row for ``time_s``, or None if the second is unknown."""
        return self._index.get(time_s)

    def visible(
        self,
        t_idx: int,
        dish: DishModel,
        obstruction_fraction: float = 0.0,
        blocked_sectors: list[tuple[float, float]] | None = None,
        max_candidates: int = 8,
    ) -> list[VisibleSatellite]:
        """Replay of :meth:`repro.leo.visibility.VisibilityModel.visible_satellites`.

        Walks the elevation-sorted candidate prefix, applying the same
        mask and wedge predicates the legacy full-array path applies;
        with distinct elevations the sorted-prefix walk emits exactly
        the rows (and ordering) of the legacy per-call argsort.
        """
        if self._has_ties[t_idx]:
            return self._visible_tied(
                t_idx, dish, obstruction_fraction, blocked_sectors, max_candidates
            )
        # Inlined dish.effective_mask_deg(obstruction_elevation_mask_deg(f))
        # — same expressions, association order, and max() semantics; the
        # range validation is skipped because the obstruction process
        # clamps its fraction to [0, 0.95].
        mask = 70.0 * math.sin(obstruction_fraction * math.pi / 2.0) ** 1.5
        min_elev = dish.min_elevation_deg
        if mask < min_elev:
            mask = min_elev
        elev = self._cand_elev[t_idx]
        azim = self._cand_azim[t_idx]
        out: list[VisibleSatellite] = []
        cache = self._vs_cache
        for i, e in enumerate(elev):
            if e < mask:
                break  # sorted descending: nothing below can pass
            if blocked_sectors and e < 60.0:
                a = azim[i]
                blocked = False
                for start, end in blocked_sectors:
                    # Scalar replay of visibility._azimuth_in_sector
                    # (pure comparisons, no arithmetic to drift).
                    if start <= end:
                        if start <= a <= end:
                            blocked = True
                            break
                    elif a >= start or a <= end:
                        blocked = True
                        break
                if blocked:
                    continue
            key = (t_idx, i)
            vs = cache.get(key)
            if vs is None:
                vs = VisibleSatellite(
                    index=self._cand_idx[t_idx][i],
                    elevation_deg=e,
                    azimuth_deg=azim[i],
                    slant_range_km=self._cand_range[t_idx][i],
                )
                cache[key] = vs
            out.append(vs)
            if len(out) >= max_candidates:
                break
        return out

    def _visible_tied(
        self,
        t_idx: int,
        dish: DishModel,
        obstruction_fraction: float,
        blocked_sectors: list[tuple[float, float]] | None,
        max_candidates: int,
    ) -> list[VisibleSatellite]:
        """Literal legacy replay for seconds with duplicated elevations.

        ``np.argsort``'s introsort is unstable, so when two candidates
        share an elevation the subset sort the legacy path performs can
        order them differently from the build-time full sort; replaying
        the legacy filter on arrays keeps those (never-observed) seconds
        bit-exact too.
        """
        from repro.leo.visibility import _azimuth_in_sector

        elev = np.asarray(self._cand_elev[t_idx])
        azim = np.asarray(self._cand_azim[t_idx])
        mask = dish.effective_mask_deg(
            obstruction_elevation_mask_deg(obstruction_fraction)
        )
        usable = elev >= mask
        if blocked_sectors:
            for start, end in blocked_sectors:
                in_wedge = _azimuth_in_sector(azim, start, end)
                usable &= ~(in_wedge & (elev < 60.0))
        idx = np.nonzero(usable)[0]
        if idx.size == 0:
            return []
        order = idx[np.argsort(-elev[idx])][:max_candidates]
        return [
            VisibleSatellite(
                index=self._cand_idx[t_idx][i],
                elevation_deg=float(elev[i]),
                azimuth_deg=float(azim[i]),
                slant_range_km=float(self._cand_range[t_idx][i]),
            )
            for i in order
        ]

    def bent_pipe_rtt_ms(
        self, t_idx: int, sat_index: int, scheduling_ms: float = 0.0
    ) -> float:
        """Replay of :meth:`repro.leo.gateway.GatewayNetwork.bent_pipe_rtt_ms`.

        Reuses the per-drive gateway ground distances and reachable-set
        lists; the satellite position comes from the candidate table (the
        serving satellite is always a current candidate when called).
        The space segment is RNG-free, so the (second, satellite) result
        is cached — the two dishes usually track the same satellite.
        """
        key = (t_idx, sat_index)
        cached = self._rtt_cache.get(key)
        if cached is not None:
            return cached + scheduling_ms
        row = self._cand_row[t_idx].get(sat_index)
        if row is None:
            raise KeyError(
                f"satellite {sat_index} is not a candidate at timeline row {t_idx}"
            )
        sat = self._cand_pos[t_idx][row]
        diff = sat - self._user_ecef[t_idx]
        # sqrt(dot(x, x)) is bitwise what np.linalg.norm computes for a
        # 1-D vector; the axis-batched norm reduces in a different order
        # and drifts by an ulp.
        up_km = math.sqrt(np.dot(diff, diff))
        reach = self._reach[t_idx]
        if reach.size:
            # Approximate vectorized scan over the reachable gateways;
            # the winner (and anything within the boundary band of it,
            # i.e. physically sub-millimetre ties) is recomputed with
            # the exact legacy scalar arithmetic.
            d = self._gw_pos[reach] - sat
            approx = 2.0 * (
                (up_km + np.sqrt(np.einsum("ij,ij->i", d, d)))
                / SPEED_OF_LIGHT_KM_S
                * 1000.0
                + self._backhaul_arr[reach]
            )
            best_ms = float("inf")
            for j in reach[approx <= approx.min() + _EXACT_BAND].tolist():
                dg = sat - self._gw_ecef[j]
                down_km = math.sqrt(np.dot(dg, dg))
                one_way_ms = (
                    (up_km + down_km) / SPEED_OF_LIGHT_KM_S * 1000.0
                    + self._backhaul_list[j]
                )
                best_ms = min(best_ms, 2.0 * one_way_ms)
        else:
            j = int(self._nearest_idx[t_idx])
            gw = self._gw.gateways[j]
            dg = sat - self._gw_ecef[j]
            down_km = math.sqrt(np.dot(dg, dg))
            best_ms = 2.0 * (
                (up_km + down_km) / SPEED_OF_LIGHT_KM_S * 1000.0 + gw.backhaul_ms
            )
        self._rtt_cache[key] = best_ms
        return best_ms + scheduling_ms
