"""Scalarized channel subclasses for the fast path.

The legacy channels (:class:`repro.leo.channel.StarlinkChannel`,
:class:`repro.cellular.channel.CellularChannel`) call numpy ufuncs on
scalars once per simulated second — ``np.clip``, ``np.sin`` — paying ufunc
dispatch for single floats.  These subclasses replace those calls with the
``math`` / builtin equivalents that are bitwise identical on float64
scalars (``math.sin(math.radians(x)) == np.sin(np.radians(x))`` and
``min(max(x, lo), hi) == np.clip(x, lo, hi)``; both verified by
``tests/test_fastpath_equivalence.py``).  Every random draw keeps the
legacy order and generator, so the emitted
:class:`~repro.conditions.LinkConditions` are byte-identical.

The legacy classes stay untouched as the readable reference
implementation; the campaign only instantiates these subclasses when
``CampaignConfig.fastpath`` is on.
"""

from __future__ import annotations

import math

from repro.cellular.capacity import (
    BAND_BANDWIDTH_MHZ,
    UPLINK_FRACTION,
    CellLoad,
    draw_band,
)
from repro.cellular.carriers import BAND_PEAK_DL_MBPS, BAND_PEAK_UL_MBPS
from repro.cellular.channel import CellularChannel
from repro.cellular.deployment import nearest_site_distance_km
from repro.cellular.propagation import (
    LINK_BUDGET_DB,
    PATH_LOSS_EXPONENT,
    REFERENCE_DISTANCE_KM,
    REFERENCE_LOSS_DB,
)
from repro.conditions import LinkConditions, outage
from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint
from repro.geo.terrain import (
    _EPISODE_RATE,
    _MEAN_OBSTRUCTION,
    ObstructionProcess,
    ObstructionSample,
)
from repro.leo.channel import StarlinkChannel
from repro.leo.visibility import VisibilityModel

__all__ = [
    "CellLoadFast",
    "CellularChannelFast",
    "ObstructionProcessFast",
    "StarlinkChannelFast",
]


def _adopt(fast_cls, legacy):
    """Rebind a freshly-constructed legacy component to its fast subclass.

    Copies the component's state (including its generator reference, so
    the RNG stream position is shared, not restarted) instead of
    re-running ``__init__``.
    """
    fast = fast_cls.__new__(fast_cls)
    fast.__dict__.update(legacy.__dict__)
    return fast


class ObstructionProcessFast(ObstructionProcess):
    """Obstruction process with the per-second ``np.clip`` scalarized.

    The area-keyed constants are cached behind an identity check: the
    vehicle stays in one area type for long stretches, so the enum-dict
    lookups (which hash the member name) collapse to one ``is``.
    """

    _area_cache: tuple[AreaType | None, float, float] = (None, 0.0, 0.0)

    def step(self, area: AreaType) -> ObstructionSample:
        cached = self._area_cache
        if cached[0] is not area:
            cached = (area, _MEAN_OBSTRUCTION[area], _EPISODE_RATE[area])
            self._area_cache = cached
        mean = cached[1]
        noise = float(self._rng.normal(0.0, self.volatility))
        self._fraction += self.reversion * (mean - self._fraction) + noise
        self._fraction = min(max(self._fraction, 0.0), 0.95)

        if self._episode_left_s > 0:
            self._episode_left_s -= 1
            return ObstructionSample(fraction=0.95, deep_blockage=True)

        if self._rng.random() < cached[2]:
            self._episode_left_s = int(self._rng.integers(3, 13))
            return ObstructionSample(fraction=0.95, deep_blockage=True)

        return ObstructionSample(fraction=self._fraction, deep_blockage=False)


class CellLoadFast(CellLoad):
    """Cell-load AR(1) with the per-second ``np.clip`` scalarized."""

    def step(self, area: AreaType) -> float:
        mean = self.MEAN_LOAD[area]
        self._load += 0.15 * (mean - self._load) + float(self._gen.normal(0, 0.03))
        self._load = min(max(self._load, 0.02), 0.95)
        return 1.0 - self._load


class CellularChannelFast(CellularChannel):
    """Cellular channel with the whole per-second pipeline scalarized.

    :meth:`sample` inlines the tracker / shadowing / SNR / band / load /
    rate chain of the legacy method into one function body: identical
    arithmetic (same expressions, same association order), identical
    draw sequence on the same generator, no per-component method
    dispatch.  State still lives on the legacy component objects so
    ``reset()`` and handover accounting behave identically.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.load = _adopt(CellLoadFast, self.load)
        # (area, hole_probability/8, site_density, mean_nearest,
        # mean_load) behind an identity check — the vehicle stays in an
        # area type for long stretches, so the enum-dict lookups and the
        # derived constants collapse to one ``is`` per second.  The
        # cached values are exactly what the legacy expressions compute.
        self._area_cache: tuple = (None, 0.0, 0.0, 0.0, 0.0)
        # (band, bandwidth, peak_dl, peak_ul) — bands persist 90 s.
        self._band_cache: tuple = (None, 0.0, 0.0, 0.0)

    def sample(
        self,
        time_s: float,
        position: GeoPoint,
        speed_kmh: float,
        area: AreaType,
    ) -> LinkConditions:
        self._m_samples.inc()
        gen = self._gen
        carrier = self.carrier
        cached = self._area_cache
        if cached[0] is not area:
            density = carrier.site_density[area]
            cached = (
                area,
                carrier.hole_probability[area] / 8.0,
                density,
                0.5 / math.sqrt(density),
                CellLoad.MEAN_LOAD[area],
            )
            self._area_cache = cached
        _, hole_rate, density, mean_nearest, mean_load = cached
        if time_s < self._hole_until_s:
            self._m_outage.inc()
            return outage(time_s)
        if gen.random() < hole_rate:
            self._hole_until_s = time_s + float(gen.uniform(3.0, 15.0))
            self._m_outage.inc()
            return outage(time_s)

        # ServingCellTracker.step: the drift branch is the hot path; the
        # (rare) attach/handover branch reuses the legacy draw function.
        tracker = self.tracker
        distance_km = tracker._distance_km
        if distance_km is None or tracker._area != area:
            distance_km = nearest_site_distance_km(density, gen)
            tracker._area = area
            tracker.handover_count += 1
        else:
            drift_km = speed_kmh / 3600.0 * float(gen.uniform(-0.3, 1.0))
            distance_km = max(0.01, distance_km + drift_km)
            if distance_km > tracker.HANDOVER_RADIUS_FACTOR * mean_nearest:
                distance_km = nearest_site_distance_km(density, gen)
                tracker.handover_count += 1
        tracker._distance_km = distance_km
        if tracker.handover_count != self._counted_handovers:
            self._m_handovers.inc(
                tracker.handover_count - self._counted_handovers
            )
            self._counted_handovers = tracker.handover_count

        # CorrelatedShadowing.step + snr_db.
        shadowing = self.shadowing
        distance_m = max(speed_kmh, 0.0) / 3.6
        rho = math.exp(-distance_m / shadowing.decorrelation_m)
        innovation = float(
            gen.normal(0.0, shadowing.sigma_db * math.sqrt(1.0 - rho**2))
        )
        shadow_db = rho * shadowing._value_db + innovation
        shadowing._value_db = shadow_db
        fading_db = float(gen.normal(0.0, 1.5))
        d_ref = max(distance_km, REFERENCE_DISTANCE_KM)
        path_loss = REFERENCE_LOSS_DB + 10.0 * PATH_LOSS_EXPONENT * math.log10(
            d_ref / REFERENCE_DISTANCE_KM
        )
        snr = LINK_BUDGET_DB - path_loss + shadow_db + fading_db

        band = self._band
        if band is None or time_s >= self._band_until_s:
            mix = carrier.band_mix.get(area) or {}
            if not mix or sum(mix.values()) <= 0.0:
                self._band = None
                self._m_outage.inc()
                return outage(time_s, loss_burst=self.LOSS_BURST)
            band = draw_band(mix, gen)
            self._band = band
            self._band_until_s = time_s + self.BAND_DWELL_S

        # CellLoad.step.
        load = self.load
        level = load._load
        level = level + (
            0.15 * (mean_load - level) + float(gen.normal(0, 0.03))
        )
        if level < 0.02:
            level = 0.02
        elif level > 0.95:
            level = 0.95
        load._load = level
        share = 1.0 - level

        # achievable_rate (shannon_efficiency capped at 7.4 bits/s/Hz).
        band_cached = self._band_cache
        if band_cached[0] is not band:
            band_cached = (
                band,
                BAND_BANDWIDTH_MHZ[band],
                BAND_PEAK_DL_MBPS[band],
                BAND_PEAK_UL_MBPS[band],
            )
            self._band_cache = band_cached
        _, bandwidth, peak_dl, peak_ul = band_cached
        efficiency = math.log2(1.0 + 10.0 ** ((snr - 3.0) / 10.0))
        if efficiency > 7.4:
            efficiency = 7.4
        dl = bandwidth * efficiency * share
        if dl > peak_dl:
            dl = peak_dl
        snr_ul = snr - 2.0
        ul_efficiency = math.log2(1.0 + 10.0 ** ((snr_ul - 3.0) / 10.0))
        if ul_efficiency > 7.4:
            ul_efficiency = 7.4
        ul = bandwidth * UPLINK_FRACTION * ul_efficiency * share
        if ul > peak_ul:
            ul = peak_ul

        # _rtt_ms then _loss_rate, in the legacy draw order.
        radio_ms = float(gen.exponential(6.0))
        weak_penalty = (5.0 - snr) * 2.0 if snr < 5.0 else 0.0
        rtt = carrier.core_rtt_ms + radio_ms + weak_penalty
        weak_loss = 0.0008 if snr < -5.0 else 0.0
        burst = float(gen.exponential(5e-6))
        loss = 5e-6 + weak_loss + burst
        if loss < 0.0:
            loss = 0.0
        elif loss > 1.0:
            loss = 1.0
        return LinkConditions(
            time_s=time_s,
            downlink_mbps=dl,
            uplink_mbps=ul,
            rtt_ms=rtt,
            loss_rate=loss,
            loss_burst=self.LOSS_BURST,
        )

    def _loss_rate(self, snr_db_value: float) -> float:
        base = 5e-6
        weak = 0.0008 if snr_db_value < -5.0 else 0.0
        burst = float(self._gen.exponential(5e-6))
        return min(max(base + weak + burst, 0.0), 1.0)


class StarlinkChannelFast(StarlinkChannel):
    """Starlink channel with scalarized capacity/loss inner loops."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.obstruction = _adopt(ObstructionProcessFast, self.obstruction)

    def sample(
        self,
        time_s: float,
        position: GeoPoint,
        speed_kmh: float,
        area: AreaType,
    ) -> LinkConditions:
        # Same control flow as the legacy method; the serving-satellite
        # lookup is an explicit loop (the winner is nearly always the
        # first candidate) instead of a generator expression.
        self._m_samples.inc()
        sky = self.obstruction.step(area)
        if sky.deep_blockage:
            self.handover.step(time_s, [])
            self._last_serving = -1
            self._m_outage.inc()
            return outage(time_s)

        fraction = sky.fraction
        if time_s - self._sector_refresh_s > 30.0:
            self._sectors = VisibilityModel.random_blocked_sectors(
                fraction, self._gen
            )
            self._sector_refresh_s = time_s

        timeline = self._timeline
        t_idx = timeline.index_of(time_s) if timeline is not None else None
        if t_idx is not None:
            candidates = timeline.visible(
                t_idx,
                self.dish,
                obstruction_fraction=fraction,
                blocked_sectors=self._sectors,
            )
        else:
            candidates = self.visibility.visible_satellites(
                position,
                time_s,
                self.dish,
                obstruction_fraction=fraction,
                blocked_sectors=self._sectors,
            )
        state = self.handover.step(time_s, [c.index for c in candidates])
        serving_id = state.serving_satellite
        if serving_id != self._last_serving:
            if serving_id != -1 and self._last_serving != -1:
                self._m_handovers.inc()
            self._last_serving = serving_id
        if serving_id == -1:
            self._m_outage.inc()
            return outage(time_s)

        serving = None
        for c in candidates:
            if c.index == serving_id:
                serving = c
                break
        if serving is None:
            self._m_outage.inc()
            return outage(time_s, loss_burst=self.LOSS_BURST)

        capacity_dl, capacity_ul = self._capacities(
            serving.elevation_deg, speed_kmh, fraction, state.capacity_factor
        )
        rtt_ms = self._rtt_ms(time_s, position, serving.index, t_idx=t_idx)
        loss = self._loss_rate(fraction, speed_kmh, state.extra_loss)
        return LinkConditions(
            time_s=time_s,
            downlink_mbps=capacity_dl,
            uplink_mbps=capacity_ul,
            rtt_ms=rtt_ms,
            loss_rate=loss,
            loss_burst=self.LOSS_BURST,
        )

    def _capacities(
        self,
        elevation_deg: float,
        speed_kmh: float,
        obstruction: float,
        handover_factor: float,
    ) -> tuple[float, float]:
        elev_factor = 0.70 + 0.30 * math.sin(math.radians(max(elevation_deg, 0.0)))
        self._load += 0.2 * (0.35 - self._load) + float(self._gen.normal(0, 0.06))
        self._load = min(max(self._load, 0.05), 0.95)
        share = 1.0 - self._load / self.dish.priority_weight
        motion = 1.0 - (1.0 - self.dish.motion_tracking_factor) * min(
            speed_kmh / 20.0, 1.0
        )
        sky_factor = 1.0 - 0.8 * obstruction
        fade = float(self._gen.lognormal(mean=0.0, sigma=0.12))
        factor = (
            elev_factor
            * share
            * motion
            * sky_factor
            * handover_factor
            * self.weather.capacity_factor
            * min(fade, 2.0)
        )
        dl = max(0.0, self.dish.peak_downlink_mbps * factor)
        ul = max(0.0, self.dish.peak_uplink_mbps * factor)
        return dl, ul

    def _loss_rate(
        self, obstruction: float, speed_kmh: float, handover_loss: float
    ) -> float:
        base = 0.0028 + 0.010 * obstruction
        motion_loss = self.dish.motion_loss_extra * min(speed_kmh / 20.0, 1.0)
        burst = float(self._gen.exponential(0.001))
        total = base + motion_loss + handover_loss + burst + self.weather.extra_loss
        return min(max(total, 0.0), 1.0)
