"""Scalarized fluid transport models for the campaign fast path.

:class:`repro.core.fluid.FluidTcp` is the *reference* implementation: a
small number of numpy array operations per simulated second.  That is the
right shape for readability, but at campaign scale the per-call ufunc
dispatch dominates — the arrays hold 1-8 connections.  This module
re-implements the identical arithmetic lane-by-lane in plain Python
floats, keeping a numpy call only where scalar Python computes different
bits:

* ``Generator.poisson`` — one array draw per second, exactly as the
  reference makes it, so the RNG stream advances identically (for a
  single lane the scalar draw consumes the same stream);
* ``np.argsort`` in the water-fill — its unstable introsort breaks
  demand ties, and tied lanes receive *different* shares, so the
  permutation itself is part of the contract;
* ``np.sum`` over lanes — numpy's pairwise reduction orders additions
  differently from a naive Python loop for wide arrays;
* ``np.power`` for CUBIC's cube/cube-root — the array ufunc does not
  agree bitwise with Python's ``**`` (numpy optimizes small integer
  exponents), so the fast path calls the same ufunc on scalars.

Bit-identity against the reference — same goodput series, same RNG
stream state after every step — is enforced by the golden and property
tests in ``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.conditions import ConditionsArray, LinkConditions
from repro.core.fluid import FluidTcp
from repro.units import DEFAULT_MTU_BYTES

__all__ = [
    "FluidTcpFast",
    "fluid_tcp_series_fast",
    "fluid_udp_series_fast",
]


class FluidTcpFast:
    """Drop-in :class:`~repro.core.fluid.FluidTcp` with scalar lanes.

    Same constructor, same :meth:`step`/:meth:`reset` surface, same
    output bits and RNG stream consumption; state lives in per-lane
    Python floats instead of length-``parallel`` arrays.
    """

    CUBIC_C = FluidTcp.CUBIC_C

    def __init__(
        self,
        parallel: int = 1,
        mss_bytes: int = DEFAULT_MTU_BYTES,
        beta: float = 0.7,
        growth_gain: float = 1.0,
        buffer_bytes: float = float("inf"),
        seed: int = 0,
    ):
        if parallel < 1:
            raise ValueError(f"need at least one connection, got {parallel}")
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.parallel = parallel
        self.mss = mss_bytes
        self.beta = beta
        self.growth_gain = growth_gain
        self.buffer_bytes = buffer_bytes
        self._gen = np.random.default_rng(seed)
        self._cwnd = [10.0 * mss_bytes] * parallel
        self._ssthresh = [float("inf")] * parallel
        self._w_max = [10.0 * mss_bytes] * parallel
        self._epoch_s = [0.0] * parallel
        # CUBIC's K only changes when w_max does (a loss event), so the
        # np.power cube root is cached per lane between losses.
        self._k: list[float | None] = [None] * parallel
        self._in_outage = False

    def reset(self) -> None:
        """Back to initial windows (new test)."""
        n = self.parallel
        self._cwnd = [10.0 * self.mss] * n
        self._ssthresh = [float("inf")] * n
        self._w_max = [10.0 * self.mss] * n
        self._epoch_s = [0.0] * n
        self._k = [None] * n
        self._in_outage = False

    def step(self, sample: LinkConditions, downlink: bool = True) -> float:
        """Advance one second; return delivered goodput (Mbps)."""
        return self.step_values(
            sample.capacity_mbps(downlink),
            sample.rtt_ms,
            sample.loss_rate,
            sample.loss_burst,
            sample.is_outage,
        )

    def step_values(
        self,
        capacity_mbps: float,
        rtt_ms: float,
        loss_rate: float,
        loss_burst: float,
        is_outage: bool,
    ) -> float:
        """One second from raw per-second values (no sample object)."""
        mss = self.mss
        n = self.parallel
        if is_outage:
            if not self._in_outage:
                self._ssthresh = [
                    max(c / 2.0, 2.0 * mss) for c in self._cwnd
                ]
                self._in_outage = True
            self._cwnd = [2.0 * mss] * n
            self._epoch_s = [0.0] * n
            return 0.0
        self._in_outage = False

        capacity_bytes = capacity_mbps * 1e6 / 8.0
        rtt_s = max(rtt_ms / 1000.0, 1e-3)
        rates = self._allocate(capacity_bytes, rtt_s)
        one_minus_loss = 1.0 - loss_rate
        if n == 1:
            delivered = rates[0] * one_minus_loss
        else:
            delivered = float(np.asarray(rates).sum()) * one_minus_loss

        cwnd = self._cwnd
        burst = max(loss_burst, 1.0)
        bdp = capacity_bytes * rtt_s / n
        overshoot_at = 1.5 * bdp + 10.0 * mss
        lam = [
            r / DEFAULT_MTU_BYTES * loss_rate / burst
            + (0.7 if c > overshoot_at else 0.0)
            for r, c in zip(rates, cwnd, strict=True)
        ]
        # One draw, same shape the reference passes, so the stream
        # advances identically (scalar == 1-element array consumption).
        if n == 1:
            events = [int(self._gen.poisson(lam[0]))]
        else:
            events = self._gen.poisson(np.asarray(lam)).tolist()

        beta = self.beta
        buffer_bytes = self.buffer_bytes
        two_mss = 2.0 * mss
        cubic_c = self.CUBIC_C
        w_max = self._w_max
        epoch = self._epoch_s
        ssthresh = self._ssthresh
        kcache = self._k
        for i in range(n):
            cw = cwnd[i]
            e = events[i]
            if e > 0:
                w_max[i] = cw * (1.0 + beta) / 2.0 if cw < w_max[i] else cw
                kcache[i] = None
                epoch[i] = 0.0
                cw = cw * beta ** (2 if e > 2 else e)
                ssthresh[i] = cw
                if cw < two_mss:
                    cw = two_mss
                cwnd[i] = cw if cw < buffer_bytes else buffer_bytes
                continue
            if cw < two_mss:
                cw = two_mss
            acked = rates[i] * one_minus_loss
            in_ss = cw < ssthresh[i]
            if in_ss:
                cw += acked
            # Reference: min(acked / max(cw / rtt_s, 1.0), 1.0) > 0.8 —
            # the upper clamp never changes the comparison's outcome.
            denom = cw / rtt_s
            if denom < 1.0:
                denom = 1.0
            epoch[i] += 1.0 if acked / denom > 0.8 else 0.2
            if not in_ss:
                # CUBIC curve, with numpy's power ufunc on scalars —
                # Python's ``**`` computes different bits.
                w_max_pkts = w_max[i] / mss
                k = kcache[i]
                if k is None:
                    k = float(
                        np.power(w_max_pkts * (1.0 - beta) / cubic_c, 1.0 / 3.0)
                    )
                    kcache[i] = k
                target_pkts = (
                    cubic_c * float(np.power(epoch[i] - k, 3)) + w_max_pkts
                )
                target = target_pkts * mss
                if target < two_mss:
                    target = two_mss
                two_cw = 2.0 * cw
                capped = target if target < two_cw else two_cw
                if capped > cw:
                    cw = capped
            cwnd[i] = cw if cw < buffer_bytes else buffer_bytes
        return delivered * 8.0 / 1e6

    def _allocate(self, capacity_bytes: float, rtt_s: float) -> list[float]:
        """Water-fill capacity among window-limited connections."""
        cwnd = self._cwnd
        if self.parallel == 1:
            d = cwnd[0] / rtt_s
            return [d] if d <= capacity_bytes else [capacity_bytes]
        demand = [c / rtt_s for c in cwnd]
        total = float(np.asarray(demand).sum())
        if total <= capacity_bytes:
            return demand
        # The reference breaks demand *ties* with np.argsort's unstable
        # introsort, and tied lanes receive different shares — so the
        # permutation is replayed with the same call, not re-derived.
        order = np.argsort(np.asarray(demand))
        rates = [0.0] * self.parallel
        remaining = capacity_bytes
        left = self.parallel
        for idx in order.tolist():
            d = demand[idx]
            share = remaining / left
            r = d if d < share else share
            rates[idx] = r
            remaining -= r
            left -= 1
        return rates


def fluid_udp_series_fast(
    samples: ConditionsArray | list[LinkConditions],
    downlink: bool = True,
    offered_mbps: float | None = None,
) -> list[float]:
    """Vectorized :func:`repro.core.fluid.fluid_udp_series`.

    The UDP model is stateless per second, so the whole trace evaluates
    as three elementwise array operations — bit-identical to the scalar
    loop (same multiplies, same ``min``), just batched.
    """
    arr = (
        samples
        if isinstance(samples, ConditionsArray)
        else ConditionsArray.from_samples(samples)
    )
    capacity = arr.capacity_mbps(downlink)
    offered = capacity * 1.2 if offered_mbps is None else offered_mbps
    out = np.minimum(offered, capacity) * (1.0 - arr.loss_rate)
    return out.tolist()


def fluid_tcp_series_fast(
    samples: ConditionsArray | list[LinkConditions],
    parallel: int = 1,
    downlink: bool = True,
    mss_bytes: int = DEFAULT_MTU_BYTES,
    buffer_bytes: float = float("inf"),
    seed: int = 0,
) -> list[float]:
    """Fast :func:`repro.core.fluid.fluid_tcp_series` over a whole trace.

    TCP is stateful — every second's window depends on the previous
    second and on sequential RNG draws — so time cannot be batched
    without changing the bits.  The speedup comes from
    :class:`FluidTcpFast`'s scalar lanes and from reading the trace out
    of a :class:`~repro.conditions.ConditionsArray` without building a
    ``LinkConditions`` object per second.
    """
    model = FluidTcpFast(
        parallel=parallel,
        mss_bytes=mss_bytes,
        buffer_bytes=buffer_bytes,
        seed=seed,
    )
    if isinstance(samples, ConditionsArray):
        cap = samples.capacity_mbps(downlink).tolist()
        outage = samples.is_outage.tolist()
        rtt = samples.rtt_ms.tolist()
        loss = samples.loss_rate.tolist()
        burst = samples.loss_burst.tolist()
        return [
            model.step_values(cap[i], rtt[i], loss[i], burst[i], outage[i])
            for i in range(len(samples))
        ]
    return [model.step(sample, downlink=downlink) for sample in samples]
