"""Radio propagation: log-distance path loss, shadowing, fast fading.

A standard 3GPP-flavored urban-macro abstraction: received SNR falls off
with log-distance, lognormal shadowing rides on top, and per-second Rayleigh
fading wiggles the instantaneous rate.  Only relative behaviour matters for
the reproduction, so constants are chosen to land typical drive-test SNRs
(about -5..30 dB) at the deployment's typical serving distances.
"""

from __future__ import annotations

import math

import numpy as np

#: Transmit EIRP minus receiver noise floor, folded into one constant (dB).
LINK_BUDGET_DB = 128.0

#: Path-loss exponent: free-space-ish near the site, urban clutter beyond.
PATH_LOSS_EXPONENT = 3.35

#: Reference distance for the log-distance model (km).
REFERENCE_DISTANCE_KM = 0.05

#: Path loss at the reference distance (dB).
REFERENCE_LOSS_DB = 72.0

#: Lognormal shadowing standard deviation (dB).
SHADOWING_SIGMA_DB = 6.0


def path_loss_db(distance_km: float) -> float:
    """Log-distance path loss at ``distance_km``."""
    if distance_km <= 0:
        raise ValueError(f"distance must be positive, got {distance_km}")
    d = max(distance_km, REFERENCE_DISTANCE_KM)
    return REFERENCE_LOSS_DB + 10.0 * PATH_LOSS_EXPONENT * math.log10(
        d / REFERENCE_DISTANCE_KM
    )


def snr_db(
    distance_km: float,
    gen: np.random.Generator,
    shadowing_db: float | None = None,
) -> float:
    """Instantaneous SNR after shadowing and Rayleigh fading (dB).

    ``shadowing_db`` can be supplied by a correlated process; when omitted an
    independent lognormal draw is used.
    """
    if shadowing_db is None:
        shadowing_db = float(gen.normal(0.0, SHADOWING_SIGMA_DB))
    # Residual fast-fading variation: over a 1 s average the Rayleigh
    # envelope largely washes out, leaving a small dB-scale wiggle.
    fading_db = float(gen.normal(0.0, 1.5))
    return LINK_BUDGET_DB - path_loss_db(distance_km) + shadowing_db + fading_db


def shannon_efficiency(snr_db_value: float, max_bits_per_hz: float = 7.4) -> float:
    """Spectral efficiency (bits/s/Hz) from SNR, capped at the MCS ceiling.

    Shannon capacity with a 3 dB implementation penalty, clipped at the top
    modulation-and-coding-scheme efficiency (256-QAM-ish).
    """
    effective_snr = 10.0 ** ((snr_db_value - 3.0) / 10.0)
    return min(math.log2(1.0 + effective_snr), max_bits_per_hz)


class CorrelatedShadowing:
    """Gudmundson-style exponentially correlated shadowing along the drive.

    Successive seconds of a drive see correlated shadowing (the same hill
    blocks you for a while).  Decorrelation distance ~100 m.
    """

    def __init__(
        self,
        gen: np.random.Generator,
        sigma_db: float = SHADOWING_SIGMA_DB,
        decorrelation_m: float = 100.0,
    ):
        self._gen = gen
        self.sigma_db = sigma_db
        self.decorrelation_m = decorrelation_m
        self._value_db = float(gen.normal(0.0, sigma_db))

    def step(self, speed_kmh: float) -> float:
        """Advance one second at ``speed_kmh``; return shadowing (dB)."""
        distance_m = max(speed_kmh, 0.0) / 3.6
        rho = math.exp(-distance_m / self.decorrelation_m)
        innovation = float(
            self._gen.normal(0.0, self.sigma_db * math.sqrt(1.0 - rho**2))
        )
        self._value_db = rho * self._value_db + innovation
        return self._value_db
