"""Commercial carrier profiles: AT&T, T-Mobile, Verizon.

The paper measures three US carriers whose networks differ in base-station
density along the route, spectrum mix (4G LTE vs low-band vs mid-band 5G),
and core latency.  Profiles are calibrated so that the carrier *ordering*
the paper reports holds: Verizon and T-Mobile lead (lowest RTT, ~44 %/42 %
high-performance coverage), AT&T trails (highest RTT, ~53 % of samples below
50 Mbps) — Section 4.1 and Figure 9.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo.classify import AreaType


class Band(enum.Enum):
    """Radio access technology / spectrum class serving a sample."""

    LTE = "lte"
    LOW_BAND_5G = "low-band-5g"
    MID_BAND_5G = "mid-band-5g"


#: Peak cell-edge-to-peak throughput per band (Mbps, downlink).  The paper
#: notes most service is "either low-band 5G or 4G LTE", so mid-band peaks
#: are rarely reached.
BAND_PEAK_DL_MBPS = {
    Band.LTE: 60.0,
    Band.LOW_BAND_5G: 190.0,
    Band.MID_BAND_5G: 500.0,
}

#: Uplink peaks are far lower (TDD slot split / power limits).
BAND_PEAK_UL_MBPS = {
    Band.LTE: 12.0,
    Band.LOW_BAND_5G: 35.0,
    Band.MID_BAND_5G: 65.0,
}


@dataclass(frozen=True)
class CarrierProfile:
    """Everything the channel model needs to know about a carrier."""

    name: str
    short_name: str
    #: Base-station density (sites per km^2) by area type.
    site_density: dict[AreaType, float]
    #: Probability of each band serving a connection, by area type.
    band_mix: dict[AreaType, dict[Band, float]]
    #: Median core-network RTT contribution (ms).
    core_rtt_ms: float
    #: Probability that a sample falls in a coverage hole, by area type.
    hole_probability: dict[AreaType, float]

    def __post_init__(self) -> None:
        for area, mix in self.band_mix.items():
            total = sum(mix.values())
            if abs(total - 1.0) > 1e-6:
                raise ValueError(
                    f"{self.name}: band mix for {area} sums to {total}, not 1"
                )


def att() -> CarrierProfile:
    """AT&T: sparsest deployment along the synthetic route, LTE-heavy."""
    return CarrierProfile(
        name="AT&T",
        short_name="ATT",
        site_density={
            AreaType.URBAN: 1.8,
            AreaType.SUBURBAN: 0.22,
            AreaType.RURAL: 0.045,
        },
        band_mix={
            AreaType.URBAN: {Band.LTE: 0.52, Band.LOW_BAND_5G: 0.44, Band.MID_BAND_5G: 0.04},
            AreaType.SUBURBAN: {Band.LTE: 0.62, Band.LOW_BAND_5G: 0.37, Band.MID_BAND_5G: 0.01},
            AreaType.RURAL: {Band.LTE: 0.78, Band.LOW_BAND_5G: 0.22, Band.MID_BAND_5G: 0.0},
        },
        core_rtt_ms=66.0,
        hole_probability={
            AreaType.URBAN: 0.01,
            AreaType.SUBURBAN: 0.06,
            AreaType.RURAL: 0.12,
        },
    )


def tmobile() -> CarrierProfile:
    """T-Mobile: strong mid-band 5G footprint, low latency."""
    return CarrierProfile(
        name="T-Mobile",
        short_name="TM",
        site_density={
            AreaType.URBAN: 2.6,
            AreaType.SUBURBAN: 0.38,
            AreaType.RURAL: 0.08,
        },
        band_mix={
            AreaType.URBAN: {Band.LTE: 0.22, Band.LOW_BAND_5G: 0.45, Band.MID_BAND_5G: 0.33},
            AreaType.SUBURBAN: {Band.LTE: 0.28, Band.LOW_BAND_5G: 0.50, Band.MID_BAND_5G: 0.22},
            AreaType.RURAL: {Band.LTE: 0.50, Band.LOW_BAND_5G: 0.46, Band.MID_BAND_5G: 0.04},
        },
        core_rtt_ms=47.0,
        hole_probability={
            AreaType.URBAN: 0.005,
            AreaType.SUBURBAN: 0.03,
            AreaType.RURAL: 0.09,
        },
    )


def verizon() -> CarrierProfile:
    """Verizon: dense deployment, balanced band mix, low latency."""
    return CarrierProfile(
        name="Verizon",
        short_name="VZ",
        site_density={
            AreaType.URBAN: 2.8,
            AreaType.SUBURBAN: 0.40,
            AreaType.RURAL: 0.08,
        },
        band_mix={
            AreaType.URBAN: {Band.LTE: 0.16, Band.LOW_BAND_5G: 0.46, Band.MID_BAND_5G: 0.38},
            AreaType.SUBURBAN: {Band.LTE: 0.26, Band.LOW_BAND_5G: 0.52, Band.MID_BAND_5G: 0.22},
            AreaType.RURAL: {Band.LTE: 0.52, Band.LOW_BAND_5G: 0.45, Band.MID_BAND_5G: 0.03},
        },
        core_rtt_ms=45.0,
        hole_probability={
            AreaType.URBAN: 0.005,
            AreaType.SUBURBAN: 0.03,
            AreaType.RURAL: 0.08,
        },
    )


ALL_CARRIERS = ("ATT", "TM", "VZ")


def carrier_by_short_name(short_name: str) -> CarrierProfile:
    """Look up a carrier profile by its paper abbreviation."""
    table = {"ATT": att, "TM": tmobile, "VZ": verizon}
    if short_name not in table:
        raise KeyError(
            f"unknown carrier {short_name!r}; expected one of {sorted(table)}"
        )
    return table[short_name]()
