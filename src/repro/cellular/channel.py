"""Cellular link-condition model: one carrier, one phone, per-second samples.

Mirrors :class:`repro.leo.channel.StarlinkChannel` on the cellular side:
serving-cell tracking + propagation + band/capacity + load produce a
:class:`repro.conditions.LinkConditions` each second.
"""

from __future__ import annotations

import numpy as np

from repro.cellular.capacity import CellLoad, achievable_rate, draw_band
from repro.cellular.carriers import Band, CarrierProfile
from repro.cellular.deployment import ServingCellTracker
from repro.cellular.propagation import CorrelatedShadowing, snr_db
from repro.conditions import LinkConditions, outage
from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint
from repro.obs.recorder import get_recorder
from repro.rng import RngStreams


class CellularChannel:
    """Per-second link conditions for one phone on one carrier."""

    #: How long a serving band persists before re-evaluation (seconds).
    BAND_DWELL_S = 90.0
    #: HARQ repairs most radio loss; residual e2e loss clusters at the
    #: rare moments HARQ gives up (cell edge, handover).
    LOSS_BURST = 8.0

    def __init__(
        self,
        carrier: CarrierProfile,
        rng: RngStreams | None = None,
        recorder=None,
    ):
        rng = rng or RngStreams(0)
        self.carrier = carrier
        self._gen = rng.get(f"cellular.channel.{carrier.short_name}")
        self.tracker = ServingCellTracker(carrier, self._gen)
        self.shadowing = CorrelatedShadowing(self._gen)
        self.load = CellLoad(self._gen)
        self._band: Band | None = None
        self._band_until_s = -1.0
        self._hole_until_s = -1.0
        obs = recorder if recorder is not None else get_recorder()
        network = carrier.short_name
        self._m_samples = obs.counter("channel.samples", network=network)
        self._m_outage = obs.counter("channel.outage_seconds", network=network)
        self._m_handovers = obs.counter("channel.handovers", network=network)
        self._counted_handovers = 0

    def sample(
        self,
        time_s: float,
        position: GeoPoint,  # unused by physics, kept for API symmetry
        speed_kmh: float,
        area: AreaType,
    ) -> LinkConditions:
        """Link conditions for this second of driving."""
        self._m_samples.inc()
        # Coverage holes: several-second dead zones, more likely rurally and
        # on sparse carriers.
        if time_s < self._hole_until_s:
            self._m_outage.inc()
            return outage(time_s)
        if self._gen.random() < self.carrier.hole_probability[area] / 8.0:
            # Hole durations of 3-15 s at the hole entry rate above yield
            # the per-sample hole probabilities in the carrier profile.
            self._hole_until_s = time_s + float(self._gen.uniform(3.0, 15.0))
            self._m_outage.inc()
            return outage(time_s)

        distance_km = self.tracker.step(area, speed_kmh)
        if self.tracker.handover_count != self._counted_handovers:
            self._m_handovers.inc(
                self.tracker.handover_count - self._counted_handovers
            )
            self._counted_handovers = self.tracker.handover_count
        shadow_db = self.shadowing.step(speed_kmh)
        snr = snr_db(distance_km, self._gen, shadowing_db=shadow_db)

        if self._band is None or time_s >= self._band_until_s:
            mix = self.carrier.band_mix.get(area) or {}
            if not mix or sum(mix.values()) <= 0.0:
                # Zero-coverage area for this carrier: a dead zone is an
                # outage second, not a crash in the band sampler.
                self._band = None
                self._m_outage.inc()
                return outage(time_s, loss_burst=self.LOSS_BURST)
            self._band = draw_band(mix, self._gen)
            self._band_until_s = time_s + self.BAND_DWELL_S

        share = self.load.step(area)
        dl, ul = achievable_rate(self._band, snr, share)

        rtt = self._rtt_ms(snr)
        loss = self._loss_rate(snr)
        return LinkConditions(
            time_s=time_s,
            downlink_mbps=dl,
            uplink_mbps=ul,
            rtt_ms=rtt,
            loss_rate=loss,
            loss_burst=self.LOSS_BURST,
        )

    def _rtt_ms(self, snr_db_value: float) -> float:
        """Core RTT plus radio scheduling, inflated at weak signal."""
        radio_ms = float(self._gen.exponential(6.0))
        weak_signal_penalty = max(0.0, (5.0 - snr_db_value)) * 2.0
        return self.carrier.core_rtt_ms + radio_ms + weak_signal_penalty

    def _loss_rate(self, snr_db_value: float) -> float:
        """End-to-end random loss.

        HARQ/RLC retransmission hides virtually all radio loss from the
        transport layer, so e2e random loss is tiny except at cell edge —
        which is why cellular TCP tracks cellular UDP in the paper while
        Starlink TCP collapses.
        """
        base = 5e-6
        weak = 0.0008 if snr_db_value < -5.0 else 0.0
        burst = float(self._gen.exponential(5e-6))
        return float(np.clip(base + weak + burst, 0.0, 1.0))

    def reset(self) -> None:
        """Reset per-drive state."""
        self.tracker.reset()
        self._band = None
        self._band_until_s = -1.0
        self._hole_until_s = -1.0
        self._counted_handovers = self.tracker.handover_count
