"""Base-station deployment as a spatial Poisson process.

The paper's coverage findings hinge on one mechanism: base stations are
densely deployed where people are (Section 5.1, citing rural deployment
cost).  We model each carrier's sites as a homogeneous Poisson point process
per area type; the distance from the vehicle to its serving site is then the
nearest-point distance, which for a PPP of intensity lambda is Rayleigh:
``P(D > r) = exp(-lambda * pi * r^2)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cellular.carriers import CarrierProfile
from repro.geo.classify import AreaType


def nearest_site_distance_km(
    density_per_km2: float, gen: np.random.Generator
) -> float:
    """Draw the nearest-base-station distance for a PPP of given intensity."""
    if density_per_km2 <= 0:
        raise ValueError(f"density must be positive, got {density_per_km2}")
    u = float(gen.uniform(1e-12, 1.0))
    return math.sqrt(-math.log(u) / (density_per_km2 * math.pi))


class ServingCellTracker:
    """Tracks the serving site's distance as the vehicle drives.

    Between handovers, the distance to the serving site changes smoothly
    with vehicle motion (a random radial component of the speed).  When the
    vehicle exits the cell (distance exceeds the handover radius) or a
    better cell appears, it re-attaches to a freshly drawn nearest site.
    This gives the sawtooth signal-strength profile real drive tests show.
    """

    #: Multiple of the mean nearest-site distance at which handover triggers.
    HANDOVER_RADIUS_FACTOR = 1.45

    def __init__(self, carrier: CarrierProfile, gen: np.random.Generator):
        self.carrier = carrier
        self._gen = gen
        self._distance_km: float | None = None
        self._area: AreaType | None = None
        self.handover_count = 0

    def step(self, area: AreaType, speed_kmh: float) -> float:
        """Advance one second; return distance to the serving site (km)."""
        density = self.carrier.site_density[area]
        mean_nearest = 0.5 / math.sqrt(density)
        if self._distance_km is None or self._area != area:
            # Entering coverage or a new area type: attach to nearest site.
            self._distance_km = nearest_site_distance_km(density, self._gen)
            self._area = area
            self.handover_count += 1
        else:
            # Radial drift: the vehicle's motion projects onto the
            # user-to-site axis.  The bias is outward — a car approaches a
            # site briefly, passes it, then recedes until handover.
            drift_km = speed_kmh / 3600.0 * float(self._gen.uniform(-0.3, 1.0))
            self._distance_km = max(0.01, self._distance_km + drift_km)
            if self._distance_km > self.HANDOVER_RADIUS_FACTOR * mean_nearest:
                self._distance_km = nearest_site_distance_km(density, self._gen)
                self.handover_count += 1
        return self._distance_km

    def reset(self) -> None:
        """Detach (new drive / airplane mode toggle)."""
        self._distance_km = None
        self._area = None
