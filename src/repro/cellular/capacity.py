"""SNR -> throughput mapping per band, with cell-load sharing.

The user's achievable rate is the band's channel bandwidth times the
spectral efficiency at the current SNR, multiplied by the scheduler share
the cell can give one user, and capped at the band's practical peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.cellular.carriers import BAND_PEAK_DL_MBPS, BAND_PEAK_UL_MBPS, Band
from repro.cellular.propagation import shannon_efficiency
from repro.geo.classify import AreaType

#: Effective downlink channel bandwidth per band (MHz).
BAND_BANDWIDTH_MHZ = {
    Band.LTE: 20.0,
    Band.LOW_BAND_5G: 45.0,
    Band.MID_BAND_5G: 100.0,
}

#: Fraction of downlink bandwidth usable for uplink traffic (TDD split
#: and UE power limits folded together).
UPLINK_FRACTION = 0.28


@dataclass(frozen=True)
class RateSample:
    """Achievable downlink/uplink rate for one second."""

    band: Band
    downlink_mbps: float
    uplink_mbps: float


def draw_band(
    mix: dict[Band, float], gen: np.random.Generator
) -> Band:
    """Sample the serving band from a carrier's area-specific mix."""
    bands = list(mix.keys())
    probs = np.array([mix[b] for b in bands], dtype=float)
    probs /= probs.sum()
    return bands[int(gen.choice(len(bands), p=probs))]


class CellLoad:
    """Mean-reverting cell utilization, busier in populated areas."""

    #: Long-run mean load per area type.
    MEAN_LOAD: ClassVar[dict[AreaType, float]] = {
        AreaType.URBAN: 0.45,
        AreaType.SUBURBAN: 0.35,
        AreaType.RURAL: 0.25,
    }

    def __init__(self, gen: np.random.Generator):
        self._gen = gen
        self._load = 0.4

    def step(self, area: AreaType) -> float:
        """Advance one second; return the user's scheduler share in (0, 1]."""
        mean = self.MEAN_LOAD[area]
        self._load += 0.15 * (mean - self._load) + float(self._gen.normal(0, 0.03))
        self._load = float(np.clip(self._load, 0.02, 0.95))
        return 1.0 - self._load


def achievable_rate(
    band: Band, snr_db_value: float, scheduler_share: float
) -> tuple[float, float]:
    """(downlink, uplink) Mbps for a band/SNR/share combination."""
    if not 0.0 < scheduler_share <= 1.0:
        raise ValueError(
            f"scheduler share must be in (0, 1], got {scheduler_share}"
        )
    efficiency = shannon_efficiency(snr_db_value)
    raw_dl = BAND_BANDWIDTH_MHZ[band] * efficiency * scheduler_share
    dl = min(raw_dl, BAND_PEAK_DL_MBPS[band])
    # Uplink: lower bandwidth and a small link-budget penalty.  The UE's
    # power deficit is largely offset by power control over narrow
    # allocations, so the per-Hz penalty is mild.
    ul_efficiency = shannon_efficiency(snr_db_value - 2.0)
    raw_ul = (
        BAND_BANDWIDTH_MHZ[band] * UPLINK_FRACTION * ul_efficiency * scheduler_share
    )
    ul = min(raw_ul, BAND_PEAK_UL_MBPS[band])
    return dl, ul
