"""Cellular substrate: carriers, deployment, propagation, channel model.

Stands in for the three commercial carriers (AT&T, T-Mobile, Verizon) the
paper's phones were subscribed to.
"""

from repro.cellular.capacity import (
    BAND_BANDWIDTH_MHZ,
    CellLoad,
    RateSample,
    achievable_rate,
    draw_band,
)
from repro.cellular.carriers import (
    ALL_CARRIERS,
    BAND_PEAK_DL_MBPS,
    BAND_PEAK_UL_MBPS,
    Band,
    CarrierProfile,
    att,
    carrier_by_short_name,
    tmobile,
    verizon,
)
from repro.cellular.channel import CellularChannel
from repro.cellular.deployment import ServingCellTracker, nearest_site_distance_km
from repro.cellular.propagation import (
    CorrelatedShadowing,
    path_loss_db,
    shannon_efficiency,
    snr_db,
)

__all__ = [
    "ALL_CARRIERS",
    "BAND_BANDWIDTH_MHZ",
    "BAND_PEAK_DL_MBPS",
    "BAND_PEAK_UL_MBPS",
    "Band",
    "CarrierProfile",
    "CellLoad",
    "CellularChannel",
    "CorrelatedShadowing",
    "RateSample",
    "ServingCellTracker",
    "achievable_rate",
    "att",
    "carrier_by_short_name",
    "draw_band",
    "nearest_site_distance_km",
    "path_loss_db",
    "shannon_efficiency",
    "snr_db",
    "tmobile",
    "verizon",
]
