"""User-terminal (dish) models for the two Starlink plans the paper tests.

Section 3.1 and 4.1 attribute the Roam-vs-Mobility gap to three mechanisms:

* field of view — the Mobility (flat high-performance) dish has a wider FoV,
  so it keeps more satellites selectable under partial obstruction;
* tracking agility — Roam's dish "lacks the ability to adjust its
  orientation promptly under high mobility";
* network priority — Mobility is advertised as getting the highest priority
  during congestion.

Each mechanism is an explicit parameter here, so the ablation bench can turn
them off one at a time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DishPlan(enum.Enum):
    """Starlink service plans used in the paper."""

    ROAM = "RM"
    MOBILITY = "MOB"


@dataclass(frozen=True)
class DishModel:
    """Physical/contractual parameters of one dish + plan combination."""

    plan: DishPlan
    #: Minimum usable elevation angle (deg) — narrower FoV means a higher mask.
    min_elevation_deg: float
    #: Peak achievable downlink PHY rate under ideal conditions (Mbps).
    peak_downlink_mbps: float
    #: Peak achievable uplink PHY rate (Mbps); FDD gives ~1/10 of downlink.
    peak_uplink_mbps: float
    #: Throughput multiplier retained while in motion at highway speed.
    #: Models tracking agility; 1.0 = perfect in-motion tracking.
    motion_tracking_factor: float
    #: Scheduler priority weight during cell congestion (>= 1.0).
    priority_weight: float
    #: Extra loss probability induced by imperfect tracking while moving.
    motion_loss_extra: float

    def __post_init__(self) -> None:
        if not 0.0 < self.motion_tracking_factor <= 1.0:
            raise ValueError(
                f"motion_tracking_factor must be in (0, 1], got {self.motion_tracking_factor}"
            )
        if self.priority_weight < 1.0:
            raise ValueError(
                f"priority_weight must be >= 1, got {self.priority_weight}"
            )
        if self.peak_uplink_mbps > self.peak_downlink_mbps:
            raise ValueError("uplink peak cannot exceed downlink peak (FDD design)")

    def effective_mask_deg(self, obstruction_mask_deg: float) -> float:
        """Elevation mask after accounting for local obstructions."""
        return max(self.min_elevation_deg, obstruction_mask_deg)


def roam_dish() -> DishModel:
    """The portable Roam plan dish (standard actuated dish)."""
    return DishModel(
        plan=DishPlan.ROAM,
        min_elevation_deg=25.0,
        peak_downlink_mbps=285.0,
        peak_uplink_mbps=28.0,
        motion_tracking_factor=0.78,
        priority_weight=1.0,
        motion_loss_extra=0.004,
    )


def mobility_dish() -> DishModel:
    """The in-motion Mobility plan dish (flat high-performance)."""
    return DishModel(
        plan=DishPlan.MOBILITY,
        min_elevation_deg=15.0,
        peak_downlink_mbps=355.0,
        peak_uplink_mbps=35.0,
        motion_tracking_factor=0.95,
        priority_weight=2.0,
        motion_loss_extra=0.001,
    )


def dish_for_plan(plan: DishPlan) -> DishModel:
    """Factory keyed on the plan enum."""
    if plan is DishPlan.ROAM:
        return roam_dish()
    return mobility_dish()
