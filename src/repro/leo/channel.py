"""Starlink link-condition model: geometry + scheduling -> per-second samples.

This is where the LEO substrate's pieces meet: the constellation and
visibility geometry select a serving satellite, the handover process applies
the 15 s reconfiguration grid, the dish plan sets peaks / priority /
tracking, and the gateway network prices the bent-pipe RTT.  The output is a
:class:`repro.conditions.LinkConditions` per second, the common currency of
the analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conditions import LinkConditions, outage
from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint
from repro.geo.places import PlaceDatabase
from repro.geo.terrain import ObstructionProcess
from repro.leo.constellation import Constellation
from repro.leo.dish import DishModel
from repro.leo.gateway import GatewayNetwork
from repro.leo.handover import HandoverProcess
from repro.leo.visibility import VisibilityModel
from repro.obs.recorder import get_recorder
from repro.rng import RngStreams


@dataclass(frozen=True)
class WeatherState:
    """Simplified weather attenuation (Section 3.3: clear / rain / snow)."""

    name: str
    capacity_factor: float
    extra_loss: float


CLEAR = WeatherState("clear", 1.0, 0.0)
RAIN = WeatherState("rain", 0.82, 0.002)
SNOW = WeatherState("snow", 0.75, 0.003)


class StarlinkChannel:
    """Per-second Starlink link conditions for one dish on the vehicle."""

    #: Latency from the Starlink PoP to the measurement server (ms, one way).
    POP_TO_SERVER_MS = 12.0
    #: Mean scheduling/queueing delay added by the Starlink frame grid (ms).
    SCHEDULING_MS = 18.0
    #: Starlink loss clusters around 15 s reconfigurations and blockage
    #: onsets: long runs of consecutive packets per loss event.
    LOSS_BURST = 80.0

    def __init__(
        self,
        dish: DishModel,
        constellation: Constellation | None = None,
        gateways: GatewayNetwork | None = None,
        places: PlaceDatabase | None = None,
        rng: RngStreams | None = None,
        weather: WeatherState = CLEAR,
        recorder=None,
    ):
        rng = rng or RngStreams(0)
        places = places or PlaceDatabase.synthetic(rng)
        self.dish = dish
        self.constellation = constellation or Constellation()
        self.visibility = VisibilityModel(self.constellation)
        self.gateways = gateways or GatewayNetwork.synthetic(places, rng)
        self.weather = weather
        self._gen = rng.get(f"leo.channel.{dish.plan.value}")
        self.handover = HandoverProcess(self._gen)
        self.obstruction = ObstructionProcess(
            rng, stream=f"leo.obstruction.{dish.plan.value}"
        )
        # Slowly varying cell-load factor (AR(1)), shared across seconds.
        self._load = 0.5
        self._sector_refresh_s = -1e9
        self._sectors: list[tuple[float, float]] = []
        self._positions_cache: tuple[float, np.ndarray] | None = None
        #: Optional precomputed per-drive geometry (see
        #: :meth:`attach_timeline`); None keeps the per-sample path.
        self._timeline = None
        obs = recorder if recorder is not None else get_recorder()
        network = dish.plan.value
        self._m_samples = obs.counter("channel.samples", network=network)
        self._m_outage = obs.counter("channel.outage_seconds", network=network)
        self._m_handovers = obs.counter("channel.handovers", network=network)
        self._last_serving = -1

    def sample(
        self,
        time_s: float,
        position: GeoPoint,
        speed_kmh: float,
        area: AreaType,
    ) -> LinkConditions:
        """Link conditions for this second of driving."""
        self._m_samples.inc()
        sky = self.obstruction.step(area)
        if sky.deep_blockage:
            # An overpass / canyon fully breaks the satellite link.
            self.handover.step(time_s, [])
            self._last_serving = -1
            self._m_outage.inc()
            return outage(time_s)

        # Refresh the random azimuth blockage wedges every ~30 s of driving
        # (the skyline changes as the vehicle moves).
        if time_s - self._sector_refresh_s > 30.0:
            self._sectors = VisibilityModel.random_blocked_sectors(
                sky.fraction, self._gen
            )
            self._sector_refresh_s = time_s

        t_idx = (
            self._timeline.index_of(time_s) if self._timeline is not None else None
        )
        if t_idx is not None:
            candidates = self._timeline.visible(
                t_idx,
                self.dish,
                obstruction_fraction=sky.fraction,
                blocked_sectors=self._sectors,
            )
        else:
            candidates = self.visibility.visible_satellites(
                position,
                time_s,
                self.dish,
                obstruction_fraction=sky.fraction,
                blocked_sectors=self._sectors,
            )
        state = self.handover.step(time_s, [c.index for c in candidates])
        serving_id = state.serving_satellite
        if serving_id != self._last_serving:
            # A switch between two live satellites is a handover; falling
            # to or recovering from -1 is an outage edge, counted above.
            if serving_id != -1 and self._last_serving != -1:
                self._m_handovers.inc()
            self._last_serving = serving_id
        if serving_id == -1:
            self._m_outage.inc()
            return outage(time_s)

        serving = next(
            (c for c in candidates if c.index == state.serving_satellite),
            None,
        )
        if serving is None:
            # The handover process can keep reporting a satellite that has
            # already slipped below the mask or behind an obstruction;
            # that is a tracking gap, not a programming error.
            self._m_outage.inc()
            return outage(time_s, loss_burst=self.LOSS_BURST)

        capacity_dl, capacity_ul = self._capacities(
            serving.elevation_deg, speed_kmh, sky.fraction, state.capacity_factor
        )
        rtt_ms = self._rtt_ms(time_s, position, serving.index, t_idx=t_idx)
        loss = self._loss_rate(sky.fraction, speed_kmh, state.extra_loss)
        return LinkConditions(
            time_s=time_s,
            downlink_mbps=capacity_dl,
            uplink_mbps=capacity_ul,
            rtt_ms=rtt_ms,
            loss_rate=loss,
            loss_burst=self.LOSS_BURST,
        )

    def _capacities(
        self,
        elevation_deg: float,
        speed_kmh: float,
        obstruction: float,
        handover_factor: float,
    ) -> tuple[float, float]:
        """Downlink/uplink capacity for the current serving geometry."""
        # Link budget improves with elevation (shorter slant range, less
        # atmosphere): 0.55 at the mask edge up to 1.0 at zenith.
        elev_factor = 0.70 + 0.30 * np.sin(np.radians(max(elevation_deg, 0.0)))
        # Cell load: mean-reverting share of the satellite's capacity.  The
        # Mobility plan's priority weight shields it from congestion.
        self._load += 0.2 * (0.35 - self._load) + float(self._gen.normal(0, 0.06))
        self._load = float(np.clip(self._load, 0.05, 0.95))
        share = 1.0 - self._load / self.dish.priority_weight
        # In-motion tracking penalty: fully applied above ~20 km/h, so the
        # speed buckets of Fig. 6 stay flat (Starlink sats move at 27,000
        # km/h — vehicle speed is negligible; only *being* in motion hurts
        # a dish not built for it).
        motion = 1.0 - (1.0 - self.dish.motion_tracking_factor) * min(
            speed_kmh / 20.0, 1.0
        )
        sky_factor = 1.0 - 0.8 * obstruction
        fade = float(self._gen.lognormal(mean=0.0, sigma=0.12))
        factor = (
            elev_factor
            * share
            * motion
            * sky_factor
            * handover_factor
            * self.weather.capacity_factor
            * min(fade, 2.0)
        )
        dl = max(0.0, self.dish.peak_downlink_mbps * factor)
        ul = max(0.0, self.dish.peak_uplink_mbps * factor)
        return dl, ul

    def _rtt_ms(
        self,
        time_s: float,
        position: GeoPoint,
        sat_index: int,
        t_idx: int | None = None,
    ) -> float:
        """Bent-pipe RTT plus PoP-to-server path and frame-grid jitter."""
        if t_idx is not None:
            space_rtt = self._timeline.bent_pipe_rtt_ms(
                t_idx, sat_index, scheduling_ms=self.SCHEDULING_MS
            )
        else:
            positions = self._positions(time_s)
            space_rtt = self.gateways.bent_pipe_rtt_ms(
                position, positions[sat_index], scheduling_ms=self.SCHEDULING_MS
            )
        jitter = float(self._gen.exponential(8.0))
        return space_rtt + 2.0 * self.POP_TO_SERVER_MS + jitter

    def _loss_rate(
        self, obstruction: float, speed_kmh: float, handover_loss: float
    ) -> float:
        """Random packet loss: the paper's headline Starlink weakness."""
        base = 0.0028 + 0.010 * obstruction
        motion_loss = self.dish.motion_loss_extra * min(speed_kmh / 20.0, 1.0)
        burst = float(self._gen.exponential(0.001))
        total = (
            base + motion_loss + handover_loss + burst + self.weather.extra_loss
        )
        return float(np.clip(total, 0.0, 1.0))

    def attach_timeline(self, timeline) -> None:
        """Use a precomputed :class:`repro.core.fastpath.GeometryTimeline`.

        Seconds the timeline knows answer visibility and bent-pipe RTT
        from the precomputed arrays (bit-identical to the per-sample
        path); unknown seconds silently fall back to it.  Every random
        draw stays in the channel, in the legacy order.
        """
        self._timeline = timeline

    def _positions(self, time_s: float) -> np.ndarray:
        """Constellation positions, cached for the current second."""
        if self._positions_cache is None or self._positions_cache[0] != time_s:
            self._positions_cache = (
                time_s,
                self.constellation.positions_ecef_km(time_s),
            )
        return self._positions_cache[1]

    def reset(self) -> None:
        """Reset per-drive state (new test session)."""
        self.handover.reset()
        self.obstruction.reset()
        self._load = 0.5
        self._sector_refresh_s = -1e9
        self._sectors = []
        self._last_serving = -1
