"""LEO satellite substrate: constellation, geometry, dishes, channel model.

Stands in for the physical Starlink service of the paper's campaign.
"""

from repro.leo.channel import CLEAR, RAIN, SNOW, StarlinkChannel, WeatherState
from repro.leo.constellation import Constellation, OrbitalShell, starlink_shell1
from repro.leo.dish import (
    DishModel,
    DishPlan,
    dish_for_plan,
    mobility_dish,
    roam_dish,
)
from repro.leo.gateway import Gateway, GatewayNetwork
from repro.leo.geometry import (
    LookAngles,
    equation1_one_way_latency_ms,
    look_angles,
    look_angles_many,
    propagation_delay_ms,
    slant_range_km,
)
from repro.leo.handover import (
    RECONFIGURATION_INTERVAL_S,
    HandoverProcess,
    HandoverState,
)
from repro.leo.visibility import VisibilityModel, VisibleSatellite

__all__ = [
    "CLEAR",
    "Constellation",
    "DishModel",
    "DishPlan",
    "Gateway",
    "GatewayNetwork",
    "HandoverProcess",
    "HandoverState",
    "LookAngles",
    "OrbitalShell",
    "RAIN",
    "RECONFIGURATION_INTERVAL_S",
    "SNOW",
    "StarlinkChannel",
    "VisibilityModel",
    "VisibleSatellite",
    "WeatherState",
    "dish_for_plan",
    "equation1_one_way_latency_ms",
    "look_angles",
    "look_angles_many",
    "mobility_dish",
    "propagation_delay_ms",
    "roam_dish",
    "slant_range_km",
    "starlink_shell1",
]
