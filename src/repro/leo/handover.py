"""Starlink reconfiguration-slot handover model.

Starlink reassigns user terminals to satellites on a fixed 15-second
scheduling grid (observed by several measurement studies the paper cites).
At each slot boundary the terminal may switch satellites; a switch briefly
interrupts the link, which surfaces as a capacity dip and a loss burst —
one of the mechanisms behind the paper's elevated-loss finding (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The Starlink scheduling granularity (seconds).
RECONFIGURATION_INTERVAL_S = 15.0


@dataclass(frozen=True)
class HandoverState:
    """Handover effect for the current second."""

    in_handover: bool
    capacity_factor: float  # multiplicative capacity retained this second
    extra_loss: float  # additive packet-loss probability this second
    serving_satellite: int  # index of the serving satellite, -1 if none


class HandoverProcess:
    """Tracks the serving satellite across reconfiguration slots."""

    def __init__(self, gen: np.random.Generator, switch_outage_s: float = 0.6):
        if not 0.0 <= switch_outage_s <= RECONFIGURATION_INTERVAL_S:
            raise ValueError(
                f"switch outage must fit in a slot, got {switch_outage_s}"
            )
        self._gen = gen
        self.switch_outage_s = switch_outage_s
        self._serving = -1
        self._slot = -1
        self._outage_until_s = -1.0

    def step(
        self, time_s: float, candidate_indices: list[int]
    ) -> HandoverState:
        """Advance to ``time_s`` given the currently usable satellites.

        The terminal keeps its satellite within a slot when it remains
        usable; at slot boundaries it re-selects the best candidate.  Losing
        all candidates mid-slot forces an immediate outage + reselection.
        """
        slot = int(time_s // RECONFIGURATION_INTERVAL_S)
        switched = False

        if not candidate_indices:
            if self._serving != -1:
                switched = True
            self._serving = -1
        elif self._serving not in candidate_indices:
            # Forced reselection (blockage or slot change took the sat away).
            self._serving = candidate_indices[0]
            switched = True
        elif slot != self._slot:
            # Scheduled reselection at the slot boundary: move to the best
            # candidate if it differs from the current one.
            best = candidate_indices[0]
            if best != self._serving:
                self._serving = best
                switched = True
        self._slot = slot

        if switched and self._serving != -1:
            self._outage_until_s = time_s + self.switch_outage_s * float(
                self._gen.uniform(0.5, 1.5)
            )

        if self._serving == -1:
            return HandoverState(
                in_handover=False,
                capacity_factor=0.0,
                extra_loss=1.0,
                serving_satellite=-1,
            )

        if time_s < self._outage_until_s:
            # Within the switch gap: the fraction of this second lost.
            lost = min(1.0, self._outage_until_s - time_s)
            return HandoverState(
                in_handover=True,
                capacity_factor=max(0.0, 1.0 - lost),
                extra_loss=0.02 + 0.05 * lost,
                serving_satellite=self._serving,
            )

        return HandoverState(
            in_handover=False,
            capacity_factor=1.0,
            extra_loss=0.0,
            serving_satellite=self._serving,
        )

    def reset(self) -> None:
        """Forget the serving satellite (new test / power cycle)."""
        self._serving = -1
        self._slot = -1
        self._outage_until_s = -1.0
