"""Ground stations (gateways) and points of presence.

Starlink in 2023 was a bent-pipe system in the paper's region: user dish ->
satellite -> gateway -> PoP -> Internet.  The latency budget therefore adds
two space hops plus terrestrial backhaul.  We place gateways near the
synthetic metros (where fiber is) and route each user through the nearest
gateway that the serving satellite can also see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.coords import GeoPoint, geodetic_to_ecef_km, haversine_km
from repro.geo.places import PlaceDatabase
from repro.rng import RngStreams
from repro.units import SPEED_OF_LIGHT_KM_S


@dataclass(frozen=True)
class Gateway:
    """One gateway site with its terrestrial backhaul latency to the PoP."""

    name: str
    location: GeoPoint
    backhaul_ms: float


class GatewayNetwork:
    """The set of gateways serving the campaign region."""

    def __init__(self, gateways: list[Gateway]):
        if not gateways:
            raise ValueError("need at least one gateway")
        self.gateways = list(gateways)
        self._ecef = np.vstack(
            [geodetic_to_ecef_km(g.location) for g in gateways]
        )

    @classmethod
    def synthetic(
        cls, places: PlaceDatabase, rng: RngStreams | None = None
    ) -> "GatewayNetwork":
        """One gateway near each city, offset tens of km (real gateways sit
        outside metros), with 2-8 ms of terrestrial backhaul to the PoP."""
        rng = rng or RngStreams(0)
        gen = rng.get("leo.gateway")
        gateways = []
        for i, city in enumerate(places.cities()):
            lat = city.location.lat_deg + float(gen.uniform(-0.4, 0.4))
            lon = city.location.lon_deg + float(gen.uniform(-0.4, 0.4))
            gateways.append(
                Gateway(
                    name=f"gw-{i}-{city.name}",
                    location=GeoPoint(lat, lon),
                    backhaul_ms=float(gen.uniform(2.0, 8.0)),
                )
            )
        return cls(gateways)

    def nearest(self, point: GeoPoint) -> tuple[Gateway, float]:
        """Nearest gateway to a ground point and its distance (km)."""
        best_idx = 0
        best_dist = float("inf")
        for i, gw in enumerate(self.gateways):
            d = haversine_km(point, gw.location)
            if d < best_dist:
                best_idx, best_dist = i, d
        return self.gateways[best_idx], best_dist

    def bent_pipe_rtt_ms(
        self,
        user: GeoPoint,
        sat_ecef_km: np.ndarray,
        scheduling_ms: float = 0.0,
    ) -> float:
        """Round-trip time of the bent pipe through the best gateway.

        user->sat->gateway->PoP and back, plus any scheduling delay.  The
        gateway is chosen to minimize total path length among sites the
        satellite can plausibly serve (within 1,500 km ground distance).
        """
        user_ecef = geodetic_to_ecef_km(user)
        up_km = float(np.linalg.norm(sat_ecef_km - user_ecef))
        best_ms = float("inf")
        for gw, gw_ecef in zip(self.gateways, self._ecef, strict=True):
            down_km = float(np.linalg.norm(sat_ecef_km - gw_ecef))
            ground_km = haversine_km(user, gw.location)
            if ground_km > 1_500.0:
                continue
            one_way_ms = (up_km + down_km) / SPEED_OF_LIGHT_KM_S * 1000.0 + gw.backhaul_ms
            best_ms = min(best_ms, 2.0 * one_way_ms)
        if best_ms == float("inf"):
            # Fall back to the geographically nearest gateway.
            gw, _ = self.nearest(user)
            gw_ecef = geodetic_to_ecef_km(gw.location)
            down_km = float(np.linalg.norm(sat_ecef_km - gw_ecef))
            best_ms = 2.0 * (
                (up_km + down_km) / SPEED_OF_LIGHT_KM_S * 1000.0 + gw.backhaul_ms
            )
        return best_ms + scheduling_ms
