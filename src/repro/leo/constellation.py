"""Walker-delta LEO constellation model.

Starlink's first (and during the paper's campaign, dominant) shell is a
Walker-delta constellation at 550 km altitude and 53 deg inclination with 72
orbital planes of 22 satellites.  Satellites move on circular orbits; we
propagate them analytically and express positions in an Earth-centered,
Earth-fixed (ECEF) frame so ground-station geometry is a plain vector
computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import EARTH_MU_KM3_S2, EARTH_RADIUS_KM

#: Earth's sidereal rotation rate (rad/s).
EARTH_ROTATION_RAD_S = 7.2921159e-5


@dataclass(frozen=True)
class OrbitalShell:
    """One Walker-delta shell: evenly spaced planes of evenly spaced sats."""

    altitude_km: float
    inclination_deg: float
    num_planes: int
    sats_per_plane: int
    #: Walker phasing factor F: inter-plane phase offset is F * 360 / N.
    phasing: int = 1

    def __post_init__(self) -> None:
        if self.altitude_km <= 0:
            raise ValueError(f"altitude must be positive, got {self.altitude_km}")
        if self.num_planes < 1 or self.sats_per_plane < 1:
            raise ValueError("shell must have at least one plane and satellite")

    @property
    def num_satellites(self) -> int:
        return self.num_planes * self.sats_per_plane

    @property
    def orbit_radius_km(self) -> float:
        return EARTH_RADIUS_KM + self.altitude_km

    @property
    def orbital_period_s(self) -> float:
        """Keplerian period of the circular orbit."""
        return 2.0 * math.pi * math.sqrt(
            self.orbit_radius_km**3 / EARTH_MU_KM3_S2
        )

    @property
    def mean_motion_rad_s(self) -> float:
        return 2.0 * math.pi / self.orbital_period_s

    @property
    def orbital_speed_kmh(self) -> float:
        """Ground-track-relevant orbital speed, ~27,000 km/h for Starlink."""
        return self.orbit_radius_km * self.mean_motion_rad_s * 3600.0


def starlink_shell1() -> OrbitalShell:
    """The Starlink Gen1 Shell 1 parameters the paper's service rode on."""
    return OrbitalShell(
        altitude_km=550.0,
        inclination_deg=53.0,
        num_planes=72,
        sats_per_plane=22,
        phasing=17,
    )


class Constellation:
    """Analytic propagation of one or more Walker shells.

    Positions are returned in ECEF km.  The implementation is fully
    vectorized: one call returns all satellites at a given time.
    """

    def __init__(self, shells: list[OrbitalShell] | None = None):
        self.shells = shells if shells is not None else [starlink_shell1()]
        if not self.shells:
            raise ValueError("constellation needs at least one shell")
        self._layouts = [self._plane_layout(s) for s in self.shells]

    @property
    def num_satellites(self) -> int:
        return sum(s.num_satellites for s in self.shells)

    @staticmethod
    def _plane_layout(shell: OrbitalShell) -> tuple[np.ndarray, np.ndarray]:
        """Per-satellite (RAAN, initial phase) arrays for a shell."""
        plane_idx = np.repeat(np.arange(shell.num_planes), shell.sats_per_plane)
        sat_idx = np.tile(np.arange(shell.sats_per_plane), shell.num_planes)
        raan = 2.0 * math.pi * plane_idx / shell.num_planes
        phase = (
            2.0 * math.pi * sat_idx / shell.sats_per_plane
            + 2.0
            * math.pi
            * shell.phasing
            * plane_idx
            / shell.num_satellites
        )
        return raan, phase

    def positions_ecef_km(self, time_s: float) -> np.ndarray:
        """ECEF positions (N, 3) of every satellite at ``time_s``."""
        chunks = []
        for shell, (raan, phase0) in zip(self.shells, self._layouts, strict=True):
            inc = math.radians(shell.inclination_deg)
            r = shell.orbit_radius_km
            arg = phase0 + shell.mean_motion_rad_s * time_s
            # Position in the orbital plane.
            x_orb = r * np.cos(arg)
            y_orb = r * np.sin(arg)
            # Rotate by inclination, then RAAN (inertial frame).
            x_i = x_orb * np.cos(raan) - y_orb * np.cos(inc) * np.sin(raan)
            y_i = x_orb * np.sin(raan) + y_orb * np.cos(inc) * np.cos(raan)
            z_i = y_orb * np.sin(inc)
            # Inertial -> ECEF: rotate by minus Earth rotation angle.
            theta = EARTH_ROTATION_RAD_S * time_s
            cos_t, sin_t = math.cos(theta), math.sin(theta)
            x_e = x_i * cos_t + y_i * sin_t
            y_e = -x_i * sin_t + y_i * cos_t
            chunks.append(np.column_stack([x_e, y_e, z_i]))
        return np.vstack(chunks)

    def positions_ecef_many(self, times_s: np.ndarray) -> np.ndarray:
        """ECEF positions (T, N, 3) for a whole array of times at once.

        Bit-identical to stacking :meth:`positions_ecef_km` per time: the
        arithmetic below keeps the exact expression structure of the
        scalar path (elementwise ufuncs are shape-independent, and
        ``math.cos``/``math.sin`` agree bitwise with ``np.cos``/``np.sin``
        on float64), it is just evaluated on (T, N) arrays.
        """
        times = np.asarray(times_s, dtype=float).reshape(-1)
        chunks = []
        for shell, (raan, phase0) in zip(self.shells, self._layouts, strict=True):
            inc = math.radians(shell.inclination_deg)
            r = shell.orbit_radius_km
            arg = phase0[None, :] + (shell.mean_motion_rad_s * times)[:, None]
            x_orb = r * np.cos(arg)
            y_orb = r * np.sin(arg)
            x_i = x_orb * np.cos(raan) - y_orb * np.cos(inc) * np.sin(raan)
            y_i = x_orb * np.sin(raan) + y_orb * np.cos(inc) * np.cos(raan)
            z_i = y_orb * np.sin(inc)
            theta = EARTH_ROTATION_RAD_S * times
            cos_t = np.cos(theta)[:, None]
            sin_t = np.sin(theta)[:, None]
            x_e = x_i * cos_t + y_i * sin_t
            y_e = -x_i * sin_t + y_i * cos_t
            chunks.append(np.stack([x_e, y_e, z_i], axis=-1))
        return np.concatenate(chunks, axis=1)

    def positions_ecef_subset_many(
        self, times_s: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """ECEF positions (T, K, 3) for a sorted subset of satellites.

        Bit-identical to ``positions_ecef_many(times_s)[:, indices]`` —
        every expression is elementwise, so evaluating it on a row subset
        of the layout arrays yields the same bits as slicing the full
        result.  ``indices`` must be sorted ascending (global satellite
        indices across shells).
        """
        times = np.asarray(times_s, dtype=float).reshape(-1)
        indices = np.asarray(indices, dtype=np.int64)
        chunks = []
        base = 0
        for shell, (raan, phase0) in zip(self.shells, self._layouts, strict=True):
            n = shell.num_satellites
            sel = indices[(indices >= base) & (indices < base + n)] - base
            base += n
            if sel.size == 0:
                continue
            inc = math.radians(shell.inclination_deg)
            r = shell.orbit_radius_km
            arg = phase0[None, sel] + (shell.mean_motion_rad_s * times)[:, None]
            x_orb = r * np.cos(arg)
            y_orb = r * np.sin(arg)
            raan_s = raan[sel]
            x_i = x_orb * np.cos(raan_s) - y_orb * np.cos(inc) * np.sin(raan_s)
            y_i = x_orb * np.sin(raan_s) + y_orb * np.cos(inc) * np.cos(raan_s)
            z_i = y_orb * np.sin(inc)
            theta = EARTH_ROTATION_RAD_S * times
            cos_t = np.cos(theta)[:, None]
            sin_t = np.sin(theta)[:, None]
            x_e = x_i * cos_t + y_i * sin_t
            y_e = -x_i * sin_t + y_i * cos_t
            chunks.append(np.stack([x_e, y_e, z_i], axis=-1))
        if not chunks:
            return np.zeros((times.size, 0, 3))
        return np.concatenate(chunks, axis=1)

    def plane_frames(self) -> list[dict[str, np.ndarray | float]]:
        """Per-shell in-plane basis data for approximate fast-path geometry.

        A satellite's inertial position is ``r * (cos(arg) * p + sin(arg) * q)``
        with ``arg = phase0 + mean_motion * t`` and the per-satellite basis
        vectors ``p = (cos raan, sin raan, 0)``,
        ``q = (-cos inc sin raan, cos inc cos raan, sin inc)``.  The fast
        path uses this (plus the angle-sum identity for ``cos``/``sin`` of
        ``arg``) to compute *approximate* dot products against observer
        vectors without any per-(time, satellite) trig; the result is only
        ever used behind a slack prefilter threshold, never for exact
        outputs.
        """
        frames = []
        for shell, (raan, phase0) in zip(self.shells, self._layouts, strict=True):
            inc = math.radians(shell.inclination_deg)
            p_vec = np.column_stack(
                [np.cos(raan), np.sin(raan), np.zeros_like(raan)]
            )
            q_vec = np.column_stack(
                [
                    -math.cos(inc) * np.sin(raan),
                    math.cos(inc) * np.cos(raan),
                    np.full_like(raan, math.sin(inc)),
                ]
            )
            frames.append(
                {
                    "radius_km": shell.orbit_radius_km,
                    "mean_motion_rad_s": shell.mean_motion_rad_s,
                    "cos_phase": np.cos(phase0),
                    "sin_phase": np.sin(phase0),
                    "p_vec": p_vec,
                    "q_vec": q_vec,
                }
            )
        return frames
