"""Ground-to-satellite look-angle geometry.

Everything the channel model needs from orbital mechanics reduces to: which
satellites are above which elevation, how far away they are, and what
propagation delay that distance implies.  This module also implements the
paper's Equation 1 (one-way added latency ~1.835 ms at 550 km).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.coords import GeoPoint, geodetic_to_ecef_km
from repro.units import SPEED_OF_LIGHT_KM_S


@dataclass(frozen=True)
class LookAngles:
    """Elevation/azimuth/range of one satellite as seen from the ground."""

    elevation_deg: float
    azimuth_deg: float
    slant_range_km: float

    @property
    def one_way_delay_ms(self) -> float:
        return propagation_delay_ms(self.slant_range_km)


def propagation_delay_ms(distance_km: float) -> float:
    """One-way free-space propagation delay for ``distance_km``."""
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    return distance_km / SPEED_OF_LIGHT_KM_S * 1000.0


def equation1_one_way_latency_ms(altitude_km: float = 550.0) -> float:
    """The paper's Equation 1: altitude / speed-of-light, in ms.

    For the default 550 km this is ~1.835 ms, the paper's headline argument
    for why LEO latency is comparable to cellular.
    """
    return propagation_delay_ms(altitude_km)


def enu_basis(observer: GeoPoint) -> np.ndarray:
    """East/North/Up unit vectors at ``observer`` as rows of a 3x3 matrix."""
    lat = np.radians(observer.lat_deg)
    lon = np.radians(observer.lon_deg)
    east = np.array([-np.sin(lon), np.cos(lon), 0.0])
    north = np.array(
        [-np.sin(lat) * np.cos(lon), -np.sin(lat) * np.sin(lon), np.cos(lat)]
    )
    up = np.array(
        [np.cos(lat) * np.cos(lon), np.cos(lat) * np.sin(lon), np.sin(lat)]
    )
    return np.vstack([east, north, up])


def look_angles_many(
    observer: GeoPoint, sat_ecef_km: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized elevation/azimuth/range for an (N, 3) satellite array.

    Returns ``(elevation_deg, azimuth_deg, slant_range_km)`` arrays of shape
    (N,).  Satellites below the horizon get negative elevations.
    """
    obs = geodetic_to_ecef_km(observer)
    rel = sat_ecef_km - obs
    basis = enu_basis(observer)
    enu = rel @ basis.T
    rng = np.linalg.norm(enu, axis=1)
    with np.errstate(invalid="ignore"):
        elevation = np.degrees(np.arcsin(np.clip(enu[:, 2] / rng, -1.0, 1.0)))
    azimuth = (np.degrees(np.arctan2(enu[:, 0], enu[:, 1])) + 360.0) % 360.0
    return elevation, azimuth, rng


def look_angles(observer: GeoPoint, sat_ecef_km: np.ndarray) -> LookAngles:
    """Look angles for a single satellite position (3,)."""
    elev, azim, rng = look_angles_many(observer, sat_ecef_km.reshape(1, 3))
    return LookAngles(
        elevation_deg=float(elev[0]),
        azimuth_deg=float(azim[0]),
        slant_range_km=float(rng[0]),
    )


def slant_range_km(altitude_km: float, elevation_deg: float) -> float:
    """Slant range to a satellite at ``altitude_km`` seen at ``elevation_deg``.

    Closed-form from the law of cosines on the Earth-center triangle; used
    for delay bounds and tests.
    """
    if not -90.0 <= elevation_deg <= 90.0:
        raise ValueError(f"elevation out of range: {elevation_deg}")
    re = 6371.0
    r = re + altitude_km
    e = np.radians(elevation_deg)
    return float(-re * np.sin(e) + np.sqrt(r**2 - (re * np.cos(e)) ** 2))
