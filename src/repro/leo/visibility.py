"""Satellite visibility under dish field-of-view and local obstruction.

Combines three masks: the dish's own minimum elevation (plan-dependent field
of view), the obstruction-driven raised horizon (urban canyons), and random
azimuthal blockage sectors (a building blocks a wedge of sky, not a uniform
ring).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.classify import obstruction_elevation_mask_deg
from repro.geo.coords import GeoPoint
from repro.leo.constellation import Constellation
from repro.leo.dish import DishModel
from repro.leo.geometry import look_angles_many


@dataclass(frozen=True)
class VisibleSatellite:
    """One usable satellite candidate."""

    index: int
    elevation_deg: float
    azimuth_deg: float
    slant_range_km: float


class VisibilityModel:
    """Computes the usable satellite set for a (position, time, sky state)."""

    def __init__(self, constellation: Constellation):
        self.constellation = constellation

    def visible_satellites(
        self,
        observer: GeoPoint,
        time_s: float,
        dish: DishModel,
        obstruction_fraction: float = 0.0,
        blocked_sectors: list[tuple[float, float]] | None = None,
        max_candidates: int = 8,
    ) -> list[VisibleSatellite]:
        """Usable satellites, best (highest elevation) first.

        ``blocked_sectors`` is a list of (azimuth_start, azimuth_end) wedges
        (degrees) that obstructions remove entirely; wedge blockage only
        applies below 60 deg elevation, since near-zenith paths clear
        buildings.
        """
        positions = self.constellation.positions_ecef_km(time_s)
        elev, azim, rng = look_angles_many(observer, positions)
        mask = dish.effective_mask_deg(
            obstruction_elevation_mask_deg(obstruction_fraction)
        )
        usable = elev >= mask
        if blocked_sectors:
            for start, end in blocked_sectors:
                in_wedge = _azimuth_in_sector(azim, start, end)
                usable &= ~(in_wedge & (elev < 60.0))
        idx = np.nonzero(usable)[0]
        if idx.size == 0:
            return []
        order = idx[np.argsort(-elev[idx])][:max_candidates]
        return [
            VisibleSatellite(
                index=int(i),
                elevation_deg=float(elev[i]),
                azimuth_deg=float(azim[i]),
                slant_range_km=float(rng[i]),
            )
            for i in order
        ]

    @staticmethod
    def random_blocked_sectors(
        obstruction_fraction: float, gen: np.random.Generator
    ) -> list[tuple[float, float]]:
        """Draw azimuth wedges whose total width tracks the obstruction level."""
        total_deg = 360.0 * obstruction_fraction
        sectors: list[tuple[float, float]] = []
        while total_deg > 1.0 and len(sectors) < 6:
            width = float(gen.uniform(20.0, min(120.0, max(21.0, total_deg))))
            start = float(gen.uniform(0.0, 360.0))
            sectors.append((start, (start + width) % 360.0))
            total_deg -= width
        return sectors


def _azimuth_in_sector(azim: np.ndarray, start: float, end: float) -> np.ndarray:
    """Membership test for an azimuth wedge that may wrap through 0 deg."""
    if start <= end:
        return (azim >= start) & (azim <= end)
    return (azim >= start) | (azim <= end)
