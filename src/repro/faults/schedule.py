"""A deterministic collection of fault events plus composition rules.

The schedule is the unit the campaign carries around: it is immutable,
JSON-serializable, and fingerprintable, so checkpoint/resume can verify
that a resumed run injects exactly the faults the interrupted run did.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.faults.events import FaultEffect, FaultEvent, FaultKind, event_from_dict
from repro.geo.coords import GeoPoint


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable set of fault events for one campaign."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ValueError(f"not a FaultEvent: {event!r}")

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- queries --------------------------------------------------------

    def active_events(
        self,
        network: str,
        drive_id: int,
        time_s: float,
        position: GeoPoint,
    ) -> list[tuple[FaultEvent, FaultEffect]]:
        """Every event hitting this (network, drive, second, position)."""
        hits: list[tuple[FaultEvent, FaultEffect]] = []
        for event in self.events:
            effect = event.effect_on(network, drive_id, time_s, position)
            if effect is not None:
                hits.append((event, effect))
        return hits

    @staticmethod
    def compose(effects: list[FaultEffect]) -> FaultEffect:
        """Combine concurrent effects: blackout wins; factors multiply,
        losses and RTT penalties add."""
        blackout = any(e.blackout for e in effects)
        factor = 1.0
        loss = 0.0
        rtt = 0.0
        for e in effects:
            factor *= e.capacity_factor
            loss += e.extra_loss
            rtt += e.extra_rtt_ms
        return FaultEffect(
            blackout=blackout,
            capacity_factor=factor,
            extra_loss=min(1.0, loss),
            extra_rtt_ms=rtt,
        )

    # -- persistence ----------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON (stable ordering, fingerprint-safe)."""
        return json.dumps(
            [event.to_dict() for event in self.events], sort_keys=True
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultSchedule":
        """Rebuild a schedule serialized by :meth:`to_json`."""
        return cls(tuple(event_from_dict(raw) for raw in json.loads(payload)))

    def fingerprint(self) -> str:
        """Stable content hash, embedded in campaign checkpoints."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]

    def counts_by_kind(self) -> dict[str, int]:
        """Number of scheduled events per fault kind (all kinds present)."""
        counts = {kind.value: 0 for kind in FaultKind}
        for event in self.events:
            counts[event.kind.value] += 1
        return counts
