"""Typed fault events: the vocabulary of things that go wrong on a drive.

The paper's dataset exists because real drives are messy — obstructions,
weather fronts, satellite handover gaps, and dead cellular sectors (see
"Starlink on the Road" and "A Multifaceted Look at Starlink Performance").
Each event here is one such disruption regime, reduced to the same
interface: given a network, drive, time, and position, does the event
apply, and if so how does it attenuate that second's link?

Events are frozen dataclasses so a :class:`repro.faults.FaultSchedule` is
hashable/serializable and campaign checkpoints can fingerprint it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum
from typing import ClassVar

from repro.geo.coords import GeoPoint, destination_point, haversine_km

#: Network identifiers, mirroring ``repro.core.dataset`` (duplicated here
#: because importing it would make ``repro.core`` <-> ``repro.faults``
#: circular; ``tests/test_faults.py`` pins the two in sync).
NETWORKS = ("RM", "MOB", "ATT", "TM", "VZ")
STARLINK_NETWORKS = ("RM", "MOB")
CELLULAR_NETWORKS = ("ATT", "TM", "VZ")


class FaultKind(str, Enum):
    """Tag for each fault regime (stable strings for reports/JSON)."""

    SATELLITE_OUTAGE = "satellite_outage"
    GATEWAY_FAILURE = "gateway_failure"
    OBSTRUCTION_BURST = "obstruction_burst"
    WEATHER_FRONT = "weather_front"
    CELL_SECTOR_OUTAGE = "cell_sector_outage"


@dataclass(frozen=True)
class FaultEffect:
    """How one active fault attenuates one second of one link.

    ``blackout`` short-circuits everything else: the second becomes a full
    :func:`repro.conditions.outage`.  Otherwise ``capacity_factor``
    multiplies both directions, ``extra_loss`` adds to the loss rate, and
    ``extra_rtt_ms`` adds to the RTT.
    """

    blackout: bool = False
    capacity_factor: float = 1.0
    extra_loss: float = 0.0
    extra_rtt_ms: float = 0.0


@dataclass(frozen=True, kw_only=True)
class FaultEvent:
    """Base fault: a time window, optionally pinned to one drive.

    ``drive_id=None`` means the event fires on every drive (drive-relative
    time); otherwise only on the named drive.  Subclasses narrow which
    networks are hit and what the effect is.
    """

    kind: ClassVar[FaultKind]

    start_s: float
    end_s: float
    drive_id: int | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ValueError(f"start_s must be non-negative, got {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"end_s must be after start_s, got [{self.start_s}, {self.end_s}]"
            )
        if self.drive_id is not None and self.drive_id < 0:
            raise ValueError(f"drive_id must be non-negative, got {self.drive_id}")

    # -- the one query the injector makes -------------------------------

    def effect_on(
        self,
        network: str,
        drive_id: int,
        time_s: float,
        position: GeoPoint,
    ) -> FaultEffect | None:
        """The attenuation this event applies, or None if inactive."""
        if self.drive_id is not None and drive_id != self.drive_id:
            return None
        if not self.start_s <= time_s < self.end_s:
            return None
        if network not in self._targets():
            return None
        return self._effect(time_s, position)

    # -- subclass hooks -------------------------------------------------

    def _targets(self) -> tuple[str, ...]:
        return NETWORKS

    def _effect(self, time_s: float, position: GeoPoint) -> FaultEffect | None:
        raise NotImplementedError

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dict, tagged with the event kind."""
        return {"kind": self.kind.value, **asdict(self)}


@dataclass(frozen=True, kw_only=True)
class SatelliteOutage(FaultEvent):
    """Constellation-side feed loss: the serving satellite goes dark.

    Models the multi-second gaps both Starlink road studies observe around
    failed handovers/ephemeris updates — a full blackout of every dish.
    """

    kind: ClassVar[FaultKind] = FaultKind.SATELLITE_OUTAGE

    def _targets(self) -> tuple[str, ...]:
        return STARLINK_NETWORKS

    def _effect(self, time_s: float, position: GeoPoint) -> FaultEffect:
        return FaultEffect(blackout=True)


@dataclass(frozen=True, kw_only=True)
class GatewayFailure(FaultEvent):
    """Ground-station / PoP failure: traffic reroutes to a farther PoP.

    The bent pipe survives but the terrestrial leg lengthens: capacity
    drops (the backup gateway is shared) and RTT inflates.
    """

    kind: ClassVar[FaultKind] = FaultKind.GATEWAY_FAILURE

    capacity_factor: float = 0.55
    extra_rtt_ms: float = 45.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.capacity_factor <= 1.0:
            raise ValueError(
                f"capacity_factor must be in [0, 1], got {self.capacity_factor}"
            )
        if self.extra_rtt_ms < 0.0:
            raise ValueError(f"extra_rtt_ms must be non-negative, got {self.extra_rtt_ms}")

    def _targets(self) -> tuple[str, ...]:
        return STARLINK_NETWORKS

    def _effect(self, time_s: float, position: GeoPoint) -> FaultEffect:
        return FaultEffect(
            capacity_factor=self.capacity_factor, extra_rtt_ms=self.extra_rtt_ms
        )


@dataclass(frozen=True, kw_only=True)
class ObstructionBurst(FaultEvent):
    """A sustained line-of-sight obstruction beyond the terrain process.

    Construction zones, tree tunnels, sound walls: severity is the
    fraction of capacity lost; at 1.0 the sky is fully blocked and the
    second is an outage.
    """

    kind: ClassVar[FaultKind] = FaultKind.OBSTRUCTION_BURST

    severity: float = 0.8
    extra_loss: float = 0.02

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.severity <= 1.0:
            raise ValueError(f"severity must be in (0, 1], got {self.severity}")
        if not 0.0 <= self.extra_loss <= 1.0:
            raise ValueError(f"extra_loss must be in [0, 1], got {self.extra_loss}")

    def _targets(self) -> tuple[str, ...]:
        return STARLINK_NETWORKS

    def _effect(self, time_s: float, position: GeoPoint) -> FaultEffect:
        if self.severity >= 1.0:
            return FaultEffect(blackout=True)
        return FaultEffect(
            capacity_factor=1.0 - self.severity, extra_loss=self.extra_loss
        )


@dataclass(frozen=True, kw_only=True)
class WeatherFront(FaultEvent):
    """A moving rain/snow cell the drive can enter and leave.

    With a ``center`` the front is a geographic disc of ``radius_km`` that
    drifts at ``speed_kmh`` along ``bearing_deg`` from its position at
    ``start_s``; the fault applies only while the vehicle is inside it.
    Without a ``center`` the front is region-wide for the window.
    Satellite links take the full attenuation; cellular links a mild one
    (rain fade matters far less below 6 GHz).
    """

    kind: ClassVar[FaultKind] = FaultKind.WEATHER_FRONT

    capacity_factor: float = 0.72
    extra_loss: float = 0.004
    cellular_capacity_factor: float = 0.95
    center: GeoPoint | None = None
    radius_km: float = 60.0
    speed_kmh: float = 35.0
    bearing_deg: float = 90.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("capacity_factor", "cellular_capacity_factor"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.radius_km <= 0.0:
            raise ValueError(f"radius_km must be positive, got {self.radius_km}")
        if self.speed_kmh < 0.0:
            raise ValueError(f"speed_kmh must be non-negative, got {self.speed_kmh}")

    def center_at(self, time_s: float) -> GeoPoint | None:
        """Where the front's center has drifted to by ``time_s``."""
        if self.center is None:
            return None
        travelled_km = self.speed_kmh * max(0.0, time_s - self.start_s) / 3600.0
        if travelled_km <= 0.0:
            return self.center
        return destination_point(self.center, self.bearing_deg, travelled_km)

    def effect_on(
        self,
        network: str,
        drive_id: int,
        time_s: float,
        position: GeoPoint,
    ) -> FaultEffect | None:
        base = super().effect_on(network, drive_id, time_s, position)
        if base is None:
            return None
        center = self.center_at(time_s)
        if center is not None and haversine_km(center, position) > self.radius_km:
            return None
        if network in CELLULAR_NETWORKS:
            return FaultEffect(capacity_factor=self.cellular_capacity_factor)
        return base

    def _effect(self, time_s: float, position: GeoPoint) -> FaultEffect:
        return FaultEffect(
            capacity_factor=self.capacity_factor, extra_loss=self.extra_loss
        )


@dataclass(frozen=True, kw_only=True)
class CellSectorOutage(FaultEvent):
    """One carrier's sector goes dark (dead zone beyond coverage holes)."""

    kind: ClassVar[FaultKind] = FaultKind.CELL_SECTOR_OUTAGE

    carrier: str = "ATT"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.carrier not in CELLULAR_NETWORKS:
            raise ValueError(
                f"carrier must be one of {CELLULAR_NETWORKS}, got {self.carrier!r}"
            )

    def _targets(self) -> tuple[str, ...]:
        return (self.carrier,)

    def _effect(self, time_s: float, position: GeoPoint) -> FaultEffect:
        return FaultEffect(blackout=True)


#: kind tag -> event class, for deserialization.
EVENT_TYPES: dict[str, type[FaultEvent]] = {
    FaultKind.SATELLITE_OUTAGE.value: SatelliteOutage,
    FaultKind.GATEWAY_FAILURE.value: GatewayFailure,
    FaultKind.OBSTRUCTION_BURST.value: ObstructionBurst,
    FaultKind.WEATHER_FRONT.value: WeatherFront,
    FaultKind.CELL_SECTOR_OUTAGE.value: CellSectorOutage,
}


def event_from_dict(raw: dict) -> FaultEvent:
    """Rebuild an event serialized by :meth:`FaultEvent.to_dict`."""
    payload = dict(raw)
    kind = payload.pop("kind", None)
    if kind not in EVENT_TYPES:
        raise ValueError(f"unknown fault kind {kind!r}")
    if kind == FaultKind.WEATHER_FRONT.value and payload.get("center") is not None:
        payload["center"] = GeoPoint(**payload["center"])
    return EVENT_TYPES[kind](**payload)
