"""Fault injection: deterministic disruption regimes for drive campaigns.

The paper's measurements are shaped by things going wrong — obstructions,
weather, satellite handover gaps, dead cellular sectors.  This package
makes those first-class: typed fault events, a seed-driven immutable
:class:`FaultSchedule`, and a :class:`FaultInjector` that composes over
any channel's ``sample()`` without the channel knowing.  See
``docs/FAULTS.md`` for the fault model and its mapping to the paper.
"""

from repro.faults.events import (
    CellSectorOutage,
    EVENT_TYPES,
    FaultEffect,
    FaultEvent,
    FaultKind,
    GatewayFailure,
    ObstructionBurst,
    SatelliteOutage,
    WeatherFront,
    event_from_dict,
)
from repro.faults.generate import generate_schedule
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule

__all__ = [
    "CellSectorOutage",
    "EVENT_TYPES",
    "FaultEffect",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "GatewayFailure",
    "ObstructionBurst",
    "SatelliteOutage",
    "WeatherFront",
    "event_from_dict",
    "generate_schedule",
]
