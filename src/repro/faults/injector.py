"""FaultInjector: composes a fault schedule over any channel's sample().

The injector quacks like a channel (``sample`` + ``reset``), so the
campaign — and anything else that consumes per-second
:class:`repro.conditions.LinkConditions` — can be fault-injected without
the channel models knowing faults exist.  Blackout seconds skip the
wrapped channel entirely; attenuating faults sample the channel and then
apply :meth:`LinkConditions.degraded`.

The injector also counts what it did (per-kind affected seconds, forced
outage seconds), which the campaign rolls up into its
:class:`repro.core.campaign.CampaignReport`.
"""

from __future__ import annotations

from repro.conditions import LinkConditions, outage
from repro.faults.schedule import FaultSchedule
from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint
from repro.obs.recorder import get_recorder


class FaultInjector:
    """Wrap one network's channel with a campaign fault schedule."""

    #: Loss-burst length reported for faulted-but-alive seconds: fault
    #: loss is clustered (an event, not thermal noise).
    FAULT_LOSS_BURST = 40.0

    def __init__(
        self,
        channel,
        network: str,
        schedule: FaultSchedule,
        drive_id: int = 0,
        recorder=None,
    ):
        self.channel = channel
        self.network = network
        self.schedule = schedule
        self.drive_id = drive_id
        #: fault-kind value -> seconds this injector altered.
        self.fault_seconds: dict[str, int] = {}
        #: Seconds forced to a full outage by a blackout fault.
        self.outage_seconds = 0
        self._obs = recorder if recorder is not None else get_recorder()
        self._m_outage = self._obs.counter(
            "faults.outage_seconds", network=network
        )
        self._m_kind_seconds: dict[str, object] = {}

    def sample(
        self,
        time_s: float,
        position: GeoPoint,
        speed_kmh: float,
        area: AreaType,
    ) -> LinkConditions:
        """Channel conditions for this second, faults applied."""
        hits = self.schedule.active_events(
            self.network, self.drive_id, time_s, position
        )
        if not hits:
            return self.channel.sample(time_s, position, speed_kmh, area)

        for event, _ in hits:
            key = event.kind.value
            self.fault_seconds[key] = self.fault_seconds.get(key, 0) + 1
            counter = self._m_kind_seconds.get(key)
            if counter is None:
                counter = self._obs.counter(
                    "faults.fault_seconds", kind=key, network=self.network
                )
                self._m_kind_seconds[key] = counter
            counter.inc()
        combined = FaultSchedule.compose([effect for _, effect in hits])

        if combined.blackout:
            # The link is gone: do not advance the channel's stochastic
            # state for a second it never served.
            self.outage_seconds += 1
            self._m_outage.inc()
            return outage(time_s, loss_burst=self.FAULT_LOSS_BURST)

        conditions = self.channel.sample(time_s, position, speed_kmh, area)
        return conditions.degraded(
            capacity_factor=combined.capacity_factor,
            extra_loss=combined.extra_loss,
            extra_rtt_ms=combined.extra_rtt_ms,
            loss_burst=max(conditions.loss_burst, self.FAULT_LOSS_BURST),
        )

    def stats(self) -> dict:
        """This injector's accounting, in the shape drive payloads carry
        (and campaign checkpoints persist): per-kind affected seconds plus
        forced-outage seconds."""
        return {
            "fault_seconds": dict(self.fault_seconds),
            "fault_outage_seconds": self.outage_seconds,
        }

    def reset(self) -> None:
        """Reset the wrapped channel (counters persist for reporting)."""
        self.channel.reset()


def aggregate_fault_stats(injectors) -> dict:
    """Sum :meth:`FaultInjector.stats` across a drive's injectors.

    One drive wraps every network's channel in its own injector; the
    drive payload (and, across drives, the campaign report) carries the
    sum.  Addition is exact (integer seconds), so aggregating per-drive
    worker results in drive order reproduces a serial run's totals.
    """
    fault_seconds: dict[str, int] = {}
    outage_seconds = 0
    for injector in injectors:
        for kind, seconds in injector.fault_seconds.items():
            fault_seconds[kind] = fault_seconds.get(kind, 0) + seconds
        outage_seconds += injector.outage_seconds
    return {
        "fault_seconds": fault_seconds,
        "fault_outage_seconds": outage_seconds,
    }
