"""Seed-driven fault-schedule generation.

Builds a :class:`repro.faults.FaultSchedule` from a seed and the campaign
shape (number of drives, per-drive duration).  The draws come from a
dedicated :class:`repro.rng.RngStreams` substream, so the same seed always
yields the same schedule and the fault process never perturbs the channel
physics streams.

Rates are per drive-hour and loosely calibrated to the disruption
frequencies the road-measurement papers report: short satellite gaps many
times an hour, sector/gateway events much rarer, weather synoptic-scale.
"""

from __future__ import annotations

from repro.faults.events import (
    CELLULAR_NETWORKS,
    CellSectorOutage,
    FaultEvent,
    GatewayFailure,
    ObstructionBurst,
    SatelliteOutage,
    WeatherFront,
)
from repro.faults.schedule import FaultSchedule
from repro.geo.coords import GeoPoint, destination_point
from repro.rng import RngStreams

#: Mean events per drive-hour at intensity 1.0.
RATES_PER_HOUR = {
    "satellite_outage": 4.0,
    "gateway_failure": 0.25,
    "obstruction_burst": 6.0,
    "weather_front": 0.4,
    "cell_sector_outage": 0.5,
}

#: Duration ranges (seconds) per fault kind.
DURATIONS_S = {
    "satellite_outage": (2.0, 12.0),
    "gateway_failure": (60.0, 420.0),
    "obstruction_burst": (5.0, 45.0),
    "weather_front": (600.0, 3600.0),
    "cell_sector_outage": (30.0, 300.0),
}

_CARRIERS = CELLULAR_NETWORKS


def generate_schedule(
    seed: int,
    num_drives: int,
    drive_duration_s: float,
    intensity: float = 1.0,
    region_center: GeoPoint | None = None,
) -> FaultSchedule:
    """Draw a deterministic schedule for a whole campaign.

    Each drive gets independent Poisson event counts at
    ``RATES_PER_HOUR * intensity``, with start times uniform over the
    drive and durations uniform over each kind's range.  Weather fronts
    get a geographic disc near ``region_center`` when one is given,
    otherwise they are region-wide.
    """
    if num_drives <= 0:
        raise ValueError(f"num_drives must be positive, got {num_drives}")
    if drive_duration_s <= 0.0:
        raise ValueError(
            f"drive_duration_s must be positive, got {drive_duration_s}"
        )
    if intensity < 0.0:
        raise ValueError(f"intensity must be non-negative, got {intensity}")

    gen = RngStreams(seed).get("faults.generate")
    hours = drive_duration_s / 3600.0
    events: list[FaultEvent] = []

    for drive_id in range(num_drives):
        for kind, rate in RATES_PER_HOUR.items():
            count = int(gen.poisson(rate * intensity * hours))
            lo, hi = DURATIONS_S[kind]
            for _ in range(count):
                duration = float(gen.uniform(lo, hi))
                start = float(gen.uniform(0.0, max(1.0, drive_duration_s - duration)))
                events.append(
                    _make_event(kind, drive_id, start, start + duration, gen, region_center)
                )

    events.sort(key=lambda e: (e.drive_id if e.drive_id is not None else -1, e.start_s))
    return FaultSchedule(tuple(events))


def _make_event(kind, drive_id, start_s, end_s, gen, region_center):
    window = dict(start_s=start_s, end_s=end_s, drive_id=drive_id)
    if kind == "satellite_outage":
        return SatelliteOutage(**window)
    if kind == "gateway_failure":
        return GatewayFailure(
            **window,
            capacity_factor=float(gen.uniform(0.35, 0.7)),
            extra_rtt_ms=float(gen.uniform(25.0, 80.0)),
        )
    if kind == "obstruction_burst":
        return ObstructionBurst(
            **window,
            severity=float(gen.uniform(0.5, 1.0)),
            extra_loss=float(gen.uniform(0.005, 0.05)),
        )
    if kind == "weather_front":
        center = None
        if region_center is not None:
            # Spawn the front upwind of the region so it sweeps across.
            center = destination_point(
                region_center,
                float(gen.uniform(0.0, 360.0)),
                float(gen.uniform(0.0, 120.0)),
            )
        return WeatherFront(
            **window,
            capacity_factor=float(gen.uniform(0.6, 0.85)),
            extra_loss=float(gen.uniform(0.001, 0.006)),
            center=center,
            radius_km=float(gen.uniform(30.0, 120.0)),
            speed_kmh=float(gen.uniform(15.0, 60.0)),
            bearing_deg=float(gen.uniform(0.0, 360.0)),
        )
    if kind == "cell_sector_outage":
        return CellSectorOutage(
            **window, carrier=_CARRIERS[int(gen.integers(0, len(_CARRIERS)))]
        )
    raise ValueError(f"unknown fault kind {kind!r}")
