"""Sky-obstruction environment along a drive.

The single most important geographic factor in the paper is line-of-sight
blockage: "Obstructions such as tall buildings or trees can disrupt the
satellite connections" (Section 2).  This module turns the area type under
the vehicle into a slowly varying obstruction process: an
Ornstein-Uhlenbeck-like mean-reverting fraction of blocked sky whose mean
depends on area type, with occasional deep-blockage episodes (overpasses,
street canyons, tree tunnels).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.classify import AreaType
from repro.rng import RngStreams

#: Mean obstruction fraction by area type.  Urban >> suburban ~ rural,
#: matching Section 5.1 ("a lot of obstructions only in urban areas;
#: suburban ... similar obstruction conditions to rural").
_MEAN_OBSTRUCTION = {
    AreaType.URBAN: 0.38,
    AreaType.SUBURBAN: 0.12,
    AreaType.RURAL: 0.08,
}

#: Probability per second of entering a deep-blockage episode.  These are
#: high because the paper's data is *in motion*: overpasses, sound walls,
#: tree lines, and trucks interrupt the line of sight frequently, which is
#: what produces the paper's heavy low-throughput tail for both dishes
#: (median 197 but mean only 128 Mbps for Mobility).
_EPISODE_RATE = {
    AreaType.URBAN: 0.080,
    AreaType.SUBURBAN: 0.052,
    AreaType.RURAL: 0.044,
}


@dataclass(frozen=True)
class ObstructionSample:
    """Obstruction state for one second of driving."""

    fraction: float  # fraction of the useful sky dome blocked, [0, 1]
    deep_blockage: bool  # inside an overpass/canyon episode


class ObstructionProcess:
    """Stateful per-second obstruction generator.

    Call :meth:`step` once per second with the current area type.  The
    process mean-reverts toward the area's mean obstruction with rate
    ``reversion`` and jumps into short deep-blockage episodes at the area's
    episode rate.
    """

    def __init__(
        self,
        rng: RngStreams | None = None,
        stream: str = "geo.terrain",
        reversion: float = 0.15,
        volatility: float = 0.06,
    ):
        self._rng = (rng or RngStreams(0)).get(stream)
        self.reversion = reversion
        self.volatility = volatility
        self._fraction = 0.1
        self._episode_left_s = 0

    def step(self, area: AreaType) -> ObstructionSample:
        """Advance one second and return the obstruction state."""
        mean = _MEAN_OBSTRUCTION[area]
        noise = float(self._rng.normal(0.0, self.volatility))
        self._fraction += self.reversion * (mean - self._fraction) + noise
        self._fraction = float(np.clip(self._fraction, 0.0, 0.95))

        if self._episode_left_s > 0:
            self._episode_left_s -= 1
            return ObstructionSample(fraction=0.95, deep_blockage=True)

        if self._rng.random() < _EPISODE_RATE[area]:
            # Episodes last 3-12 seconds (an overpass at speed, a tree
            # tunnel, a truck alongside, a canyon block).
            self._episode_left_s = int(self._rng.integers(3, 13))
            return ObstructionSample(fraction=0.95, deep_blockage=True)

        return ObstructionSample(fraction=self._fraction, deep_blockage=False)

    def reset(self) -> None:
        """Return to the initial open-sky state (new drive)."""
        self._fraction = 0.1
        self._episode_left_s = 0


def mean_obstruction(area: AreaType) -> float:
    """Long-run mean obstruction fraction for an area type."""
    return _MEAN_OBSTRUCTION[area]
