"""Vehicle mobility along a route.

Produces a 1 Hz trace of (time, position, speed, heading) samples for a
drive, respecting per-segment speed limits with smooth acceleration and mild
speed noise.  This is the substrate the 5G-Tracker-like metadata logger reads
and the channel models are conditioned on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.coords import GeoPoint, initial_bearing_deg
from repro.geo.routes import Route
from repro.rng import RngStreams
from repro.units import kmh_to_ms, ms_to_kmh


@dataclass(frozen=True)
class MobilitySample:
    """One 1 Hz sample of vehicle state."""

    time_s: float
    position: GeoPoint
    speed_kmh: float
    heading_deg: float
    route_km: float


@dataclass(frozen=True)
class DriverProfile:
    """How the driver tracks the limit.

    ``limit_adherence`` scales the target speed relative to the limit and
    ``accel_ms2`` bounds acceleration/braking.  Speed noise models traffic.
    """

    limit_adherence: float = 0.97
    accel_ms2: float = 1.5
    speed_noise_kmh: float = 4.0


class VehicleTrace:
    """Simulate a drive over ``route`` and expose the 1 Hz samples.

    ``fast`` (the default) runs the drive against a precomputed
    :class:`repro.core.fastpath.route.RouteTable` — bit-identical samples
    to the legacy per-step route rescan, without recomputing each
    segment's haversine length on every lookup.  ``max_samples`` stops
    the drive once that many samples exist; the produced samples equal
    the first ``max_samples`` of a full drive (the mobility RNG stream
    is private to this trace, so stopping early perturbs nothing else).
    """

    def __init__(
        self,
        route: Route,
        rng: RngStreams | None = None,
        profile: DriverProfile | None = None,
        sample_period_s: float = 1.0,
        fast: bool = True,
        max_samples: int | None = None,
    ):
        if sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.route = route
        self.profile = profile or DriverProfile()
        self.sample_period_s = sample_period_s
        self.max_samples = max_samples
        self._rng = (rng or RngStreams(0)).get(f"geo.mobility.{route.name}")
        self.samples: list[MobilitySample] = []
        if fast:
            self._drive_fast()
        else:
            self._drive()

    @property
    def duration_s(self) -> float:
        return self.samples[-1].time_s if self.samples else 0.0

    @property
    def distance_km(self) -> float:
        return self.samples[-1].route_km if self.samples else 0.0

    def _drive(self) -> None:
        route_len = self.route.length_km
        if route_len <= 0:
            raise ValueError(f"route {self.route.name!r} has zero length")
        t = 0.0
        dist_km = 0.0
        speed_ms = 0.0
        dt = self.sample_period_s
        max_steps = int(1e6)
        for _ in range(max_steps):
            seg = self.route.segment_at_km(min(dist_km, route_len - 1e-9))
            target_ms = kmh_to_ms(
                seg.speed_limit_kmh * self.profile.limit_adherence
                + float(self._rng.normal(0.0, self.profile.speed_noise_kmh))
            )
            target_ms = max(target_ms, kmh_to_ms(15.0))
            # Bounded acceleration toward the target speed.
            delta = np.clip(
                target_ms - speed_ms,
                -self.profile.accel_ms2 * dt,
                self.profile.accel_ms2 * dt,
            )
            speed_ms = max(0.0, speed_ms + float(delta))
            pos = self.route.position_at_km(min(dist_km, route_len))
            heading = initial_bearing_deg(seg.start, seg.end)
            self.samples.append(
                MobilitySample(
                    time_s=t,
                    position=pos,
                    speed_kmh=ms_to_kmh(speed_ms),
                    heading_deg=heading,
                    route_km=dist_km,
                )
            )
            if dist_km >= route_len:
                break
            if (
                self.max_samples is not None
                and len(self.samples) >= self.max_samples
            ):
                break
            dist_km = min(route_len, dist_km + speed_ms * dt / 1000.0)
            t += dt
        else:
            raise RuntimeError(
                f"drive over route {self.route.name!r} did not terminate"
            )

    def _drive_fast(self) -> None:
        """The legacy drive loop against a precomputed route table.

        Per-step arithmetic (speed noise draw, clipped acceleration,
        interpolated position, heading) replays the legacy ``_drive``
        bit-for-bit; only the O(segments)-haversines-per-step route
        rescan is replaced by the table's exact cached-length scan (see
        :class:`repro.geo.route_table.RouteTable`).
        """
        from repro.geo.route_table import RouteTable

        table = RouteTable(self.route)
        route_len = table.length_km
        if route_len <= 0:
            raise ValueError(f"route {self.route.name!r} has zero length")
        t = 0.0
        dist_km = 0.0
        speed_ms = 0.0
        dt = self.sample_period_s
        max_steps = int(1e6)
        for _ in range(max_steps):
            seg_idx = table.segment_index_at_km(
                min(dist_km, route_len - 1e-9)
            )
            target_ms = kmh_to_ms(
                table.limit_list[seg_idx] * self.profile.limit_adherence
                + float(self._rng.normal(0.0, self.profile.speed_noise_kmh))
            )
            target_ms = max(target_ms, kmh_to_ms(15.0))
            # min/max of floats == the legacy loop's np.clip bitwise,
            # without the per-step ufunc dispatch.
            accel = self.profile.accel_ms2 * dt
            delta = min(max(target_ms - speed_ms, -accel), accel)
            speed_ms = max(0.0, speed_ms + delta)
            pos = table.position_at_km(min(dist_km, route_len))
            heading = table.heading_list[seg_idx]
            self.samples.append(
                MobilitySample(
                    time_s=t,
                    position=pos,
                    speed_kmh=ms_to_kmh(speed_ms),
                    heading_deg=heading,
                    route_km=dist_km,
                )
            )
            if dist_km >= route_len:
                break
            if (
                self.max_samples is not None
                and len(self.samples) >= self.max_samples
            ):
                break
            dist_km = min(route_len, dist_km + speed_ms * dt / 1000.0)
            t += dt
        else:
            raise RuntimeError(
                f"drive over route {self.route.name!r} did not terminate"
            )
