"""Drive-route generation.

The paper's campaign mixes city streets, town passes, and long interstate
stretches across five states, with both straight and curved roads.  A
``Route`` is a polyline of :class:`RoadSegment` s, each carrying a speed
limit, so the mobility model can produce realistic speed profiles and the
campaign reaches the paper's area-type mix (~30/34/36 % urban/suburban/rural).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.coords import (
    GeoPoint,
    destination_point,
    haversine_km,
    initial_bearing_deg,
    interpolate,
)
from repro.geo.places import Place, PlaceDatabase
from repro.rng import RngStreams


@dataclass(frozen=True)
class RoadSegment:
    """A straight piece of road between two nearby points."""

    start: GeoPoint
    end: GeoPoint
    speed_limit_kmh: float

    @property
    def length_km(self) -> float:
        return haversine_km(self.start, self.end)


@dataclass
class Route:
    """An ordered list of road segments forming one drive."""

    name: str
    segments: list[RoadSegment] = field(default_factory=list)

    @property
    def length_km(self) -> float:
        return sum(seg.length_km for seg in self.segments)

    def position_at_km(self, dist_km: float) -> GeoPoint:
        """Point reached after driving ``dist_km`` from the route start."""
        if dist_km < 0:
            raise ValueError(f"distance must be non-negative, got {dist_km}")
        remaining = dist_km
        for seg in self.segments:
            if remaining <= seg.length_km:
                frac = 0.0 if seg.length_km == 0 else remaining / seg.length_km
                return interpolate(seg.start, seg.end, frac)
            remaining -= seg.length_km
        if not self.segments:
            raise ValueError("route has no segments")
        return self.segments[-1].end

    def segment_at_km(self, dist_km: float) -> RoadSegment:
        """The segment containing the position ``dist_km`` into the route."""
        remaining = dist_km
        for seg in self.segments:
            if remaining <= seg.length_km:
                return seg
            remaining -= seg.length_km
        return self.segments[-1]


class RouteGenerator:
    """Builds campaign routes over the synthetic place database."""

    #: Speed limits by road character (km/h).  The paper caps driving at
    #: 100 km/h, so the interstate limit matches that cap.
    CITY_LIMIT_KMH = 50.0
    TOWN_LIMIT_KMH = 70.0
    INTERSTATE_LIMIT_KMH = 100.0

    def __init__(self, places: PlaceDatabase, rng: RngStreams | None = None):
        self.places = places
        self.rng = rng or RngStreams(0)

    def interstate_drive(self, name: str, origin: Place, dest: Place) -> Route:
        """A long drive between two metros, passing near towns en route.

        Emits: an urban loop near the origin, the interstate with gentle
        curves, a pass through the destination's outskirts, and an urban
        loop at the destination.  This ordering yields the urban/suburban/
        rural mix the paper reports.
        """
        gen = self.rng.get(f"geo.route.{name}")
        route = Route(name=name)
        route.segments.extend(self._city_loop(origin.location, gen))
        route.segments.extend(
            self._highway(origin.location, dest.location, gen)
        )
        route.segments.extend(self._city_loop(dest.location, gen))
        return route

    def ring_road(
        self,
        name: str,
        around: Place,
        ring_km: float = 25.0,
        segments: int = 120,
    ) -> Route:
        """A beltway-style loop at ``ring_km`` from a place's center.

        Rings sit in the suburban band of a metro (outside the urban core,
        inside the suburban threshold), which is how the campaign reaches
        the paper's one-third suburban share.
        """
        if ring_km <= 0 or segments < 3:
            raise ValueError("ring needs a positive radius and >= 3 segments")
        gen = self.rng.get(f"geo.route.{name}")
        route = Route(name=name)
        points = []
        for i in range(segments + 1):
            angle = 360.0 * i / segments
            radius = ring_km + float(gen.uniform(-0.3, 0.3))
            points.append(
                destination_point(around.location, angle, max(radius, 1.0))
            )
        for a, b in zip(points, points[1:], strict=False):
            route.segments.append(RoadSegment(a, b, self.TOWN_LIMIT_KMH))
        return route

    def local_loop(self, name: str, around: Place, radius_km: float = 15.0) -> Route:
        """A city + suburb loop around a single place (urban-heavy drive)."""
        gen = self.rng.get(f"geo.route.{name}")
        route = Route(name=name)
        cursor = around.location
        bearing = float(gen.uniform(0, 360))
        for _ in range(30):
            step = float(gen.uniform(0.5, 2.0))
            nxt = destination_point(cursor, bearing, step)
            limit = (
                self.CITY_LIMIT_KMH
                if haversine_km(nxt, around.location) < radius_km * 0.4
                else self.TOWN_LIMIT_KMH
            )
            route.segments.append(RoadSegment(cursor, nxt, limit))
            cursor = nxt
            bearing = (bearing + float(gen.uniform(-60, 60))) % 360.0
        return route

    def _city_loop(self, center: GeoPoint, gen: np.random.Generator) -> list[RoadSegment]:
        """Short urban loop: slow segments with frequent turns."""
        segments: list[RoadSegment] = []
        cursor = center
        bearing = float(gen.uniform(0, 360))
        for _ in range(6):
            step = float(gen.uniform(0.4, 1.2))
            nxt = destination_point(cursor, bearing, step)
            segments.append(RoadSegment(cursor, nxt, self.CITY_LIMIT_KMH))
            cursor = nxt
            bearing = (bearing + float(gen.uniform(-90, 90))) % 360.0
        return segments

    def _highway(
        self, origin: GeoPoint, dest: GeoPoint, gen: np.random.Generator
    ) -> list[RoadSegment]:
        """Interstate polyline with gentle heading noise (curved roads)."""
        segments: list[RoadSegment] = []
        cursor = origin
        guard = 0
        while haversine_km(cursor, dest) > 8.0 and guard < 500:
            guard += 1
            to_dest = initial_bearing_deg(cursor, dest)
            bearing = to_dest + float(gen.uniform(-12, 12))
            step = min(float(gen.uniform(3.0, 9.0)), haversine_km(cursor, dest))
            nxt = destination_point(cursor, bearing, step)
            # Occasional town pass: drop to the town limit for one segment.
            limit = (
                self.TOWN_LIMIT_KMH
                if gen.random() < 0.18
                else self.INTERSTATE_LIMIT_KMH
            )
            segments.append(RoadSegment(cursor, nxt, limit))
            cursor = nxt
        segments.append(
            RoadSegment(cursor, dest, self.TOWN_LIMIT_KMH)
        )
        return segments
