"""Geography substrate: coordinates, places, routes, mobility, terrain.

Replaces the paper's physical drive campaign (3,800 km across five states)
with a synthetic but structurally faithful one.
"""

from repro.geo.classify import AreaClassifier, AreaType, ClassifierThresholds
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.mobility import DriverProfile, MobilitySample, VehicleTrace
from repro.geo.places import Place, PlaceDatabase, STATE_NAMES
from repro.geo.routes import Route, RouteGenerator, RoadSegment
from repro.geo.terrain import ObstructionProcess, ObstructionSample

__all__ = [
    "AreaClassifier",
    "AreaType",
    "ClassifierThresholds",
    "DriverProfile",
    "GeoPoint",
    "MobilitySample",
    "ObstructionProcess",
    "ObstructionSample",
    "Place",
    "PlaceDatabase",
    "RoadSegment",
    "Route",
    "RouteGenerator",
    "STATE_NAMES",
    "VehicleTrace",
    "haversine_km",
]
