"""Area-type classification: urban / suburban / rural.

Implements the paper's method (Section 5.1): compute the distance from a data
point to the nearest city or town and apply predetermined thresholds.  The
effective radius of a place scales with its population, so a metro's urban
core extends further than a small town's.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.geo.coords import GeoPoint
from repro.geo.places import Place, PlaceDatabase


class AreaType(enum.Enum):
    """The paper's three area categories."""

    URBAN = "urban"
    SUBURBAN = "suburban"
    RURAL = "rural"


@dataclass(frozen=True)
class ClassifierThresholds:
    """Distance thresholds (km), scaled by place size.

    ``urban_km`` / ``suburban_km`` are the base radii for a reference
    population of 100k; the radius grows with the cube root of population,
    which tracks how city footprints scale with population empirically.
    """

    urban_km: float = 6.0
    suburban_km: float = 18.0
    reference_population: int = 100_000

    def scale(self, population: int) -> float:
        """Footprint scale factor for a place of the given population."""
        ratio = max(population, 500) / self.reference_population
        return ratio ** (1.0 / 3.0)


class AreaClassifier:
    """Classify GPS points into urban/suburban/rural against a place DB."""

    def __init__(
        self,
        places: PlaceDatabase,
        thresholds: ClassifierThresholds | None = None,
    ):
        self.places = places
        self.thresholds = thresholds or ClassifierThresholds()

    def classify(self, point: GeoPoint) -> AreaType:
        """Area type of ``point`` per the paper's nearest-place rule."""
        place, dist_km = self.places.nearest_distance_km(point)
        return self.classify_distance(place, dist_km)

    def classify_many(self, points: list[GeoPoint]) -> list[AreaType]:
        """Batched :meth:`classify` (identical result per point).

        One vectorized nearest-place query instead of one per point;
        the thresholding stays scalar.
        """
        if not points:
            return []
        idx, dist = self.places.nearest_many(
            [p.lat_deg for p in points], [p.lon_deg for p in points]
        )
        return [
            self.classify_distance(self.places.places[int(i)], float(d))
            for i, d in zip(idx, dist)
        ]

    def classify_distance(self, place: Place, dist_km: float) -> AreaType:
        """Threshold an already-computed nearest-place distance."""
        scale = self.thresholds.scale(place.population)
        if dist_km <= self.thresholds.urban_km * scale and place.is_city:
            return AreaType.URBAN
        if dist_km <= self.thresholds.suburban_km * scale:
            return AreaType.SUBURBAN
        return AreaType.RURAL

    def obstruction_fraction(self, area: AreaType, rng_value: float) -> float:
        """Fraction of sky obstructed, used by the LEO visibility model.

        Urban areas have tall buildings (the paper: "we found a lot of
        obstructions only in urban areas"); suburban towns and rural areas
        have similar, low obstruction.  ``rng_value`` in [0, 1) picks a point
        within the area's obstruction range.
        """
        if not 0.0 <= rng_value < 1.0:
            raise ValueError(f"rng_value must be in [0, 1), got {rng_value}")
        low, high = _OBSTRUCTION_RANGE[area]
        # Skew toward the low end: even urban driving is mostly on open
        # streets, with occasional canyons.
        return low + (high - low) * rng_value**2


#: (min, max) fraction of the dish field of view blocked per area type.
_OBSTRUCTION_RANGE: dict[AreaType, tuple[float, float]] = {
    AreaType.URBAN: (0.10, 0.75),
    AreaType.SUBURBAN: (0.02, 0.30),
    AreaType.RURAL: (0.00, 0.22),
}


def obstruction_elevation_mask_deg(obstruction_fraction: float) -> float:
    """Convert an obstruction fraction into a minimum usable elevation angle.

    A fully open sky needs only the dish's own minimum elevation (handled by
    the dish model); obstruction raises the effective horizon.  The mapping
    is monotone and saturates below zenith so some sky always remains.
    """
    if not 0.0 <= obstruction_fraction <= 1.0:
        raise ValueError(
            f"obstruction_fraction must be in [0, 1], got {obstruction_fraction}"
        )
    # 0 -> 0 deg extra mask, 1 -> 70 deg mask (only near-zenith visible).
    return 70.0 * math.sin(obstruction_fraction * math.pi / 2.0) ** 1.5
