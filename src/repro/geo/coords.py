"""Geodetic coordinates and distance math on a spherical Earth.

The paper records a GPS (latitude, longitude) for every data point and uses
point-to-place distances to classify area types (Section 5.1).  A spherical
Earth is accurate to ~0.5 % for the distances involved, which is far below
the classification thresholds, so we do not carry a full ellipsoid model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import EARTH_RADIUS_KM


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees)."""

    lat_deg: float
    lon_deg: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat_deg}")
        if not -180.0 <= self.lon_deg <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon_deg}")


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in km."""
    lat1, lon1 = math.radians(a.lat_deg), math.radians(a.lon_deg)
    lat2, lon2 = math.radians(b.lat_deg), math.radians(b.lon_deg)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def destination_point(origin: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """Point reached from ``origin`` after ``distance_km`` along ``bearing_deg``.

    Bearing is clockwise from true north.  Used by the route generator to lay
    out road segments.
    """
    ang = distance_km / EARTH_RADIUS_KM
    brng = math.radians(bearing_deg)
    lat1 = math.radians(origin.lat_deg)
    lon1 = math.radians(origin.lon_deg)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(ang)
        + math.cos(lat1) * math.sin(ang) * math.cos(brng)
    )
    lon2 = lon1 + math.atan2(
        math.sin(brng) * math.sin(ang) * math.cos(lat1),
        math.cos(ang) - math.sin(lat1) * math.sin(lat2),
    )
    # Normalize longitude into [-180, 180).
    lon2_deg = (math.degrees(lon2) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat2), lon2_deg)


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` (degrees from north)."""
    lat1, lon1 = math.radians(a.lat_deg), math.radians(a.lon_deg)
    lat2, lon2 = math.radians(b.lat_deg), math.radians(b.lon_deg)
    dlon = lon2 - lon1
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
    return (math.degrees(math.atan2(x, y)) + 360.0) % 360.0


def geodetic_to_ecef_km(point: GeoPoint, altitude_km: float = 0.0) -> np.ndarray:
    """Convert a geodetic point to Earth-centered Earth-fixed coordinates (km).

    Spherical model; the LEO geometry code operates entirely in ECEF.
    """
    r = EARTH_RADIUS_KM + altitude_km
    lat = math.radians(point.lat_deg)
    lon = math.radians(point.lon_deg)
    return np.array(
        [
            r * math.cos(lat) * math.cos(lon),
            r * math.cos(lat) * math.sin(lon),
            r * math.sin(lat),
        ]
    )


def interpolate(a: GeoPoint, b: GeoPoint, fraction: float) -> GeoPoint:
    """Linear interpolation between two nearby points.

    Valid for the short (<= a few km) road segments the route generator
    emits; not a great-circle slerp.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    # Interpolate longitude on the shorter arc to be safe near +-180.
    dlon = b.lon_deg - a.lon_deg
    if dlon > 180.0:
        dlon -= 360.0
    elif dlon < -180.0:
        dlon += 360.0
    lon = a.lon_deg + fraction * dlon
    lon = (lon + 540.0) % 360.0 - 180.0
    return GeoPoint(
        a.lat_deg + fraction * (b.lat_deg - a.lat_deg),
        lon,
    )
