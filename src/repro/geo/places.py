"""Synthetic place database standing in for the paper's city/town list.

Section 5.1: "we compile a list of all cities and towns we passed through,
calculate the distances from each data point to these locations, and select
the smallest distance", then threshold that distance into urban / suburban /
rural.  We reproduce the same pipeline over a synthetic five-state place
database whose layout (a few metros, rings of towns, long empty interstate
stretches) mirrors a Midwest-to-coast US drive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.coords import GeoPoint, destination_point
from repro.rng import RngStreams


@dataclass(frozen=True)
class Place:
    """A city or town, with enough metadata to drive the coverage models."""

    name: str
    location: GeoPoint
    state: str
    population: int

    @property
    def is_city(self) -> bool:
        """Cities (>=100k population) anchor urban cores; towns do not."""
        return self.population >= 100_000


#: The five synthetic states the campaign drives across, west to east.
STATE_NAMES = ("Minnesota", "Wisconsin", "Illinois", "Indiana", "Michigan")

#: Anchor coordinates for each synthetic state's metro center.  Loosely
#: based on the real I-94 corridor the authors plausibly drove, but the
#: analysis never depends on real-world geography.
_STATE_ANCHORS = {
    "Minnesota": GeoPoint(44.97, -93.26),
    "Wisconsin": GeoPoint(43.04, -89.40),
    "Illinois": GeoPoint(41.88, -87.63),
    "Indiana": GeoPoint(41.60, -86.72),
    "Michigan": GeoPoint(42.28, -83.74),
}


class PlaceDatabase:
    """All cities and towns in the synthetic five-state region."""

    def __init__(self, places: list[Place]):
        if not places:
            raise ValueError("place database must not be empty")
        self.places = list(places)
        self._locations = np.array(
            [[p.location.lat_deg, p.location.lon_deg] for p in self.places]
        )

    @classmethod
    def synthetic(cls, rng: RngStreams | None = None, towns_per_state: int = 14) -> "PlaceDatabase":
        """Build the default synthetic database.

        Each state gets one metro city, one secondary city, and a scatter of
        towns.  Town placement is seeded so the whole campaign is
        reproducible.
        """
        rng = rng or RngStreams(0)
        gen = rng.get("geo.places")
        places: list[Place] = []
        for state in STATE_NAMES:
            anchor = _STATE_ANCHORS[state]
            places.append(
                Place(f"{state} Metro", anchor, state, int(gen.integers(400_000, 2_000_000)))
            )
            secondary = destination_point(
                anchor, float(gen.uniform(0, 360)), float(gen.uniform(60, 120))
            )
            places.append(
                Place(
                    f"{state} City",
                    secondary,
                    state,
                    int(gen.integers(100_000, 350_000)),
                )
            )
            for i in range(towns_per_state):
                loc = destination_point(
                    anchor, float(gen.uniform(0, 360)), float(gen.uniform(15, 180))
                )
                places.append(
                    Place(
                        f"{state} Town {i}",
                        loc,
                        state,
                        int(gen.integers(1_000, 60_000)),
                    )
                )
        return cls(places)

    def nearest_distance_km(self, point: GeoPoint) -> tuple[Place, float]:
        """Nearest place and its distance — the paper's classification input.

        Vectorized haversine over the whole database; called once per data
        point for thousands of points.
        """
        lat1 = np.radians(point.lat_deg)
        lon1 = np.radians(point.lon_deg)
        lat2 = np.radians(self._locations[:, 0])
        lon2 = np.radians(self._locations[:, 1])
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = (
            np.sin(dlat / 2.0) ** 2
            + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
        )
        dist = 2.0 * 6371.0 * np.arcsin(np.minimum(1.0, np.sqrt(h)))
        idx = int(np.argmin(dist))
        return self.places[idx], float(dist[idx])

    def nearest_many(
        self, lat_deg: np.ndarray, lon_deg: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`nearest_distance_km` over many points.

        Row ``i`` holds exactly the (place index, distance) the scalar
        method returns for point ``i``: every operation is an
        elementwise ufunc or a per-row argmin, both of which are
        independent of how many rows are evaluated at once.
        """
        lat1 = np.radians(np.asarray(lat_deg, dtype=float))[:, None]
        lon1 = np.radians(np.asarray(lon_deg, dtype=float))[:, None]
        lat2 = np.radians(self._locations[:, 0])[None, :]
        lon2 = np.radians(self._locations[:, 1])[None, :]
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = (
            np.sin(dlat / 2.0) ** 2
            + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
        )
        dist = 2.0 * 6371.0 * np.arcsin(np.minimum(1.0, np.sqrt(h)))
        idx = np.argmin(dist, axis=1)
        return idx, dist[np.arange(idx.size), idx]

    def cities(self) -> list[Place]:
        """All places large enough to have an urban core."""
        return [p for p in self.places if p.is_city]

    def __len__(self) -> int:
        return len(self.places)
