"""FP-exact precomputed route lookup.

``Route.position_at_km`` / ``segment_at_km`` rescan the segment list on
every call, recomputing each segment's haversine length as they go —
O(segments) trig per mobility step, which makes trace generation the
single largest cost in a campaign.  :class:`RouteTable` computes each
segment's length (with the same :func:`repro.geo.coords.haversine_km`)
exactly once and replays the legacy scan over the cached lengths.

Bit-exactness argument: the legacy scan evaluates the chain
``r_0 = d; r_{i+1} = fl(r_i - L_i)`` and stops at the first ``i`` with
``r_i <= L_i``, where each ``L_i`` is recomputed by ``haversine_km`` on
every call.  ``haversine_km`` is a pure function of the endpoint
coordinates, so caching ``L_i`` once per segment and re-running the same
scalar subtraction chain yields bit-identical indices, remainders, and
interpolation fractions.  The scan stays a scalar Python loop on
purpose: per-call numpy dispatch overhead exceeds the cost of scanning
the handful of segments in a route, and scalar float subtraction *is*
the legacy arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.geo.coords import GeoPoint, haversine_km, initial_bearing_deg
from repro.geo.routes import RoadSegment, Route


class RouteTable:
    """Precomputed per-segment arrays for one (immutable snapshot of a) route.

    Build the table after the route is fully assembled; it snapshots the
    segment list, so later mutations of ``route.segments`` are not seen.
    """

    def __init__(self, route: Route):
        segments = list(route.segments)
        self.route = route
        self.segments = segments
        # Python lists for the per-step scalar scan ...
        self.length_list = [haversine_km(seg.start, seg.end) for seg in segments]
        self.limit_list = [seg.speed_limit_kmh for seg in segments]
        self.heading_list = [
            initial_bearing_deg(seg.start, seg.end) for seg in segments
        ]
        self._start = [(seg.start.lat_deg, seg.start.lon_deg) for seg in segments]
        self._end = [(seg.end.lat_deg, seg.end.lon_deg) for seg in segments]
        # ... and numpy views for batched consumers (timelines, benches).
        self.lengths = np.array(self.length_list)
        self.limits = np.array(self.limit_list)
        self.headings = np.array(self.heading_list)
        # Legacy ``Route.length_km`` is ``sum(generator)``: a sequential
        # left-to-right float accumulation starting from int 0.
        total = 0
        for length in self.length_list:
            total = total + length
        self.length_km = float(total)

    # -- lookups ---------------------------------------------------------

    def locate(self, dist_km: float) -> tuple[int, float]:
        """(segment index, remaining km) exactly as the legacy scan.

        Returns ``(-1, 0.0)`` when the distance runs past the last
        segment (the legacy loop falls through to the route end).
        """
        if dist_km < 0:
            raise ValueError(f"distance must be non-negative, got {dist_km}")
        remaining = dist_km
        for idx, length in enumerate(self.length_list):
            if remaining <= length:
                return idx, remaining
            remaining -= length
        return -1, 0.0

    def segment_index_at_km(self, dist_km: float) -> int:
        """Index equivalent of ``Route.segment_at_km`` (last on overrun)."""
        idx, _ = self.locate(dist_km)
        return len(self.segments) - 1 if idx < 0 else idx

    def segment_at_km(self, dist_km: float) -> RoadSegment:
        return self.segments[self.segment_index_at_km(dist_km)]

    def position_at_km(self, dist_km: float) -> GeoPoint:
        """Bit-identical replay of ``Route.position_at_km``."""
        idx, remaining = self.locate(dist_km)
        if idx < 0:
            if not self.segments:
                raise ValueError("route has no segments")
            return self.segments[-1].end
        length = self.length_list[idx]
        frac = 0.0 if length == 0 else remaining / length
        return self._interpolate(idx, frac)

    def _interpolate(self, idx: int, fraction: float) -> GeoPoint:
        """Bit-identical replay of :func:`repro.geo.coords.interpolate`."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        a_lat, a_lon = self._start[idx]
        b_lat, b_lon = self._end[idx]
        dlon = b_lon - a_lon
        if dlon > 180.0:
            dlon -= 360.0
        elif dlon < -180.0:
            dlon += 360.0
        lon = a_lon + fraction * dlon
        lon = (lon + 540.0) % 360.0 - 180.0
        return GeoPoint(a_lat + fraction * (b_lat - a_lat), lon)
