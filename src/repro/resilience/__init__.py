"""repro.resilience: self-healing campaign execution.

The execution layer's immune system, built from four pieces that the
campaign (:mod:`repro.core.campaign`) and the parallel pool wire
together:

* a **failure taxonomy** (:mod:`~repro.resilience.taxonomy`) that
  classifies failures as transient (retry) or permanent (report), plus
  the typed errors the rest of the system raises;
* a **retry policy** (:mod:`~repro.resilience.policy`) with bounded,
  deterministically-jittered exponential backoff — retries re-run a
  pure function, so healed runs stay byte-identical to untouched ones;
* **artifact integrity** (:mod:`~repro.resilience.integrity`) — content
  digests embedded in every persisted JSON artifact, and
  quarantine-and-salvage for corrupt checkpoints;
* **graceful shutdown** (:mod:`~repro.resilience.signals`) and a
  **supervised worker pool** (:mod:`~repro.resilience.pool`) with
  per-drive deadlines, heartbeat liveness, and kill-and-requeue.

See the "Resilience" section of ``docs/FAULTS.md`` for the model.
"""

from repro.resilience.integrity import (
    DIGEST_KEY,
    embed_digest,
    payload_digest,
    quarantine,
    salvage_drives,
    verify_digest,
)
from repro.resilience.policy import (
    ATTEMPT_BUCKETS,
    ResilienceConfig,
    ResilienceReport,
    RetryPolicy,
)
from repro.resilience.signals import ShutdownFlag, graceful_shutdown
from repro.resilience.taxonomy import (
    ArtifactCorruptError,
    CampaignAborted,
    CheckpointCorruptError,
    DriveTimeout,
    FailureClass,
    TRANSIENT_ERROR_TYPES,
    TransientDriveError,
    WorkerDied,
    classify_exception,
    classify_failure,
)

__all__ = [
    "ATTEMPT_BUCKETS",
    "ArtifactCorruptError",
    "CampaignAborted",
    "CheckpointCorruptError",
    "DIGEST_KEY",
    "DriveTimeout",
    "FailureClass",
    "ResilienceConfig",
    "ResilienceReport",
    "RetryPolicy",
    "ShutdownFlag",
    "TRANSIENT_ERROR_TYPES",
    "TransientDriveError",
    "WorkerDied",
    "classify_exception",
    "classify_failure",
    "embed_digest",
    "graceful_shutdown",
    "payload_digest",
    "quarantine",
    "salvage_drives",
    "verify_digest",
]
