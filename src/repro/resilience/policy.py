"""Retry policy and resilience configuration.

The execution layer retries drives, not tests: a drive is a pure
function of ``(campaign config, drive id)`` — its RNG family is
``rng.fork(drive_id)`` and its test ids come from
``drive_id * TEST_ID_STRIDE`` — so re-running a failed drive reproduces
the exact payload an untouched run would have produced.  Retrying is
therefore *free* with respect to determinism: the only stochastic part
of a retry is the backoff jitter, which draws from its own named
:mod:`repro.rng` substream (``resilience.retry.<drive>``) and never
touches simulation state.

Everything here is execution-only configuration: like
:attr:`~repro.core.campaign.CampaignConfig.workers`, the
:class:`ResilienceConfig` is excluded from the config fingerprint
because any retry/watchdog setting produces byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Bucket bounds for the per-drive attempt histogram
#: (``resilience.drive_attempts``): most drives take 1 attempt, a
#: retried one 2-3; anything beyond 8 is a pathology worth seeing.
ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic, seeded jitter."""

    #: Total attempts per drive (1 = no retries).
    max_attempts: int = 3
    #: Delay before the first retry.
    base_delay_s: float = 0.25
    #: Multiplier applied per further retry.
    backoff: float = 2.0
    #: Ceiling on any single delay.
    max_delay_s: float = 30.0
    #: Jitter fraction: each delay is scaled by ``1 ± jitter * u`` with
    #: ``u ~ U(-1, 1)`` drawn from a seeded substream (0 disables).
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    @property
    def max_retries(self) -> int:
        return self.max_attempts - 1

    def delay_s(
        self, retry_index: int, rng: np.random.Generator | None = None
    ) -> float:
        """Backoff before retry ``retry_index`` (1-based).

        ``rng`` is a ``numpy.random.Generator`` (typically
        ``RngStreams.get("resilience.retry.<drive>")``); passing the
        same seeded stream yields the same delay sequence, so even the
        *pacing* of a retried run is reproducible.
        """
        if retry_index < 1:
            raise ValueError(f"retry_index must be >= 1, got {retry_index}")
        raw = min(
            self.base_delay_s * self.backoff ** (retry_index - 1),
            self.max_delay_s,
        )
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(0.0, raw)


@dataclass(frozen=True)
class ResilienceConfig:
    """Execution-resilience knobs for a campaign.

    Attach one to :attr:`repro.core.campaign.CampaignConfig.resilience`
    to enable per-drive retries (serial and parallel) and — for
    parallel runs — the worker watchdog (per-drive deadlines, heartbeat
    liveness, kill-and-requeue).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Watchdog deadline per drive attempt (seconds); ``None`` disables
    #: hang detection (parallel runs only — a serial run cannot preempt
    #: its own thread).
    drive_timeout_s: float | None = None
    #: How often workers bump their heartbeat.
    heartbeat_interval_s: float = 0.5
    #: A worker whose heartbeat is older than this while a drive is
    #: in flight is considered wedged and killed.
    heartbeat_timeout_s: float = 60.0
    #: Supervision-loop tick (queue wait / watchdog scan period).
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(f"retry must be a RetryPolicy, got {type(self.retry)}")
        if self.drive_timeout_s is not None and self.drive_timeout_s <= 0:
            raise ValueError(
                f"drive_timeout_s must be positive or None, got {self.drive_timeout_s}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be positive, got {self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s, got "
                f"{self.heartbeat_timeout_s} <= {self.heartbeat_interval_s}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )


@dataclass
class ResilienceReport:
    """What the self-healing machinery actually did during one run.

    Rolled into :attr:`repro.core.campaign.CampaignReport.resilience`;
    every field is zero/None on a run that needed no healing, so clean
    serial and parallel reports stay byte-identical.
    """

    retries: int = 0
    watchdog_kills: int = 0
    worker_deaths: int = 0
    workers_replaced: int = 0
    integrity_failures: int = 0
    drives_salvaged: int = 0
    checkpoint_quarantined: str | None = None
    checkpoint_error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "retries": self.retries,
            "watchdog_kills": self.watchdog_kills,
            "worker_deaths": self.worker_deaths,
            "workers_replaced": self.workers_replaced,
            "integrity_failures": self.integrity_failures,
            "drives_salvaged": self.drives_salvaged,
            "checkpoint_quarantined": self.checkpoint_quarantined,
            "checkpoint_error": self.checkpoint_error,
        }
