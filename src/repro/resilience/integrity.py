"""Artifact integrity: content digests, quarantine, and salvage.

Every JSON artifact the campaign persists — checkpoint, dataset, run
manifest — embeds a SHA-256 digest of its own canonical body
(``sort_keys`` JSON with the ``"digest"`` key excluded).  Readers
recompute and compare, so a truncated write, a bad disk, or a hand-edit
is detected at load time instead of surfacing later as a subtly wrong
figure.  Digests are pure functions of content, so embedding them keeps
the byte-identical guarantees (serial vs. parallel, resumed vs.
uninterrupted) intact.

Checkpoints additionally carry a digest *per drive*, which is what
makes salvage possible: when the whole file fails validation, each
drive entry that still parses and matches its own digest is provably
intact and can seed a resume — only the damaged drives are re-simulated.
:func:`salvage_drives` recovers such entries even from truncated JSON by
incrementally decoding the ``"drives"`` object entry by entry.
"""

from __future__ import annotations

import hashlib
import json
import os

DIGEST_KEY = "digest"

_WHITESPACE = " \t\r\n"


def payload_digest(payload: dict) -> str:
    """SHA-256 of the canonical JSON body (``digest`` key excluded)."""
    body = {k: v for k, v in payload.items() if k != DIGEST_KEY}
    blob = json.dumps(body, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def embed_digest(payload: dict) -> dict:
    """Stamp ``payload["digest"]`` in place; returns the payload."""
    payload[DIGEST_KEY] = payload_digest(payload)
    return payload


def verify_digest(payload: dict) -> bool:
    """True when the embedded digest matches the body (or is absent)."""
    digest = payload.get(DIGEST_KEY)
    return digest is None or digest == payload_digest(payload)


def quarantine(path: str | os.PathLike) -> str:
    """Move a corrupt artifact aside to ``<path>.corrupt``.

    The original name is freed so the run can write a fresh artifact,
    while the damaged bytes are preserved for salvage and post-mortem.
    When an artifact corrupts repeatedly, earlier evidence is never
    clobbered: occupied names step to ``<path>.corrupt.1``,
    ``<path>.corrupt.2``, … (deterministic: lowest free suffix wins).
    The rename is made durable with a directory fsync, like every other
    artifact mutation (see :mod:`repro.store.commit`).
    """
    from repro.store.commit import fsync_dir

    base = f"{os.fspath(path)}.corrupt"
    target = base
    suffix = 0
    while os.path.exists(target):
        suffix += 1
        target = f"{base}.{suffix}"
    os.replace(path, target)
    fsync_dir(os.path.dirname(os.path.abspath(target)))
    return target


def salvage_drives(path: str | os.PathLike, fingerprint: str) -> dict[int, dict]:
    """Recover digest-valid drive entries from a corrupt checkpoint.

    Returns ``{drive_id: raw_drive_dict}`` (JSON-level, ``digest`` key
    stripped) for every drive whose entry parses and matches its own
    embedded digest.  Works on truncated files by incrementally decoding
    the ``"drives"`` object until the first incomplete entry.  Returns
    ``{}`` when the file's fingerprint cannot be read or belongs to a
    different campaign config — salvaging across configs would corrupt
    the dataset.
    """
    with open(path) as handle:
        text = handle.read()

    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        found_fp, raw_drives = _scan_truncated(text)
    else:
        if not isinstance(payload, dict):
            return {}
        found_fp = payload.get("fingerprint")
        raw_drives = payload.get("drives")
        if not isinstance(raw_drives, dict):
            raw_drives = {}

    if found_fp != fingerprint:
        return {}

    out: dict[int, dict] = {}
    for key, drive in raw_drives.items():
        if not isinstance(drive, dict) or "records" not in drive:
            continue
        if drive.get(DIGEST_KEY) is None or not verify_digest(drive):
            continue  # tampered or partially written: re-simulate it
        try:
            drive_id = int(key)
        except (TypeError, ValueError):
            continue
        out[drive_id] = {k: v for k, v in drive.items() if k != DIGEST_KEY}
    return out


def _scan_truncated(text: str) -> tuple[str | None, dict[str, dict]]:
    """Best-effort parse of a truncated checkpoint.

    Extracts the ``fingerprint`` value and every complete entry of the
    ``"drives"`` object via incremental ``raw_decode``; stops at the
    first entry the truncation cut through.
    """
    decoder = json.JSONDecoder()

    def value_start(key: str) -> int:
        marker = f'"{key}"'
        idx = text.find(marker)
        if idx < 0:
            return -1
        pos = idx + len(marker)
        while pos < len(text) and text[pos] in _WHITESPACE:
            pos += 1
        if pos >= len(text) or text[pos] != ":":
            return -1
        pos += 1
        while pos < len(text) and text[pos] in _WHITESPACE:
            pos += 1
        return pos

    fingerprint: str | None = None
    pos = value_start("fingerprint")
    if pos >= 0:
        try:
            value, _ = decoder.raw_decode(text, pos)
        except json.JSONDecodeError:
            value = None
        if isinstance(value, str):
            fingerprint = value

    drives: dict[str, dict] = {}
    pos = value_start("drives")
    if pos < 0 or pos >= len(text) or text[pos] != "{":
        return fingerprint, drives
    pos += 1
    while True:
        while pos < len(text) and text[pos] in _WHITESPACE + ",":
            pos += 1
        if pos >= len(text) or text[pos] == "}":
            break
        try:
            key, pos = decoder.raw_decode(text, pos)
            while pos < len(text) and text[pos] in _WHITESPACE:
                pos += 1
            if pos >= len(text) or text[pos] != ":":
                break
            pos += 1
            while pos < len(text) and text[pos] in _WHITESPACE:
                pos += 1  # raw_decode rejects leading whitespace
            value, pos = decoder.raw_decode(text, pos)
        except json.JSONDecodeError:
            break  # the truncation point: everything before it is kept
        if isinstance(key, str) and isinstance(value, dict):
            drives[key] = value
    return fingerprint, drives
