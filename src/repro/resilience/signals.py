"""Graceful shutdown: turn SIGTERM/SIGINT into a clean checkpoint.

A field campaign gets interrupted — the van stops, the battery dies, the
operator hits Ctrl+C.  The difference between losing a drive and losing
nothing is *when* the process dies: the campaign loop checkpoints after
every completed drive, so the right response to a termination signal is
"finish the drive in flight, write the checkpoint, then exit" rather
than dying mid-write.  :func:`graceful_shutdown` installs exactly that:
the first SIGTERM/SIGINT sets a flag the campaign polls at its next
drive boundary (raising :class:`~repro.resilience.taxonomy.CampaignAborted`
after the checkpoint is on disk); a second signal falls through to an
immediate ``KeyboardInterrupt`` for operators who mean it.

Handlers can only be installed from the main thread; anywhere else the
context manager degrades to a no-op flag, so library code can use it
unconditionally.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator


class ShutdownFlag:
    """Cooperative shutdown state shared with the campaign loop."""

    __slots__ = ("requested", "signum")

    def __init__(self) -> None:
        self.requested = False
        self.signum: int | None = None

    def __bool__(self) -> bool:
        return self.requested


@contextmanager
def graceful_shutdown(
    signums: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> Iterator[ShutdownFlag]:
    """Install first-signal-is-graceful handlers for the duration.

    Yields a :class:`ShutdownFlag`; the caller polls ``flag.requested``
    at safe points.  Previous handlers are restored on exit.
    """
    flag = ShutdownFlag()
    if threading.current_thread() is not threading.main_thread():
        # Signal handlers are a main-thread privilege; elsewhere the
        # flag simply never trips and default handling applies.
        yield flag
        return

    def handler(signum, frame):
        if flag.requested:
            # Second signal: the operator wants out *now*.
            raise KeyboardInterrupt(f"second signal {signum}: aborting immediately")
        flag.requested = True
        flag.signum = signum

    previous: dict[int, object] = {}
    for signum in signums:
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # exotic platforms / blocked signals
            continue
    try:
        yield flag
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                continue
