"""Supervised parallel drive execution: watchdog, retry, kill-and-requeue.

:mod:`repro.core.parallel_campaign` shards drives across a stock
``ProcessPoolExecutor`` — fast, but defenseless: one hung worker stalls
the pool forever and one transient exception permanently costs a drive.
This module is the armored variant the campaign routes through when
:attr:`~repro.core.campaign.CampaignConfig.resilience` is set.  It owns
its worker processes directly so it can do what an executor cannot:

* **per-drive deadlines** — a drive attempt that outlives
  ``drive_timeout_s`` gets its worker killed (SIGKILL; a hung process
  does not honour polite signals) and the drive requeued;
* **heartbeat liveness** — each worker bumps a shared timestamp from a
  daemon thread; a worker that stops beating while a drive is in flight
  is wedged and treated like a hang, and a worker that *dies* (crash,
  OOM kill) mid-drive is detected and its drive requeued;
* **excluded-worker accounting** — a drive is never requeued onto a
  worker that already hung or died running it; replacements are spawned
  when the survivors cannot cover the remaining work;
* **bounded retries** — failures classified transient
  (:func:`~repro.resilience.taxonomy.classify_failure`) are requeued
  under the :class:`~repro.resilience.policy.RetryPolicy`'s budget with
  deterministic seeded backoff; permanent failures are recorded once.

Determinism is preserved by construction: a drive is a pure function of
``(config, drive_id)``, so a retried or re-homed drive produces the
payload byte-for-byte an untouched run would have, and results are
merged in drive order through the same
:func:`~repro.core.parallel_campaign.merge_drive_results` path as the
plain pool.  Only the *success* attempt's metric snapshot is merged —
abandoned attempts leave no trace in deterministic artifacts, and the
healing itself is reported through ``resilience.*`` metrics (excluded
from the deterministic manifest view) and the campaign report.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue as queue_module
import signal as signal_module
import threading
import time

from repro.obs.recorder import NULL_RECORDER, ObsRecorder
from repro.resilience.policy import ResilienceConfig
from repro.resilience.taxonomy import (
    CampaignAborted,
    FailureClass,
    classify_failure,
)

#: A drive waiting to run: which attempt this is, and the earliest
#: monotonic time it may be dispatched (retry backoff).
_Task = collections.namedtuple("_Task", ["drive_id", "attempt", "eligible_at"])


class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("worker_id", "process", "task_q", "heartbeat", "current", "deadline")

    def __init__(self, worker_id, process, task_q, heartbeat):
        self.worker_id = worker_id
        self.process = process
        self.task_q = task_q
        self.heartbeat = heartbeat
        #: ``(drive_id, attempt)`` in flight, or None when idle.
        self.current: tuple[int, int] | None = None
        #: Monotonic watchdog deadline for the in-flight attempt.
        self.deadline: float | None = None


def _mp_context():
    """Prefer fork where available; otherwise the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


# -- worker side ---------------------------------------------------------


def _worker_main(
    worker_id: int,
    config,
    task_q,
    result_q,
    observe: bool,
    heartbeat,
    heartbeat_interval_s: float,
    store_root=None,
) -> None:
    """Worker loop: rebuild the world, then run drives until sentinel.

    SIGINT is ignored — a Ctrl+C lands on the whole process group, and
    shutdown belongs to the parent (which checkpoints first); a worker
    dying to the signal would masquerade as a crash and trigger a
    spurious requeue.  SIGTERM keeps its default so the parent's
    graceful teardown still works.
    """
    try:
        signal_module.signal(signal_module.SIGINT, signal_module.SIG_IGN)
    except (ValueError, OSError):
        pass
    from repro.core.campaign import Campaign, DriveFailure

    campaign = Campaign(config, recorder=NULL_RECORDER)
    if store_root is not None:
        # Stream drive records to write-ahead shards (see
        # repro.core.parallel_campaign._init_worker: a durability
        # optimization the committing parent independently verifies).
        from repro.store import ShardStore

        campaign._shard_store = ShardStore(store_root, config.fingerprint())
    routes = campaign._routes()

    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(heartbeat_interval_s)

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            drive_id, attempt = task
            route = routes[drive_id]
            result_q.put(
                {
                    "kind": "start",
                    "worker": worker_id,
                    "drive": drive_id,
                    "attempt": attempt,
                }
            )
            recorder = ObsRecorder() if observe else NULL_RECORDER
            campaign.obs = recorder
            campaign.current_attempt = attempt
            started = time.perf_counter()
            try:
                payload = campaign._simulate_drive(drive_id, route)
            except Exception as exc:  # isolation is the point
                result_q.put(
                    {
                        "kind": "done",
                        "worker": worker_id,
                        "drive": drive_id,
                        "attempt": attempt,
                        "ok": False,
                        "failure": DriveFailure.from_exception(
                            drive_id, route.name, exc
                        ).to_dict(),
                        "elapsed_s": time.perf_counter() - started,
                        # Abandoned attempts must leave no metric trace.
                        "metrics": [],
                    }
                )
            else:
                result_q.put(
                    {
                        "kind": "done",
                        "worker": worker_id,
                        "drive": drive_id,
                        "attempt": attempt,
                        "ok": True,
                        "payload": payload,
                        "elapsed_s": time.perf_counter() - started,
                        "metrics": recorder.registry.snapshot() if observe else [],
                    }
                )
    finally:
        stop.set()


# -- parent side ---------------------------------------------------------


def run_drives_supervised(
    campaign,
    routes,
    drive_payloads: dict[int, dict],
    checkpoint_path: str | os.PathLike | None,
    fingerprint: str,
    shutdown=None,
) -> list:
    """Run every not-yet-completed drive under watchdog supervision.

    Same contract as
    :func:`repro.core.parallel_campaign.run_drives_parallel` — fills
    ``drive_payloads`` in place, checkpoints after every completed
    drive, returns failures in drive order — plus the self-healing
    behaviour documented in the module docstring.  ``shutdown`` is a
    :class:`~repro.resilience.signals.ShutdownFlag`; when it trips the
    pool raises :class:`CampaignAborted` after the last checkpoint.
    """
    from repro.core.parallel_campaign import merge_drive_results

    cfg = campaign.config
    res: ResilienceConfig = cfg.resilience
    policy = res.retry
    obs = campaign.obs
    events = campaign._resilience
    store = campaign._shard_store

    pending = [d for d in range(len(routes)) if d not in drive_payloads]
    if not pending:
        return []

    ctx = _mp_context()
    result_q = ctx.Queue()
    workers: dict[int, _Worker] = {}
    next_worker_id = 0
    initial_pool = min(cfg.workers, len(pending))

    def spawn() -> _Worker:
        nonlocal next_worker_id
        worker_id = next_worker_id
        next_worker_id += 1
        task_q = ctx.Queue()
        heartbeat = ctx.Value("d", time.monotonic(), lock=False)
        process = ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                cfg,
                task_q,
                result_q,
                obs.enabled,
                heartbeat,
                res.heartbeat_interval_s,
                store.root if store is not None else None,
            ),
            daemon=True,
        )
        process.start()
        worker = _Worker(worker_id, process, task_q, heartbeat)
        workers[worker_id] = worker
        if worker_id >= initial_pool:
            events.workers_replaced += 1
            obs.counter("resilience.workers_replaced").inc()
        return worker

    tasks: collections.deque[_Task] = collections.deque(
        _Task(d, 0, 0.0) for d in pending
    )
    #: drive_id -> worker ids that hung or died running it.
    excluded: dict[int, set[int]] = {d: set() for d in pending}
    results: dict[int, dict] = {}
    outstanding = len(pending)
    jitter_rngs: dict[int, object] = {}

    def retry_delay(drive_id: int, retry_index: int) -> float:
        rng = None
        if policy.jitter:
            rng = jitter_rngs.get(drive_id)
            if rng is None:
                rng = campaign.rng.get(f"resilience.retry.{drive_id}")
                jitter_rngs[drive_id] = rng
        return policy.delay_s(retry_index, rng)

    def discard_queued(drive_id: int) -> None:
        nonlocal tasks
        tasks = collections.deque(t for t in tasks if t.drive_id != drive_id)

    def finish(drive_id: int, result: dict) -> None:
        nonlocal outstanding
        if drive_id in results:
            return  # late duplicate (e.g. a kill raced a completion)
        results[drive_id] = result
        outstanding -= 1
        if result["ok"]:
            if result["metrics"]:
                # Ride the per-drive metric delta in the checkpoint so
                # resume can restore it.
                result["payload"]["metrics"] = result["metrics"]
            drive_payloads[drive_id] = result["payload"]
            if checkpoint_path is not None:
                campaign._commit_progress(drive_payloads)

    def requeue_or_fail(
        drive_id: int, attempt: int, failure: dict, transient: bool
    ) -> None:
        """One attempt is gone; spend retry budget or record the loss."""
        if transient and attempt + 1 < policy.max_attempts:
            retry_index = attempt + 1
            events.retries += 1
            obs.counter("resilience.retries", kind=failure["error_type"]).inc()
            tasks.append(
                _Task(
                    drive_id,
                    attempt + 1,
                    time.monotonic() + retry_delay(drive_id, retry_index),
                )
            )
        else:
            finish(
                drive_id,
                {
                    "drive_id": drive_id,
                    "ok": False,
                    "failure": failure,
                    "elapsed_s": 0.0,
                    "metrics": [],
                    "attempts": attempt + 1,
                },
            )

    def handle_done(msg: dict) -> None:
        drive_id, attempt = msg["drive"], msg["attempt"]
        worker = workers.get(msg["worker"])
        if worker is not None and worker.current == (drive_id, attempt):
            worker.current = None
            worker.deadline = None
        if drive_id in results:
            return
        if msg["ok"]:
            # A kill may have already requeued this drive; the completed
            # payload wins (it is byte-identical to any retry's).
            discard_queued(drive_id)
            finish(
                drive_id,
                {
                    "drive_id": drive_id,
                    "ok": True,
                    "payload": msg["payload"],
                    "elapsed_s": msg["elapsed_s"],
                    "metrics": msg["metrics"],
                    "attempts": attempt + 1,
                },
            )
        else:
            failure = msg["failure"]
            transient = (
                classify_failure(failure["error_type"]) is FailureClass.TRANSIENT
            )
            requeue_or_fail(drive_id, attempt, failure, transient)

    def kill_worker(worker: _Worker, reason: str) -> None:
        """SIGKILL a hung/wedged worker and requeue its drive."""
        drive_id, attempt = worker.current
        events.watchdog_kills += 1
        obs.counter("resilience.watchdog_kills", reason=reason).inc()
        if worker.process.is_alive():
            worker.process.kill()  # SIGKILL: a hung process ignores polite asks
            worker.process.join(2.0)
        del workers[worker.worker_id]
        excluded[drive_id].add(worker.worker_id)
        requeue_or_fail(
            drive_id,
            attempt,
            {
                "drive_id": drive_id,
                "route_name": routes[drive_id].name,
                "error_type": "DriveTimeout",
                "message": (
                    f"drive {drive_id} attempt {attempt + 1} {reason} on worker "
                    f"{worker.worker_id} (deadline {res.drive_timeout_s}s); killed"
                ),
                "traceback": "",
            },
            transient=True,
        )

    def reap_worker(worker: _Worker) -> None:
        """A worker died on its own; requeue whatever it was running."""
        del workers[worker.worker_id]
        if worker.current is None:
            return
        drive_id, attempt = worker.current
        events.worker_deaths += 1
        obs.counter("resilience.worker_deaths").inc()
        excluded[drive_id].add(worker.worker_id)
        requeue_or_fail(
            drive_id,
            attempt,
            {
                "drive_id": drive_id,
                "route_name": routes[drive_id].name,
                "error_type": "WorkerDied",
                "message": (
                    f"worker {worker.worker_id} died (exit code "
                    f"{worker.process.exitcode}) while running drive {drive_id} "
                    f"attempt {attempt + 1}"
                ),
                "traceback": "",
            },
            transient=True,
        )

    for _ in range(initial_pool):
        spawn()

    hard_stop = True
    try:
        while outstanding:
            now = time.monotonic()

            # Dispatch eligible tasks to idle workers they are not
            # excluded from.
            idle = [
                w
                for w in workers.values()
                if w.current is None and w.process.is_alive()
            ]
            if tasks and idle:
                held: collections.deque[_Task] = collections.deque()
                while tasks:
                    task = tasks.popleft()
                    target = None
                    if task.eligible_at <= now:
                        target = next(
                            (
                                w
                                for w in idle
                                if w.worker_id not in excluded[task.drive_id]
                            ),
                            None,
                        )
                    if target is None:
                        held.append(task)
                        continue
                    idle.remove(target)
                    target.current = (task.drive_id, task.attempt)
                    if res.drive_timeout_s is not None:
                        target.deadline = now + res.drive_timeout_s
                    target.task_q.put((task.drive_id, task.attempt))
                tasks = held

            # Starvation guard: an eligible task every live worker is
            # excluded from (or an empty pool) needs a fresh worker.
            live_ids = {
                wid for wid, w in workers.items() if w.process.is_alive()
            }
            if len(workers) < cfg.workers + len(pending):  # hard spawn cap
                for task in tasks:
                    if task.eligible_at <= now and live_ids <= excluded[task.drive_id]:
                        spawn()
                        break

            # Wait for worker traffic, then drain everything queued.
            try:
                msg = result_q.get(timeout=res.poll_interval_s)
            except queue_module.Empty:
                msg = None
            while msg is not None:
                worker = workers.get(msg["worker"])
                if msg["kind"] == "start":
                    # Refine the deadline to the actual start of work.
                    if (
                        worker is not None
                        and worker.current == (msg["drive"], msg["attempt"])
                        and res.drive_timeout_s is not None
                    ):
                        worker.deadline = time.monotonic() + res.drive_timeout_s
                elif msg["kind"] == "done":
                    handle_done(msg)
                try:
                    msg = result_q.get_nowait()
                except queue_module.Empty:
                    msg = None

            # Watchdog scan: deadlines, wedged heartbeats, dead workers.
            now = time.monotonic()
            for worker in list(workers.values()):
                if worker.worker_id not in workers:
                    continue
                alive = worker.process.is_alive()
                if not alive:
                    reap_worker(worker)
                    continue
                if worker.current is None:
                    continue
                if worker.deadline is not None and now > worker.deadline:
                    kill_worker(worker, "exceeded its deadline")
                elif (now - worker.heartbeat.value) > res.heartbeat_timeout_s:
                    kill_worker(worker, "stopped heartbeating")

            if shutdown is not None and shutdown.requested:
                raise CampaignAborted(
                    f"shutdown requested (signal {shutdown.signum}); "
                    "completed drives are checkpointed"
                )
        hard_stop = False
    finally:
        _stop_pool(workers, result_q, graceful=not hard_stop)

    return merge_drive_results(campaign, routes, results)


def _stop_pool(workers: dict[int, _Worker], result_q, graceful: bool) -> None:
    """Tear the pool down; politely when the work finished, not when
    aborting (a hung worker would stall a polite join forever)."""
    if graceful:
        for worker in workers.values():
            if worker.process.is_alive():
                try:
                    worker.task_q.put_nowait(None)
                except (queue_module.Full, OSError, ValueError):
                    pass
        deadline = time.monotonic() + 5.0
        for worker in workers.values():
            worker.process.join(max(0.0, deadline - time.monotonic()))
    for worker in workers.values():
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(1.0)
        worker.task_q.close()
        worker.task_q.cancel_join_thread()
    result_q.close()
    result_q.cancel_join_thread()
