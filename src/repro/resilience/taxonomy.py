"""Failure taxonomy: what went wrong, and whether it is worth retrying.

A month-long measurement campaign dies two ways: a *transient* fault
(the dish rebooted, a worker process got OOM-killed, a drive hung) that
a re-run would sail through, or a *permanent* one (a config error, a
bug) that will fail identically every time.  The paper's field team made
the same call by hand — aborted tests were re-driven, broken setups were
fixed — and the retry machinery in :mod:`repro.resilience` needs the
distinction to be explicit: retrying a permanent failure burns the
budget and hides the bug.

Classification works on *names*, not exception objects, because a
failure crossing a process boundary arrives as a serialized
:class:`~repro.core.campaign.DriveFailure` (error type + message), not a
live exception.  :func:`classify_exception` is the isinstance-aware
variant for in-process callers.
"""

from __future__ import annotations

import enum


class FailureClass(enum.Enum):
    """Is a failure worth retrying?"""

    #: Environmental / timing failures: a clean re-run may succeed.
    TRANSIENT = "transient"
    #: Deterministic failures: a re-run will fail the same way.
    PERMANENT = "permanent"


class TransientDriveError(RuntimeError):
    """A drive failure known to be environmental (dish reboot, dead
    zone, resource blip).  Fault hooks and tests raise this to mark a
    failure as retry-worthy; anything else is classified by type."""


class DriveTimeout(TimeoutError):
    """A drive exceeded its watchdog deadline and was killed."""


class WorkerDied(RuntimeError):
    """A worker process died (crash, OOM kill) while running a drive."""


class CampaignAborted(KeyboardInterrupt):
    """Graceful shutdown: a SIGTERM/SIGINT was honoured after the
    current drive was completed and checkpointed.  Subclasses
    ``KeyboardInterrupt`` so it is never swallowed by per-drive failure
    isolation and aborts serial and parallel runs identically."""


class ArtifactCorruptError(ValueError):
    """An on-disk artifact (dataset, manifest) failed integrity
    validation: its embedded content digest does not match its body."""


class CheckpointCorruptError(ArtifactCorruptError):
    """A campaign checkpoint is truncated, tampered with, or
    structurally invalid.  The campaign quarantines such a file to
    ``<path>.corrupt``, salvages every drive whose own digest still
    verifies, and resumes from the salvaged state."""


#: Exception type names treated as transient.  Name-based so the set
#: applies to failures serialized across a process boundary.
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "TransientDriveError",
        "DriveTimeout",
        "WorkerDied",
        "TimeoutError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionAbortedError",
        "ConnectionRefusedError",
        "BrokenPipeError",
        "InterruptedError",
        "BlockingIOError",
        "BrokenProcessPool",
        "EOFError",
        "OSError",
        "IOError",
    }
)

#: In-process counterpart of :data:`TRANSIENT_ERROR_TYPES` (isinstance
#: checks catch subclasses whose names are not in the set).
_TRANSIENT_EXCEPTION_TYPES = (
    TransientDriveError,
    TimeoutError,
    ConnectionError,
    InterruptedError,
    BlockingIOError,
    EOFError,
    OSError,
)


def classify_failure(error_type: str) -> FailureClass:
    """Classify a serialized failure by its exception type name."""
    if error_type in TRANSIENT_ERROR_TYPES:
        return FailureClass.TRANSIENT
    return FailureClass.PERMANENT


def classify_exception(exc: BaseException) -> FailureClass:
    """Classify a live exception (subclass-aware)."""
    if isinstance(exc, _TRANSIENT_EXCEPTION_TYPES):
        return FailureClass.TRANSIENT
    return classify_failure(type(exc).__name__)
