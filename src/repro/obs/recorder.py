"""Recorder: the single handle instrumented code talks to.

Two implementations share one duck type:

* :class:`NullRecorder` — the default.  Every method returns a shared
  no-op singleton, so an instrumented hot path pays one no-op method
  call per event and allocates nothing.  With it installed, an
  instrumented run is byte-identical to an uninstrumented one (nothing
  touches RNG streams or simulated time either way).
* :class:`ObsRecorder` — a :class:`~repro.obs.metrics.MetricsRegistry`
  plus a :class:`~repro.obs.tracer.SpanTracer`.

Instrumented classes resolve their recorder once at construction::

    self._obs = recorder if recorder is not None else get_recorder()

so callers either pass one explicitly (the campaign threads its own
through channels and injectors) or inherit the process-wide default,
switched with :func:`set_recorder` / :func:`use_recorder`.
"""

from __future__ import annotations

from contextlib import contextmanager
from types import TracebackType
from typing import Any, Iterable, Iterator

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import SpanTracer, _ActiveSpan


class _NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Do-nothing recorder: the zero-overhead default."""

    enabled = False

    def __reduce__(self) -> tuple[Any, ...]:
        # Pickling (e.g. a config or channel shipped to a campaign worker
        # process) resolves back to the shared singleton, preserving the
        # "one inert instance" identity checks rely on.
        return (_restore_null_recorder, ())

    def counter(self, name: str, /, **labels: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, /, **labels: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, /, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels: str
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, /, **meta: object) -> _NullSpan:
        return _NULL_SPAN


class ObsRecorder:
    """Live recorder: metrics registry + span tracer in one handle."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or SpanTracer()

    def counter(self, name: str, /, **labels: str) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(
        self, name: str, /, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels: str
    ) -> Histogram:
        return self.registry.histogram(name, buckets=buckets, **labels)

    def span(self, name: str, /, **meta: object) -> _ActiveSpan:
        return self.tracer.span(name, **meta)


def _restore_null_recorder() -> "NullRecorder":
    """Unpickle hook: every pickled NullRecorder is the singleton."""
    return NULL_RECORDER


#: Shared default: instrumentation resolves to this unless told otherwise.
NULL_RECORDER = NullRecorder()

_current: NullRecorder | ObsRecorder = NULL_RECORDER


def get_recorder() -> NullRecorder | ObsRecorder:
    """The process-wide recorder (a :class:`NullRecorder` by default)."""
    return _current


def set_recorder(recorder: NullRecorder | ObsRecorder | None) -> None:
    """Install ``recorder`` as the process-wide default (None resets)."""
    global _current
    _current = recorder if recorder is not None else NULL_RECORDER


@contextmanager
def use_recorder(recorder: NullRecorder | ObsRecorder) -> Iterator[NullRecorder | ObsRecorder]:
    """Temporarily install ``recorder`` (restores the previous one)."""
    global _current
    previous = _current
    _current = recorder
    try:
        yield recorder
    finally:
        _current = previous
