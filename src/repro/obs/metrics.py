"""Counters, gauges, and fixed-bucket histograms.

The registry is the single mutable store behind :mod:`repro.obs`: every
instrumented layer asks it for a metric handle once (at construction) and
then mutates that handle on the hot path.  Handles are plain Python
objects with one-attribute updates — no locks, no string formatting, no
allocation per event — so instrumentation stays cheap even when enabled.

Metrics are identified by ``(name, labels)``; asking twice for the same
identity returns the same handle, which is how per-drive channels from
different construction sites aggregate into one series.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, TypeVar

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
)


class Counter:
    """Monotonically increasing count (events, seconds, tests)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """Last-written value (heap depth, rate, configuration knob)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (cheap max tracking)."""
        if value > self.value:
            self.value = float(value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative export).

    Buckets are upper bounds; observations above the last bound land in
    the implicit ``+Inf`` bucket.  Counts are stored per-bucket
    (non-cumulative) internally and cumulated only at export time.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels: tuple[tuple[str, str], ...] = (),
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[int]:
        """Prometheus ``le`` semantics: counts accumulated left to right."""
        out: list[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


Metric = Counter | Gauge | Histogram
_MetricKey = tuple[type, str, tuple[tuple[str, str], ...]]
_SimpleMetric = TypeVar("_SimpleMetric", Counter, Gauge)


class MetricsRegistry:
    """All metrics of one run, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: dict[_MetricKey, Metric] = {}

    def counter(self, name: str, /, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        /,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (Histogram, name, _label_key(labels))
        metric = self._metrics.get(key)
        # The key embeds the class, so the isinstance check is really a
        # presence check — but it also narrows the stored union type.
        if not isinstance(metric, Histogram):
            metric = Histogram(name, buckets=buckets, labels=_label_key(labels))
            self._metrics[key] = metric
        return metric

    def _get(
        self,
        cls: type[_SimpleMetric],
        name: str,
        labels: dict[str, str],
    ) -> _SimpleMetric:
        key = (cls, name, _label_key(labels))
        metric = self._metrics.get(key)
        if not isinstance(metric, cls):
            metric = cls(name, labels=_label_key(labels))
            self._metrics[key] = metric
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def snapshot(self) -> list[dict[str, Any]]:
        """Serializable state of every metric, sorted for stable output."""
        return [
            m.to_dict()
            for m in sorted(
                self._metrics.values(), key=lambda m: (m.name, m.labels)
            )
        ]

    def restore(self, entries: Iterable[dict[str, Any]]) -> None:
        """Load a :meth:`snapshot` back into this registry (round-trip)."""
        for entry in entries:
            kind = entry["type"]
            labels = entry.get("labels", {})
            if kind == "counter":
                self.counter(entry["name"], **labels).value = float(entry["value"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"], buckets=entry["buckets"], **labels
                )
                hist.counts = [int(c) for c in entry["counts"]]
                hist.total = float(entry["sum"])
                hist.count = int(entry["count"])
            else:
                raise ValueError(f"unknown metric type {kind!r}")

    def merge(self, entries: Iterable[dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Merge semantics (the contract parallel campaign workers rely on):
        counters and histograms are additive; gauges are last-write-wins,
        so callers apply worker snapshots in drive order.  A histogram
        can only merge into a series with the same bucket bounds.
        """
        for entry in entries:
            kind = entry["type"]
            labels = entry.get("labels", {})
            if kind == "counter":
                self.counter(entry["name"], **labels).value += float(
                    entry["value"]
                )
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"], buckets=entry["buckets"], **labels
                )
                bounds = tuple(sorted(float(b) for b in entry["buckets"]))
                if bounds != hist.buckets:
                    raise ValueError(
                        f"histogram {entry['name']!r} bucket mismatch: "
                        f"{bounds} != {hist.buckets}"
                    )
                for i, c in enumerate(entry["counts"]):
                    hist.counts[i] += int(c)
                hist.total += float(entry["sum"])
                hist.count += int(entry["count"])
            else:
                raise ValueError(f"unknown metric type {kind!r}")

    def value(self, name: str, /, **labels: str) -> float:
        """Current value of a counter/gauge (0.0 when never touched).

        Convenience for tests and the CLI; histograms expose richer state
        through their handle.
        """
        key_labels = _label_key(labels)
        for metric in self._metrics.values():
            if metric.name == name and metric.labels == key_labels:
                if isinstance(metric, Histogram):
                    return float(metric.count)
                return float(metric.value)
        return 0.0

    def by_name(self, name: str) -> list[Metric]:
        """Every labelled series of one metric name."""
        return [m for m in self._metrics.values() if m.name == name]


def merge_snapshots(*snapshots: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Merge :meth:`MetricsRegistry.snapshot` lists into one snapshot.

    Pure function over snapshots: counters/histograms add, gauges take
    the last written value in application order.  Associative (with
    exact-in-float values such as integer counts), which is what lets
    the parallel campaign merge worker snapshots incrementally.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()
