"""RunManifest: the queryable record of one campaign run.

Written next to campaign checkpoints, a manifest captures everything a
later reader needs to interpret (or distrust) a dataset: the config
fingerprint it was produced under, toolchain versions, wall-clock span
timings, and a full metrics snapshot.  ``python -m repro.obs summary``
renders one as ASCII tables.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.recorder import ObsRecorder

MANIFEST_VERSION = 1

#: Metric series whose values are wall-clock measurements of the pipeline
#: itself (not the simulation).  Everything else in a manifest is a pure
#: function of the campaign config, which is what
#: :meth:`RunManifest.deterministic_dict` exposes.
WALL_CLOCK_METRICS = frozenset(
    {"campaign.drive_seconds", "campaign.tests_per_s"}
)

#: Metric series describing *how* a run executed rather than *what* it
#: produced: self-healing events (``resilience.*``), artifact-layer
#: activity (``store.*``), service-queue activity (``serve.*``), and
#: checkpoint resume counts vary with crashes, retries, watchdog kills,
#: and queue pressure while the dataset stays byte-identical, so the
#: deterministic view drops them the same way it drops wall-clock
#: series.  detlint rule INV102 enforces that every series the service
#: registers is covered here.
EXECUTION_METRICS = frozenset({"campaign.drives_resumed"})
EXECUTION_METRIC_PREFIXES = ("resilience.", "store.", "serve.")

#: ``extra`` keys that are execution facts, not dataset facts.
EXECUTION_EXTRA_KEYS = frozenset({"drives_resumed"})


@dataclass
class RunManifest:
    """Config fingerprint + versions + timings + metric snapshot."""

    fingerprint: str
    created_at: str = ""
    versions: dict[str, str] = field(default_factory=dict)
    #: span name -> {count, total_s, min_s, max_s, mean_s}
    timings: dict[str, dict[str, float]] = field(default_factory=dict)
    #: :meth:`MetricsRegistry.snapshot` entries.
    metrics: list[dict[str, Any]] = field(default_factory=list)
    #: Per-drive wall-clock rows: [{drive, route, duration_s, tests}, ...]
    drives: list[dict[str, Any]] = field(default_factory=list)
    #: Artifact layout summary (shard names, record counts, head
    #: digests) when the run used a sharded store — pure content, so it
    #: survives into :meth:`deterministic_dict`.  Empty for monolithic
    #: checkpoints.
    artifacts: dict[str, Any] = field(default_factory=dict)
    #: Free-form run facts (num_tests, distance_km, ...).
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls,
        recorder: "ObsRecorder",
        fingerprint: str,
        drives: list[dict[str, Any]] | None = None,
        artifacts: dict[str, Any] | None = None,
        **extra: Any,
    ) -> "RunManifest":
        """Snapshot an :class:`~repro.obs.recorder.ObsRecorder`."""
        import numpy as np

        import repro

        return cls(
            fingerprint=fingerprint,
            created_at=datetime.datetime.now(datetime.timezone.utc).isoformat(),
            versions={
                "repro": repro.__version__,
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            timings=recorder.tracer.timings(),
            metrics=recorder.registry.snapshot(),
            drives=list(drives or []),
            artifacts=dict(artifacts or {}),
            extra=dict(extra),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "versions": dict(self.versions),
            "timings": {k: dict(v) for k, v in self.timings.items()},
            "metrics": list(self.metrics),
            "drives": list(self.drives),
            "artifacts": dict(self.artifacts),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "RunManifest":
        version = raw.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {version!r} not supported "
                f"(expected {MANIFEST_VERSION})"
            )
        return cls(
            fingerprint=raw["fingerprint"],
            created_at=raw.get("created_at", ""),
            versions=dict(raw.get("versions", {})),
            timings={k: dict(v) for k, v in raw.get("timings", {}).items()},
            metrics=list(raw.get("metrics", [])),
            drives=list(raw.get("drives", [])),
            artifacts=dict(raw.get("artifacts", {})),
            extra=dict(raw.get("extra", {})),
        )

    def deterministic_dict(self) -> dict[str, Any]:
        """The manifest minus everything wall-clock or execution-shaped.

        Drops ``created_at``, span ``timings``, per-drive ``duration_s``,
        the :data:`WALL_CLOCK_METRICS` series, and the execution-path
        series/keys (:data:`EXECUTION_METRICS`,
        ``resilience.*``-prefixed metrics, :data:`EXECUTION_EXTRA_KEYS`);
        what remains is a pure function of the campaign config, so two
        runs of the same config — serial or parallel, resumed or not,
        healed by retries/watchdog or untouched — agree byte for byte on
        :meth:`deterministic_blob`.
        """

        def is_execution(name: str) -> bool:
            return name in WALL_CLOCK_METRICS or name in EXECUTION_METRICS or any(
                name.startswith(prefix) for prefix in EXECUTION_METRIC_PREFIXES
            )

        return {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "versions": dict(self.versions),
            "metrics": [
                entry
                for entry in self.metrics
                if not is_execution(entry["name"])
            ],
            "drives": [
                {k: v for k, v in row.items() if k != "duration_s"}
                for row in self.drives
            ],
            "artifacts": dict(self.artifacts),
            "extra": {
                k: v
                for k, v in self.extra.items()
                if k not in EXECUTION_EXTRA_KEYS
            },
        }

    def deterministic_blob(self) -> bytes:
        """Canonical JSON bytes of :meth:`deterministic_dict`."""
        return json.dumps(self.deterministic_dict(), sort_keys=True).encode()

    def save_json(self, path: str | os.PathLike[str]) -> None:
        """Durably persist the manifest with an embedded content digest
        (verified by :meth:`load_json`) through the atomic commit
        protocol of :mod:`repro.store.commit`."""
        from repro.resilience.integrity import embed_digest
        from repro.store.commit import atomic_write_json

        atomic_write_json(
            path,
            embed_digest(self.to_dict()),
            indent=2,
            sort_keys=True,
            boundary="run_manifest",
        )

    @classmethod
    def load_json(cls, path: str | os.PathLike[str]) -> "RunManifest":
        """Load a manifest, verifying its content digest when present.

        Raises :class:`~repro.resilience.ArtifactCorruptError` on a
        digest mismatch; digest-less (pre-integrity) files still load.
        """
        from repro.resilience.integrity import verify_digest
        from repro.resilience.taxonomy import ArtifactCorruptError

        with open(path) as handle:
            payload = json.load(handle)
        if isinstance(payload, dict) and not verify_digest(payload):
            raise ArtifactCorruptError(
                f"manifest {os.fspath(path)!r} fails its content digest; "
                "the file was modified or damaged after it was written"
            )
        return cls.from_dict(payload)

    # -- convenience lookups (CLI + tests) -------------------------------

    def metric_values(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """``{labels: value}`` for every series of one metric name."""
        out: dict[tuple[tuple[str, str], ...], float] = {}
        for entry in self.metrics:
            if entry["name"] != name:
                continue
            labels = tuple(sorted(entry.get("labels", {}).items()))
            if entry["type"] == "histogram":
                out[labels] = float(entry["count"])
            else:
                out[labels] = float(entry["value"])
        return out

    def total(self, name: str) -> float:
        """Sum of one metric name across all label sets."""
        return sum(self.metric_values(name).values())
