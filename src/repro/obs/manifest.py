"""RunManifest: the queryable record of one campaign run.

Written next to campaign checkpoints, a manifest captures everything a
later reader needs to interpret (or distrust) a dataset: the config
fingerprint it was produced under, toolchain versions, wall-clock span
timings, and a full metrics snapshot.  ``python -m repro.obs summary``
renders one as ASCII tables.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from dataclasses import dataclass, field

MANIFEST_VERSION = 1

#: Metric series whose values are wall-clock measurements of the pipeline
#: itself (not the simulation).  Everything else in a manifest is a pure
#: function of the campaign config, which is what
#: :meth:`RunManifest.deterministic_dict` exposes.
WALL_CLOCK_METRICS = frozenset(
    {"campaign.drive_seconds", "campaign.tests_per_s"}
)


@dataclass
class RunManifest:
    """Config fingerprint + versions + timings + metric snapshot."""

    fingerprint: str
    created_at: str = ""
    versions: dict[str, str] = field(default_factory=dict)
    #: span name -> {count, total_s, min_s, max_s, mean_s}
    timings: dict[str, dict[str, float]] = field(default_factory=dict)
    #: :meth:`MetricsRegistry.snapshot` entries.
    metrics: list[dict] = field(default_factory=list)
    #: Per-drive wall-clock rows: [{drive, route, duration_s, tests}, ...]
    drives: list[dict] = field(default_factory=list)
    #: Free-form run facts (num_tests, distance_km, ...).
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls,
        recorder,
        fingerprint: str,
        drives: list[dict] | None = None,
        **extra,
    ) -> "RunManifest":
        """Snapshot an :class:`~repro.obs.recorder.ObsRecorder`."""
        import numpy as np

        import repro

        return cls(
            fingerprint=fingerprint,
            created_at=datetime.datetime.now(datetime.timezone.utc).isoformat(),
            versions={
                "repro": repro.__version__,
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            timings=recorder.tracer.timings(),
            metrics=recorder.registry.snapshot(),
            drives=list(drives or []),
            extra=dict(extra),
        )

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "versions": dict(self.versions),
            "timings": {k: dict(v) for k, v in self.timings.items()},
            "metrics": list(self.metrics),
            "drives": list(self.drives),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "RunManifest":
        version = raw.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {version!r} not supported "
                f"(expected {MANIFEST_VERSION})"
            )
        return cls(
            fingerprint=raw["fingerprint"],
            created_at=raw.get("created_at", ""),
            versions=dict(raw.get("versions", {})),
            timings={k: dict(v) for k, v in raw.get("timings", {}).items()},
            metrics=list(raw.get("metrics", [])),
            drives=list(raw.get("drives", [])),
            extra=dict(raw.get("extra", {})),
        )

    def deterministic_dict(self) -> dict:
        """The manifest minus everything wall-clock.

        Drops ``created_at``, span ``timings``, per-drive ``duration_s``,
        and the :data:`WALL_CLOCK_METRICS` series; what remains is a pure
        function of the campaign config, so two runs of the same config —
        serial or parallel, any worker count — agree byte for byte on
        :meth:`deterministic_blob`.
        """
        return {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "versions": dict(self.versions),
            "metrics": [
                entry
                for entry in self.metrics
                if entry["name"] not in WALL_CLOCK_METRICS
            ],
            "drives": [
                {k: v for k, v in row.items() if k != "duration_s"}
                for row in self.drives
            ],
            "extra": dict(self.extra),
        }

    def deterministic_blob(self) -> bytes:
        """Canonical JSON bytes of :meth:`deterministic_dict`."""
        return json.dumps(self.deterministic_dict(), sort_keys=True).encode()

    def save_json(self, path: str | os.PathLike) -> None:
        tmp_path = f"{os.fspath(path)}.tmp"
        with open(tmp_path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
        os.replace(tmp_path, path)

    @classmethod
    def load_json(cls, path: str | os.PathLike) -> "RunManifest":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- convenience lookups (CLI + tests) -------------------------------

    def metric_values(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """``{labels: value}`` for every series of one metric name."""
        out: dict[tuple[tuple[str, str], ...], float] = {}
        for entry in self.metrics:
            if entry["name"] != name:
                continue
            labels = tuple(sorted(entry.get("labels", {}).items()))
            if entry["type"] == "histogram":
                out[labels] = float(entry["count"])
            else:
                out[labels] = float(entry["value"])
        return out

    def total(self, name: str) -> float:
        """Sum of one metric name across all label sets."""
        return sum(self.metric_values(name).values())
