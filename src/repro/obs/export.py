"""Exporters: JSONL dumps and Prometheus text exposition.

Both formats round-trip: :func:`read_jsonl` reverses
:func:`write_jsonl`, and :func:`parse_prometheus_text` reverses
:func:`to_prometheus_text` (modulo metric-name sanitisation, which maps
dots to underscores the way Prometheus requires).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import ObsRecorder
from repro.obs.tracer import Span, SpanTracer


# -- JSONL ---------------------------------------------------------------


def write_jsonl(recorder: ObsRecorder, path: str | os.PathLike[str]) -> int:
    """Dump every metric and span as one JSON object per line.

    Returns the number of lines written.  The first line is a header so
    readers can sanity-check provenance.
    """
    lines: list[dict[str, Any]] = [
        {"type": "header", "format": "repro.obs.jsonl", "version": 1}
    ]
    lines.extend(recorder.registry.snapshot())
    lines.extend(span.to_dict() for span in recorder.tracer.spans)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True))
            handle.write("\n")
    return len(lines)


def read_jsonl(path: str | os.PathLike[str]) -> ObsRecorder:
    """Rebuild a recorder (registry + spans) from a JSONL dump."""
    registry = MetricsRegistry()
    tracer = SpanTracer()
    with open(path) as handle:
        for raw_line in handle:
            raw_line = raw_line.strip()
            if not raw_line:
                continue
            entry = json.loads(raw_line)
            kind = entry.get("type")
            if kind == "header":
                if entry.get("format") != "repro.obs.jsonl":
                    raise ValueError(
                        f"{os.fspath(path)!r} is not a repro.obs JSONL dump"
                    )
            elif kind == "span":
                tracer.spans.append(Span.from_dict(entry))
            else:
                registry.restore([entry])
    return ObsRecorder(registry=registry, tracer=tracer)


# -- Prometheus text format ----------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitise to the Prometheus name charset (dots -> underscores)."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: dict[str, str] | Iterable[tuple[str, str]]) -> str:
    pairs = dict(labels)
    if not pairs:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(pairs.items())
    )
    return "{" + body + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    out: list[str] = []
    seen_help: set[str] = set()
    for entry in registry.snapshot():
        kind = entry["type"]
        name = _prom_name(entry["name"])
        labels = entry["labels"]
        if kind == "counter":
            full = f"{name}_total"
            if full not in seen_help:
                out.append(f"# TYPE {full} counter")
                seen_help.add(full)
            out.append(f"{full}{_prom_labels(labels)} {entry['value']:g}")
        elif kind == "gauge":
            if name not in seen_help:
                out.append(f"# TYPE {name} gauge")
                seen_help.add(name)
            out.append(f"{name}{_prom_labels(labels)} {entry['value']:g}")
        elif kind == "histogram":
            if name not in seen_help:
                out.append(f"# TYPE {name} histogram")
                seen_help.add(name)
            running = 0
            # counts has one overflow entry more than buckets; the zip
            # dropping it is the point.
            for bound, count in zip(entry["buckets"], entry["counts"], strict=False):
                running += count
                le = {**labels, "le": f"{bound:g}"}
                out.append(f"{name}_bucket{_prom_labels(le)} {running}")
            running += entry["counts"][-1]
            inf = {**labels, "le": "+Inf"}
            out.append(f"{name}_bucket{_prom_labels(inf)} {running}")
            out.append(f"{name}_sum{_prom_labels(labels)} {entry['sum']:g}")
            out.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
        else:  # pragma: no cover - registry only emits the three kinds
            raise ValueError(f"unknown metric type {kind!r}")
    return "\n".join(out) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Counter samples keep their ``_total`` suffix and histograms their
    ``_bucket``/``_sum``/``_count`` expansion — the parser reverses the
    text format, not the registry schema.  Used by the round-trip tests
    and the CLI.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (m.group("key"), m.group("value").replace('\\"', '"').replace("\\\\", "\\"))
                for m in _LABEL_RE.finditer(labels_text)
            )
        )
        samples[(match.group("name"), labels)] = float(match.group("value"))
    return samples
