"""repro.obs: zero-dependency observability for the campaign pipeline.

Three pieces, one handle:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
* :class:`SpanTracer` — nested wall-clock spans (``time.perf_counter``;
  simulation determinism and RNG streams are untouched);
* :class:`ObsRecorder` / :class:`NullRecorder` — the duck type the
  instrumented layers (campaign, channels, DES loop, MPTCP schedulers,
  fault injector) talk to.  The null default costs one no-op call per
  event, so instrumentation is effectively free until switched on.

Artifacts: :class:`RunManifest` (written next to campaign checkpoints),
JSONL dumps, and Prometheus text — summarised by ``python -m repro.obs``.
"""

from repro.obs.export import (
    parse_prometheus_text,
    read_jsonl,
    to_prometheus_text,
    write_jsonl,
)
from repro.obs.manifest import RunManifest, WALL_CLOCK_METRICS
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    ObsRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.tracer import Span, SpanTracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsRecorder",
    "RunManifest",
    "Span",
    "SpanTracer",
    "WALL_CLOCK_METRICS",
    "get_recorder",
    "merge_snapshots",
    "parse_prometheus_text",
    "read_jsonl",
    "set_recorder",
    "to_prometheus_text",
    "use_recorder",
    "write_jsonl",
]
