"""Command-line summaries of observability artifacts.

Usage::

    python -m repro.obs summary run.manifest.json   # ASCII tables
    python -m repro.obs summary run.obs.jsonl
    python -m repro.obs prom run.manifest.json      # Prometheus text

``summary`` renders the run the way the figure benchmarks render the
paper: per-drive wall-clock timings, channel sample/outage/handover
totals, DES event counts, and the top counters, as compact ASCII tables
(reusing :mod:`repro.report`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs.export import read_jsonl, to_prometheus_text
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.report import bar_chart


def _load(path: str) -> RunManifest:
    """A manifest from either a manifest JSON or a JSONL metrics dump."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such artifact: {path!r}")
    if path.endswith(".jsonl"):
        recorder = read_jsonl(path)
        return RunManifest.from_recorder(recorder, fingerprint="(jsonl dump)")
    return RunManifest.load_json(path)


def _labels_caption(labels: tuple[tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in labels) or "(all)"


def _series_chart(manifest: RunManifest, name: str, unit: str = "") -> str:
    values = manifest.metric_values(name)
    if not values:
        return "(not recorded)"
    labels = [_labels_caption(k) for k in values]
    return bar_chart(labels, list(values.values()), unit=unit)


def render_summary(manifest: RunManifest) -> str:
    """The full ASCII summary for one manifest."""
    out: list[str] = []
    out.append(f"run fingerprint : {manifest.fingerprint}")
    if manifest.created_at:
        out.append(f"created at      : {manifest.created_at}")
    if manifest.versions:
        versions = "  ".join(f"{k} {v}" for k, v in sorted(manifest.versions.items()))
        out.append(f"versions        : {versions}")
    for key, value in sorted(manifest.extra.items()):
        out.append(f"{key:<16}: {value}")

    if manifest.drives:
        out.append("")
        out.append("== per-drive wall-clock ==")
        labels = [
            f"drive {d['drive']} {d.get('route', '?')}" for d in manifest.drives
        ]
        out.append(
            bar_chart(labels, [d["duration_s"] for d in manifest.drives], unit="s")
        )
        tests = [d.get("tests", 0) for d in manifest.drives]
        if any(tests):
            out.append("")
            out.append(bar_chart(labels, tests, unit=" tests"))

    if manifest.timings:
        out.append("")
        out.append("== span timings (total wall seconds) ==")
        names = sorted(
            manifest.timings, key=lambda n: -manifest.timings[n]["total_s"]
        )
        out.append(
            bar_chart(
                [f"{n} x{manifest.timings[n]['count']:.0f}" for n in names],
                [manifest.timings[n]["total_s"] for n in names],
                unit="s",
            )
        )

    sections = [
        ("channel samples", "channel.samples", ""),
        ("channel outage seconds", "channel.outage_seconds", "s"),
        ("channel handovers", "channel.handovers", ""),
        ("DES events fired", "sim.events_fired", ""),
        ("DES events cancelled", "sim.events_cancelled", ""),
        ("DES max heap depth", "sim.heap_depth_max", ""),
        ("MPTCP scheduling decisions", "mptcp.scheduler.decisions", ""),
        ("fault seconds", "faults.fault_seconds", "s"),
    ]
    for title, metric, unit in sections:
        chart = _series_chart(manifest, metric, unit=unit)
        if chart == "(not recorded)":
            continue
        out.append("")
        out.append(f"== {title} ==")
        out.append(chart)

    shown = {metric for _, metric, _ in sections}
    counters = [
        entry
        for entry in manifest.metrics
        if entry["type"] == "counter" and entry["name"] not in shown
    ]
    if counters:
        out.append("")
        out.append("== other counters ==")
        width = max(len(entry["name"]) for entry in counters)
        for entry in sorted(counters, key=lambda e: (e["name"], sorted(e["labels"].items()))):
            caption = _labels_caption(tuple(sorted(entry["labels"].items())))
            out.append(f"{entry['name']:<{width}}  {caption:<24} {entry['value']:g}")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarise repro.obs artifacts (manifests, JSONL dumps).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, helptext in (
        ("summary", "render ASCII tables for a manifest or JSONL dump"),
        ("prom", "print the metrics as Prometheus text exposition"),
    ):
        cmd = sub.add_parser(name, help=helptext)
        cmd.add_argument("artifact", help="path to *.manifest.json or *.jsonl")
    args = parser.parse_args(argv)

    try:
        manifest = _load(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "summary":
        print(render_summary(manifest))
    else:
        registry = MetricsRegistry()
        registry.restore(manifest.metrics)
        print(to_prometheus_text(registry), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
