"""Lightweight span tracer: nested wall-clock timings, no magic.

Spans time the *pipeline* (wall clock via ``time.perf_counter``), never
the simulation: starting or finishing a span touches no RNG stream and no
simulated clock, so tracing a campaign cannot change its dataset.

Usage::

    tracer = SpanTracer()
    with tracer.span("campaign.drive", drive="0", route="interstate-0"):
        with tracer.span("campaign.tests"):
            ...
    tracer.spans  # -> [Span(name="campaign.tests", depth=1, ...), ...]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any


@dataclass
class Span:
    """One completed timed region."""

    name: str
    start_s: float
    duration_s: float
    depth: int
    parent: str | None = None
    meta: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "parent": self.parent,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Span":
        return cls(
            name=raw["name"],
            start_s=float(raw["start_s"]),
            duration_s=float(raw["duration_s"]),
            depth=int(raw["depth"]),
            parent=raw.get("parent"),
            meta=dict(raw.get("meta", {})),
        )


class _ActiveSpan:
    """Context manager for one in-flight span (reused API, tiny state)."""

    __slots__ = ("_tracer", "name", "meta", "_start")

    def __init__(
        self, tracer: "SpanTracer", name: str, meta: dict[str, str]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.meta = meta
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end = time.perf_counter()
        stack = self._tracer._stack
        stack.pop()
        self._tracer.spans.append(
            Span(
                name=self.name,
                start_s=self._start - self._tracer._epoch,
                duration_s=end - self._start,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                meta=self.meta,
            )
        )


class SpanTracer:
    """Collects completed spans; nesting tracked via an explicit stack."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[str] = []
        self._epoch = time.perf_counter()

    def span(self, name: str, /, **meta: object) -> _ActiveSpan:
        """A context manager timing ``name``; nests under any open span."""
        return _ActiveSpan(self, name, {k: str(v) for k, v in meta.items()})

    def record(self, name: str, /, duration_s: float, **meta: object) -> Span:
        """Append an already-measured span (no timing of our own).

        The parallel campaign uses this to graft worker-measured drive
        durations into the parent tracer: the span nests under whatever
        span is currently open (``campaign.run`` during a merge), with
        its start back-dated so ``start + duration`` is now.
        """
        now = time.perf_counter() - self._epoch
        span = Span(
            name=name,
            start_s=max(0.0, now - duration_s),
            duration_s=float(duration_s),
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else None,
            meta={k: str(v) for k, v in meta.items()},
        )
        self.spans.append(span)
        return span

    def timings(self) -> dict[str, dict[str, float]]:
        """Aggregate spans by name: count / total / min / max / mean."""
        agg: dict[str, dict[str, float]] = {}
        for span in self.spans:
            entry = agg.get(span.name)
            if entry is None:
                agg[span.name] = {
                    "count": 1,
                    "total_s": span.duration_s,
                    "min_s": span.duration_s,
                    "max_s": span.duration_s,
                }
            else:
                entry["count"] += 1
                entry["total_s"] += span.duration_s
                entry["min_s"] = min(entry["min_s"], span.duration_s)
                entry["max_s"] = max(entry["max_s"], span.duration_s)
        for entry in agg.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return agg

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]
