"""repro: reproduction toolkit for "LEO Satellite vs. Cellular Networks:
Exploring the Potential for Synergistic Integration" (CoNEXT Companion '23).

The package layers, bottom up:

* :mod:`repro.geo` -- synthetic five-state geography, drive routes, vehicle
  mobility, and the paper's urban/suburban/rural classifier;
* :mod:`repro.leo` -- Walker-delta Starlink constellation, visibility and
  obstruction geometry, Roam/Mobility dish models, bent-pipe latency,
  15 s reconfiguration handover, and the per-second channel model;
* :mod:`repro.cellular` -- AT&T/T-Mobile/Verizon profiles, Poisson base
  station deployment, radio propagation, and the cellular channel model;
* :mod:`repro.net` + :mod:`repro.transport` -- a packet-level simulator with
  real TCP (SACK, CUBIC/Reno), UDP, parallel TCP, and MPTCP (BLEST/minRTT/
  round-robin schedulers, shared meta buffer);
* :mod:`repro.emu` -- Mahimahi-format traces and the MpShell replay shell;
* :mod:`repro.tools` -- iPerf-like tests, UDP-Ping, 5G-Tracker logging;
* :mod:`repro.core` -- campaign orchestration, the driving dataset, fluid
  transport models, and the coverage/statistics analysis;
* :mod:`repro.experiments` -- one module per paper figure.

Quick start::

    from repro.core import CampaignConfig, run_campaign
    dataset = run_campaign(CampaignConfig(seed=1))
    print(dataset.num_tests, "tests over", round(dataset.distance_km), "km")
"""

from repro.conditions import LinkConditions, outage
from repro.rng import RngStreams

__version__ = "1.0.0"

__all__ = ["LinkConditions", "RngStreams", "outage", "__version__"]
