"""Drop-tail byte-bounded FIFO queue (the bottleneck buffer of a link)."""

from __future__ import annotations

from collections import deque

from repro.net.packet import Packet


class DropTailQueue:
    """FIFO with a byte capacity; arrivals beyond capacity are dropped."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(
                f"queue capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self.bytes_queued = 0
        self.drops = 0
        self.enqueues = 0

    def push(self, packet: Packet) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if self.bytes_queued + packet.size_bytes > self.capacity_bytes:
            self.drops += 1
            return False
        self._queue.append(packet)
        self.bytes_queued += packet.size_bytes
        self.enqueues += 1
        return True

    def pop(self) -> Packet | None:
        """Dequeue the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes_queued -= packet.size_bytes
        return packet

    def peek(self) -> Packet | None:
        """Head packet without removing it."""
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        """Drop everything (link reset)."""
        self._queue.clear()
        self.bytes_queued = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue
