"""Unidirectional links with time-varying rate, delay, and random loss.

A :class:`Link` models the path in one direction: a drop-tail buffer drained
at the instantaneous capacity, followed by a fixed-plus-varying one-way
delay, with Bernoulli random loss applied per packet.  Conditions come from
a :class:`ConditionsSchedule` built from per-second
:class:`repro.conditions.LinkConditions` samples, which is exactly what both
channel substrates emit.
"""

from __future__ import annotations

import bisect
from typing import Callable, Protocol

import numpy as np

from repro.conditions import LinkConditions
from repro.units import DEFAULT_MTU_BYTES
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.simulator import Simulator


class ConditionsProvider(Protocol):
    """Anything that can report link conditions at a simulated time."""

    def rate_bps(self, time_s: float) -> float: ...

    def one_way_delay_s(self, time_s: float) -> float: ...

    def loss_rate(self, time_s: float) -> float: ...

    def loss_burst(self, time_s: float) -> float: ...


class ConditionsSchedule:
    """Piecewise-constant conditions from per-second channel samples.

    The sample list wraps around, so short traces can drive long
    experiments (the paper's MpShell replay does the same).
    """

    def __init__(
        self,
        samples: list[LinkConditions],
        downlink: bool = True,
        rtt_split: float = 0.5,
    ):
        if not samples:
            raise ValueError("need at least one conditions sample")
        if not 0.0 <= rtt_split <= 1.0:
            raise ValueError(f"rtt_split must be in [0, 1], got {rtt_split}")
        self.samples = list(samples)
        self.downlink = downlink
        self.rtt_split = rtt_split
        self._times = [s.time_s for s in self.samples]
        self._t0 = self._times[0]
        self._span = max(self._times[-1] - self._t0 + 1.0, 1.0)

    def _sample_at(self, time_s: float) -> LinkConditions:
        wrapped = self._t0 + ((time_s - self._t0) % self._span)
        idx = bisect.bisect_right(self._times, wrapped) - 1
        return self.samples[max(idx, 0)]

    def rate_bps(self, time_s: float) -> float:
        return self._sample_at(time_s).capacity_mbps(self.downlink) * 1e6

    def one_way_delay_s(self, time_s: float) -> float:
        return self._sample_at(time_s).rtt_ms * self.rtt_split / 1000.0

    def loss_rate(self, time_s: float) -> float:
        return self._sample_at(time_s).loss_rate

    def loss_burst(self, time_s: float) -> float:
        return self._sample_at(time_s).loss_burst


class FixedConditions:
    """Constant-rate/delay/loss provider for unit tests and baselines."""

    def __init__(
        self,
        rate_mbps: float,
        one_way_delay_ms: float,
        loss: float = 0.0,
        burst: float = 1.0,
    ):
        if rate_mbps < 0:
            raise ValueError(f"rate must be non-negative, got {rate_mbps}")
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {loss}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._rate_bps = rate_mbps * 1e6
        self._delay_s = one_way_delay_ms / 1000.0
        self._loss = loss
        self._burst = burst

    def rate_bps(self, time_s: float) -> float:
        return self._rate_bps

    def one_way_delay_s(self, time_s: float) -> float:
        return self._delay_s

    def loss_rate(self, time_s: float) -> float:
        return self._loss

    def loss_burst(self, time_s: float) -> float:
        return self._burst


class Link:
    """One direction of a path: buffer -> service at capacity -> delay."""

    #: How often to re-poll the schedule while the link rate is zero.
    STALL_POLL_S = 0.02
    #: Packets older than this are flushed while the link is stalled —
    #: radios drop their buffers on detach/reattach rather than delivering
    #: many-seconds-stale data (which would poison TCP's RTT estimator).
    STALL_FLUSH_AGE_S = 2.0

    def __init__(
        self,
        sim: Simulator,
        conditions: ConditionsProvider,
        buffer_bytes: int,
        rng: np.random.Generator,
        name: str = "link",
    ):
        self.sim = sim
        self.conditions = conditions
        self.queue = DropTailQueue(buffer_bytes)
        self.name = name
        self._rng = rng
        self._receiver: Callable[[Packet], None] | None = None
        self._busy = False
        self._burst_until_s = -1.0
        self._last_delivery_s = -1.0
        # Statistics mirroring what tcpdump-style analysis needs.
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.random_losses = 0
        self.packets_sent = 0

    def connect(self, receiver: Callable[[Packet], None]) -> None:
        """Set the delivery callback (the remote endpoint's ingress)."""
        self._receiver = receiver

    def send(self, packet: Packet) -> None:
        """Entry point: enqueue a packet for transmission."""
        if self._receiver is None:
            raise RuntimeError(f"{self.name}: send() before connect()")
        self.packets_sent += 1
        if self.queue.push(packet) and not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        packet = self.queue.peek()
        if packet is None:
            self._busy = False
            return
        rate = self.conditions.rate_bps(self.sim.now)
        if rate <= 0:
            # Outage: hold the queue, flush stale packets, and poll for
            # capacity to return.
            while True:
                head = self.queue.peek()
                if head is None or (
                    self.sim.now - head.sent_time_s <= self.STALL_FLUSH_AGE_S
                ):
                    break
                self.queue.pop()
                self.random_losses += 1
            self._busy = True
            self.sim.schedule(self.STALL_POLL_S, self._serve_next)
            return
        self._busy = True
        tx_time = packet.size_bytes * 8.0 / rate
        self.sim.schedule(tx_time, self._transmission_done)

    def _transmission_done(self) -> None:
        packet = self.queue.pop()
        if packet is not None:
            if self._draw_loss(packet.size_bytes):
                self.random_losses += 1
            else:
                delay = self.conditions.one_way_delay_s(self.sim.now)
                # A pipe is FIFO: when the sampled delay drops between two
                # packets, the later one must not overtake the earlier one
                # (spurious reordering would trigger bogus fast retransmits).
                deliver_at = max(self.sim.now + delay, self._last_delivery_s)
                self._last_delivery_s = deliver_at
                self.sim.schedule_at(
                    deliver_at, lambda p=packet: self._deliver(p)
                )
        self._serve_next()

    def _draw_loss(self, packet_bytes: int) -> bool:
        """Bursty random loss: loss events black the link out briefly.

        Loss parameters are defined per reference MTU (1500 B) so results
        do not depend on the simulation's segment granularity: a segment of
        S bytes triggers events with probability ``p * (S/1500) / B`` and
        each event drops everything for the time a full-rate sender would
        need to send a geometric(1/B) run of reference packets.  For a
        saturating flow this matches a B-packet drop run (average loss p,
        clustered like Starlink handover gaps); for a slow sender the event
        stays a *short time window*, not a packet count it could take
        minutes to drain.
        """
        if self.sim.now < self._burst_until_s:
            return True
        p = self.conditions.loss_rate(self.sim.now)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        burst = max(self.conditions.loss_burst(self.sim.now), 1.0)
        scale = packet_bytes / DEFAULT_MTU_BYTES
        if self._rng.random() >= min(p * scale / burst, 1.0):
            return False
        if burst > 1.0:
            run = float(self._rng.geometric(1.0 / burst)) - 1.0
            rate = self.conditions.rate_bps(self.sim.now)
            if rate > 0 and run > 0:
                self._burst_until_s = (
                    self.sim.now + run * DEFAULT_MTU_BYTES * 8.0 / rate
                )
        return True

    def _deliver(self, packet: Packet) -> None:
        self.bytes_delivered += packet.size_bytes
        self.packets_delivered += 1
        assert self._receiver is not None
        self._receiver(packet)

    @property
    def queue_drops(self) -> int:
        return self.queue.drops


def bdp_bytes(rate_mbps: float, rtt_ms: float) -> int:
    """Bandwidth-delay product in bytes (used for buffer sizing)."""
    if rate_mbps < 0 or rtt_ms < 0:
        raise ValueError("rate and rtt must be non-negative")
    return max(1, int(rate_mbps * 1e6 / 8.0 * rtt_ms / 1000.0))
