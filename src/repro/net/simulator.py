"""Minimal discrete-event simulator.

A binary-heap event loop with stable FIFO ordering for simultaneous events.
All transport and link code in :mod:`repro.transport` and :mod:`repro.emu`
runs on top of this loop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.obs.recorder import get_recorder


class Simulator:
    """Event loop: schedule callbacks at absolute or relative times."""

    def __init__(self, recorder=None):
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._stopped = False
        obs = recorder if recorder is not None else get_recorder()
        self._m_fired = obs.counter("sim.events_fired")
        self._m_cancelled = obs.counter("sim.events_cancelled")
        self._m_heap_max = obs.gauge("sim.heap_depth_max")

    def schedule(self, delay_s: float, callback: Callable[[], None]) -> "EventHandle":
        """Run ``callback`` after ``delay_s`` seconds of simulated time."""
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        return self.schedule_at(self.now + delay_s, callback)

    def schedule_at(self, time_s: float, callback: Callable[[], None]) -> "EventHandle":
        """Run ``callback`` at absolute simulated time ``time_s``."""
        if time_s < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_s} < now {self.now}"
            )
        handle = EventHandle(callback)
        heapq.heappush(self._heap, (time_s, next(self._counter), handle))
        self._m_heap_max.set_max(len(self._heap))
        return handle

    def run(self, until_s: float | None = None) -> None:
        """Process events until the heap drains, time exceeds ``until_s``,
        or :meth:`stop` fires.

        A run cut short by :meth:`stop` leaves ``now`` at the last
        processed event; only a run that exhausts its window (or drains
        the heap under a deadline) fast-forwards the clock to ``until_s``.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            time_s, _, handle = self._heap[0]
            if until_s is not None and time_s > until_s:
                break
            heapq.heappop(self._heap)
            if handle.cancelled:
                self._m_cancelled.inc()
                continue
            self.now = time_s
            handle.fire()
            self._m_fired.inc()
        if until_s is not None and not self._stopped and self.now < until_s:
            self.now = until_s

    def stop(self) -> None:
        """Halt :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)


class EventHandle:
    """Cancellation token for a scheduled event (e.g. a retransmit timer)."""

    __slots__ = ("_callback", "cancelled")

    def __init__(self, callback: Callable[[], None]):
        self._callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self._callback()

    # Heap entries compare on (time, counter); the handle must never be
    # compared, but heapq requires orderability when ties occur without a
    # counter.  The counter guarantees uniqueness, so any comparison that
    # reaches the handle indicates a bug.
    def __lt__(self, other: object) -> bool:  # pragma: no cover
        raise TypeError("EventHandle ordering should never be needed")
