"""Packet-level network substrate: event loop, queues, links, paths."""

from repro.net.link import (
    ConditionsProvider,
    ConditionsSchedule,
    FixedConditions,
    Link,
    bdp_bytes,
)
from repro.net.packet import ACK_SIZE_BYTES, Packet
from repro.net.path import Path
from repro.net.queue import DropTailQueue
from repro.net.simulator import EventHandle, Simulator

__all__ = [
    "ACK_SIZE_BYTES",
    "ConditionsProvider",
    "ConditionsSchedule",
    "DropTailQueue",
    "EventHandle",
    "FixedConditions",
    "Link",
    "Packet",
    "Path",
    "Simulator",
    "bdp_bytes",
]
