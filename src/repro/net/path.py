"""A bidirectional path: a data-direction link plus an ACK-direction link.

Transports talk to a :class:`Path`; the path owns the two :class:`Link`
instances.  For a download test the data direction rides the downlink
conditions and ACKs ride the uplink, and vice versa for uploads.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.conditions import LinkConditions
from repro.net.link import ConditionsProvider, ConditionsSchedule, Link, bdp_bytes
from repro.net.packet import Packet
from repro.net.simulator import Simulator


class Path:
    """Forward (data) and reverse (ACK) links between two endpoints."""

    def __init__(
        self,
        sim: Simulator,
        forward: ConditionsProvider,
        reverse: ConditionsProvider,
        buffer_bytes: int,
        rng: np.random.Generator,
        name: str = "path",
    ):
        self.sim = sim
        self.name = name
        self.forward_link = Link(sim, forward, buffer_bytes, rng, f"{name}.fwd")
        self.reverse_link = Link(sim, reverse, buffer_bytes, rng, f"{name}.rev")

    @classmethod
    def from_links(cls, sim: Simulator, forward_link, reverse_link, name: str = "path") -> "Path":
        """Wrap two pre-built link objects (e.g. MpShell trace links).

        The links must expose the :class:`repro.net.link.Link` interface
        (``send``/``connect``).
        """
        path = cls.__new__(cls)
        path.sim = sim
        path.name = name
        path.forward_link = forward_link
        path.reverse_link = reverse_link
        return path

    @classmethod
    def from_conditions(
        cls,
        sim: Simulator,
        samples: list[LinkConditions],
        rng: np.random.Generator,
        downlink: bool = True,
        buffer_bytes: int | None = None,
        name: str = "path",
    ) -> "Path":
        """Build a path from channel samples for a download/upload test.

        The default buffer is ~6x the mean BDP: both cellular base stations
        and Starlink are famously bufferbloated, and that depth is exactly
        why loss-free paths carry TCP at near-UDP rates in the paper.
        """
        data = ConditionsSchedule(samples, downlink=downlink)
        acks = ConditionsSchedule(samples, downlink=not downlink)
        if buffer_bytes is None:
            live = [s for s in samples if not s.is_outage] or samples
            mean_rate = sum(s.capacity_mbps(downlink) for s in live) / len(live)
            mean_rtt = sum(s.rtt_ms for s in live) / len(live)
            two_seconds = int(mean_rate * 1e6 / 8.0 * 2.0)
            buffer_bytes = int(
                min(
                    max(6 * bdp_bytes(mean_rate, mean_rtt), 32 * 1500),
                    max(two_seconds, 64 * 1500),
                )
            )
        return cls(sim, data, acks, buffer_bytes, rng, name=name)

    def connect(
        self,
        data_receiver: Callable[[Packet], None],
        ack_receiver: Callable[[Packet], None],
    ) -> None:
        """Wire the endpoints: data flows forward, ACKs flow back."""
        self.forward_link.connect(data_receiver)
        self.reverse_link.connect(ack_receiver)

    def send_data(self, packet: Packet) -> None:
        self.forward_link.send(packet)

    def send_ack(self, packet: Packet) -> None:
        self.reverse_link.send(packet)
