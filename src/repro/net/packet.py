"""Packet representation shared by all transports."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_packet_ids = itertools.count()

#: Size of a bare ACK segment (bytes) — header only.
ACK_SIZE_BYTES = 60


@dataclass
class Packet:
    """One simulated packet.

    ``seq`` is the transport-level sequence number in *segments* (not
    bytes); ``data_seq`` is the MPTCP data-level sequence for segments that
    belong to an MPTCP connection (-1 otherwise).
    """

    flow_id: int
    size_bytes: int
    seq: int = -1
    ack: int = -1  # cumulative ack (next expected seq), -1 if not an ack
    data_seq: int = -1
    data_ack: int = -1
    is_ack: bool = False
    sent_time_s: float = 0.0
    #: Advertised receive window (segments) carried on ACKs.
    rwnd: int = 1 << 30
    #: True when this is a retransmission (for accounting parity with
    #: the paper's tcpdump analysis).
    retransmit: bool = False
    #: SACK block [sack_start, sack_end) reported on ACKs (-1 when absent):
    #: the contiguous out-of-order run containing the most recent arrival.
    sack_start: int = -1
    sack_end: int = -1
    #: Echo of the sender's transmission timestamp, for RTT sampling even
    #: on retransmitted sequences (Karn's algorithm made simple).
    timestamp_echo_s: float = -1.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
