"""Flow demultiplexing: share one path among several transport flows.

Parallel iPerf (Figure 7) runs N TCP connections over the same physical
link; the demux routes delivered packets to the right flow by ``flow_id``.
"""

from __future__ import annotations

from typing import Callable

from repro.net.packet import Packet


class Demux:
    """Routes packets to per-flow handlers by ``flow_id``."""

    def __init__(self):
        self._handlers: dict[int, Callable[[Packet], None]] = {}

    def register(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        if flow_id in self._handlers:
            raise ValueError(f"flow {flow_id} already registered")
        self._handlers[flow_id] = handler

    def __call__(self, packet: Packet) -> None:
        handler = self._handlers.get(packet.flow_id)
        if handler is None:
            raise KeyError(f"no handler for flow {packet.flow_id}")
        handler(packet)

    def __len__(self) -> int:
        return len(self._handlers)
