"""Seeded random-number streams.

Every stochastic subsystem (terrain, radio fading, satellite scheduling, ...)
draws from its own named substream so that changing how many samples one
subsystem consumes does not perturb the others.  This keeps campaign output
reproducible under refactoring, which the calibration in ``EXPERIMENTS.md``
depends on.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of independent ``numpy.random.Generator`` substreams.

    Substreams are derived from a root seed plus the stream name, so
    ``RngStreams(7).get("leo")`` is always the same sequence regardless of
    which other streams were requested first.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            root = np.random.SeedSequence(self.seed)
            # Hash the name into spawn keys so the mapping is order-free.
            key = [ord(c) for c in name]
            child = np.random.SeedSequence(
                entropy=root.entropy, spawn_key=tuple(key)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fork(self, salt: int) -> "RngStreams":
        """Derive a new independent family, e.g. one per campaign day."""
        return RngStreams(self.seed * 1_000_003 + salt + 1)
