"""Run a small campaign with observability switched on.

Demonstrates the :mod:`repro.obs` loop end to end:

1. build an :class:`~repro.obs.ObsRecorder` and hand it to the campaign;
2. run with a checkpoint so the :class:`~repro.obs.RunManifest` lands
   next to it;
3. run a packet-level TCP test under the same recorder, so the DES
   event-loop counters land in the same artifact;
4. dump metrics as JSONL and Prometheus text;
5. render the same summary ``python -m repro.obs summary`` prints.

Usage::

    PYTHONPATH=src python examples/observed_campaign.py [--scale smoke|small]
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.core.campaign import Campaign, CampaignConfig
from repro.geo.classify import AreaType
from repro.geo.mobility import VehicleTrace
from repro.leo.channel import StarlinkChannel
from repro.leo.dish import roam_dish
from repro.obs import (
    ObsRecorder,
    RunManifest,
    to_prometheus_text,
    use_recorder,
    write_jsonl,
)
from repro.obs.__main__ import render_summary
from repro.tools.iperf import run_tcp_test


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("smoke", "small"),
        default="smoke",
        help="campaign size (smoke ~7 simulated minutes, small ~65)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = (
        CampaignConfig.small(seed=args.seed)
        if args.scale == "small"
        else CampaignConfig.smoke(seed=args.seed)
    )
    recorder = ObsRecorder()
    campaign = Campaign(config, recorder=recorder)

    out_dir = tempfile.mkdtemp(prefix="observed_campaign_")
    checkpoint = os.path.join(out_dir, "campaign.ckpt.json")
    dataset = campaign.run(checkpoint_path=checkpoint)

    # A packet-level TCP test over a Starlink trace from the same world:
    # the DES loop resolves the installed recorder, so its event counters
    # (sim.events_fired, heap depth, ...) join the campaign's metrics.
    with use_recorder(recorder):
        with recorder.span("example.packet_tcp"):
            channel = StarlinkChannel(
                roam_dish(),
                constellation=campaign.constellation,
                gateways=campaign.gateways,
                places=campaign.places,
                rng=campaign.rng.fork(999),
                recorder=recorder,
            )
            route = campaign.route_generator.interstate_drive(
                "obs-trace", campaign.places.cities()[0], campaign.places.cities()[1]
            )
            trace = VehicleTrace(route, campaign.rng.fork(998))
            samples = [
                channel.sample(m.time_s, m.position, m.speed_kmh, AreaType.SUBURBAN)
                for m in trace.samples[:60]
            ]
            tcp = run_tcp_test(samples, duration_s=60.0, seed=args.seed)
    print(f"packet TCP   : {tcp.throughput_mbps:.1f} Mbps over 60 s of trace")

    # Refresh the manifest so the DES metrics are part of the artifact.
    manifest = RunManifest.from_recorder(
        recorder,
        campaign.config.fingerprint(),
        drives=campaign.manifest.drives if campaign.manifest else [],
        num_tests=dataset.num_tests,
        distance_km=round(dataset.distance_km, 3),
    )
    manifest.save_json(f"{checkpoint}.manifest.json")
    campaign.manifest = manifest

    jsonl_path = os.path.join(out_dir, "campaign.obs.jsonl")
    lines = write_jsonl(recorder, jsonl_path)
    prom_path = os.path.join(out_dir, "campaign.prom")
    with open(prom_path, "w") as handle:
        handle.write(to_prometheus_text(recorder.registry))

    print(f"dataset      : {dataset.num_tests} tests, "
          f"{dataset.distance_km:.1f} km, {dataset.trace_minutes:.0f} device-minutes")
    print(f"checkpoint   : {checkpoint}")
    print(f"manifest     : {checkpoint}.manifest.json")
    print(f"jsonl dump   : {jsonl_path} ({lines} lines)")
    print(f"prometheus   : {prom_path}")
    print()
    assert campaign.manifest is not None
    print(render_summary(campaign.manifest))
    print()
    print("re-render any time with:")
    print(f"    python -m repro.obs summary {checkpoint}.manifest.json")


if __name__ == "__main__":
    main()
