"""What to do about Starlink's loss: parallelism, FEC, smarter scheduling.

The paper diagnoses the problem (bursty satellite loss collapses TCP,
Section 4.1) and names the remedies without building them: TCP
parallelism (Section 4.2), FEC (Section 1), and LEO-aware MPTCP
scheduling (Section 6).  This example runs all three on the same
simulated Starlink channel.

Run:  python examples/loss_mitigation.py
"""

import numpy as np

from repro.experiments.common import collect_conditions
from repro.net.path import Path
from repro.net.simulator import Simulator
from repro.tools.iperf import _default_buffer, run_tcp_test, run_udp_test
from repro.transport.fec import FecConfig, open_fec_flow

DURATION_S = 60
SEGMENT_BYTES = 6000
SEED = 3


def main() -> None:
    print("Collecting a Starlink Mobility channel trace...")
    trace = collect_conditions(duration_s=DURATION_S, seed=SEED)["MOB"]
    live = [s for s in trace if not s.is_outage]
    print(
        f"  trace: mean capacity "
        f"{np.mean([s.downlink_mbps for s in live]):.0f} Mbps, "
        f"{1 - len(live) / len(trace):.0%} outage seconds, "
        f"loss {np.mean([s.loss_rate for s in live]):.2%} "
        f"in bursts of ~{np.mean([s.loss_burst for s in live]):.0f} packets\n"
    )

    udp = run_udp_test(trace, duration_s=float(DURATION_S), segment_bytes=SEGMENT_BYTES)
    print(f"  UDP blast (available bandwidth):   {udp.throughput_mbps:6.1f} Mbps")

    tcp1 = run_tcp_test(trace, duration_s=float(DURATION_S), segment_bytes=SEGMENT_BYTES)
    print(f"  TCP, 1 connection (the problem):   {tcp1.throughput_mbps:6.1f} Mbps")

    tcp8 = run_tcp_test(
        trace, duration_s=float(DURATION_S), parallel=8, segment_bytes=SEGMENT_BYTES
    )
    gain = (tcp8.throughput_mbps / max(tcp1.throughput_mbps, 1e-9) - 1) * 100
    print(
        f"  TCP, 8 connections (Section 4.2):   {tcp8.throughput_mbps:6.1f} Mbps "
        f"({gain:+.0f}% — paper reports >130% at 8P)"
    )

    mean_capacity = np.mean([s.downlink_mbps for s in live])
    sim = Simulator()
    path = Path.from_conditions(
        sim, trace, np.random.default_rng(SEED),
        buffer_bytes=_default_buffer(trace, True),
    )
    sender, receiver = open_fec_flow(
        sim, path, 0.8 * mean_capacity,
        config=FecConfig(data_segments=20, repair_segments=4),
        segment_bytes=SEGMENT_BYTES,
    )
    sender.start()
    sim.run(until_s=float(DURATION_S))
    receiver.finalize(sender.stats.blocks_sent)
    fec_mbps = sender.stats.data_bytes_delivered * 8 / 1e6 / DURATION_S
    print(
        f"  FEC k=20 r=4 at 80% rate (Sec. 1):  {fec_mbps:6.1f} Mbps "
        f"(block loss {sender.stats.block_loss_rate:.1%}, "
        f"{FecConfig(20, 4).overhead:.0%} overhead)"
    )

    print(
        "\nReading: loss-driven congestion control is the bottleneck —"
        " parallel windows and erasure coding both recover most of the"
        " UDP ceiling. For the multipath remedy see"
        " examples/multipath_emulation.py and `python -m repro.experiments"
        " ext-scheduler`."
    )


if __name__ == "__main__":
    main()
