"""Explore the LEO substrate: geometry, visibility, and latency budgets.

A tour of the pieces under the Starlink channel model:

* the paper's Equation 1 (550 km / c = 1.835 ms one way);
* how many satellites a Roam vs a Mobility dish can see over time;
* how obstruction shrinks the usable satellite set;
* the bent-pipe RTT budget through the nearest gateway.

Run:  python examples/constellation_explorer.py
"""


from repro.geo.coords import GeoPoint
from repro.geo.places import PlaceDatabase
from repro.leo import (
    Constellation,
    GatewayNetwork,
    VisibilityModel,
    equation1_one_way_latency_ms,
    mobility_dish,
    roam_dish,
)
from repro.rng import RngStreams

OBSERVER = GeoPoint(44.9, -93.1)  # near the synthetic Minnesota metro


def main() -> None:
    print(
        "Equation 1: one-way latency from a 550 km orbit = "
        f"{equation1_one_way_latency_ms():.3f} ms (paper: 1.835 ms)\n"
    )

    constellation = Constellation()
    shell = constellation.shells[0]
    print(
        f"Constellation: {constellation.num_satellites} satellites, "
        f"{shell.orbital_period_s / 60:.1f} min period, "
        f"{shell.orbital_speed_kmh:,.0f} km/h orbital speed "
        "(the paper's '28,000 km/hour')\n"
    )

    model = VisibilityModel(constellation)
    print("Visible satellites over five minutes (counts at 30 s steps):")
    print(f"{'t':>5} {'Mobility dish':>14} {'Roam dish':>10} {'Roam @60% blocked':>18}")
    for t in range(0, 301, 30):
        mob = model.visible_satellites(OBSERVER, float(t), mobility_dish())
        rm = model.visible_satellites(OBSERVER, float(t), roam_dish())
        rm_blocked = model.visible_satellites(
            OBSERVER, float(t), roam_dish(), obstruction_fraction=0.6
        )
        print(f"{t:>5} {len(mob):>14} {len(rm):>10} {len(rm_blocked):>18}")

    rng = RngStreams(0)
    gateways = GatewayNetwork.synthetic(PlaceDatabase.synthetic(rng), rng)
    best = model.visible_satellites(OBSERVER, 0.0, mobility_dish())[0]
    positions = constellation.positions_ecef_km(0.0)
    rtt = gateways.bent_pipe_rtt_ms(
        OBSERVER, positions[best.index], scheduling_ms=18.0
    )
    print(
        f"\nBent-pipe RTT via the best satellite "
        f"(elev {best.elevation_deg:.0f} deg, range {best.slant_range_km:.0f} km): "
        f"{rtt:.1f} ms — add ~24 ms PoP-to-server and jitter to get the "
        "50-100 ms band of the paper's Figure 4."
    )


if __name__ == "__main__":
    main()
