"""Coverage study: area types, performance levels, network combinations.

Reproduces the paper's Section 5 analysis on a synthetic campaign:

* Figure 8 — UDP downlink throughput by area type (cellular falls toward
  rural areas, Starlink rises);
* Figure 9 — the share of driving covered at each performance level, for
  each network and for the zero-effort switching combinations (BestCL,
  RM+CL, MOB+CL).

Run:  python examples/coverage_study.py
"""

import numpy as np

from repro.core import CampaignConfig, run_campaign
from repro.core.coverage import figure9_shares
from repro.core.dataset import CELLULAR_NETWORKS
from repro.geo.classify import AreaType


def main() -> None:
    print("Running a medium campaign (this takes ~10 s)...")
    dataset = run_campaign(
        CampaignConfig(
            seed=7,
            num_interstate_drives=3,
            num_city_drives=1,
            max_drive_seconds=2000.0,
            test_duration_s=60.0,
            window_period_s=75.0,
        )
    )

    print("\n-- Figure 8: UDP downlink throughput by area type (median Mbps)")
    print(f"{'area':<10} {'cellular':>9} {'starlink MOB':>13}")
    for area in (AreaType.URBAN, AreaType.SUBURBAN, AreaType.RURAL):
        cellular = []
        for carrier in CELLULAR_NETWORKS:
            cellular.extend(
                dataset.filter(
                    network=carrier, protocol="udp", direction="dl", area=area
                ).throughput_samples()
            )
        mob = dataset.filter(
            network="MOB", protocol="udp", direction="dl", area=area
        ).throughput_samples()
        print(
            f"{area.value:<10} {np.median(cellular):>9.1f} {np.median(mob):>13.1f}"
        )

    print("\n-- Figure 9: performance coverage shares")
    print(f"{'network':<8} {'<20':>6} {'20-50':>6} {'50-100':>7} {'>100':>6}")
    for bar in figure9_shares(dataset):
        print(
            f"{bar.name:<8} {bar.very_low:>6.0%} {bar.low:>6.0%} "
            f"{bar.medium:>7.0%} {bar.high:>6.0%}"
        )
    print(
        "\nReading: MOB leads the singles; every '+' combination beats its"
        " components — the paper's case for multipath."
    )


if __name__ == "__main__":
    main()
