"""Fault injection + resilient orchestration: a campaign that survives.

Runs the same small campaign twice — clean, then under a seed-driven
fault schedule (satellite outages, gateway failures, obstruction bursts,
a weather front, cellular sector outages) — and prints what the faults
did to each network plus the campaign report.  Also demonstrates
checkpoint/resume: the faulted campaign writes a JSON checkpoint after
every drive, and re-running from it skips the completed drives.

Run:  python examples/fault_campaign.py
"""

import os
import tempfile

import numpy as np

from repro.core import Campaign, CampaignConfig, NETWORKS
from repro.faults import generate_schedule


def build_config(with_faults: bool) -> CampaignConfig:
    config = CampaignConfig(
        seed=42,
        num_interstate_drives=2,
        num_city_drives=0,
        max_drive_seconds=900.0,
        test_duration_s=30.0,
        window_period_s=40.0,
    )
    if with_faults:
        config.fault_schedule = generate_schedule(
            seed=42,
            num_drives=config.num_drives,
            drive_duration_s=900.0,
            intensity=2.0,
        )
    return config


def mean_udp_dl(dataset, network: str) -> float:
    samples = dataset.filter(
        network=network, protocol="udp", direction="dl"
    ).throughput_samples()
    return float(np.mean(samples)) if samples else 0.0


def main() -> None:
    print("Clean campaign...")
    clean = Campaign(build_config(with_faults=False)).run()

    print("Faulted campaign (checkpointing after every drive)...")
    checkpoint = os.path.join(tempfile.mkdtemp(), "campaign.ckpt.json")
    faulted_campaign = Campaign(build_config(with_faults=True))
    faulted = faulted_campaign.run(checkpoint_path=checkpoint)
    report = faulted_campaign.report

    schedule = faulted_campaign.config.fault_schedule
    print(f"\nScheduled {len(schedule)} fault events:")
    for kind, count in sorted(report.scheduled_faults.items()):
        if count:
            print(f"  {kind:<20} x{count}")

    print(f"\n{'net':<5} {'clean UDP dl':>13} {'faulted UDP dl':>15} {'delta':>8}")
    for network in NETWORKS:
        before = mean_udp_dl(clean, network)
        after = mean_udp_dl(faulted, network)
        delta = (after - before) / before if before else 0.0
        print(f"{network:<5} {before:>13.1f} {after:>15.1f} {delta:>8.1%}")

    print(
        f"\nReport: {report.drives_completed}/{report.drives_total} drives, "
        f"{report.drives_failed} failed, {report.fault_outage_seconds} s of "
        f"forced outage, per-kind fault seconds: {report.fault_seconds}"
    )

    print("\nResuming from the checkpoint (all drives already done)...")
    resumed_campaign = Campaign(build_config(with_faults=True))
    resumed_campaign.run(checkpoint_path=checkpoint)
    print(
        f"Resumed {resumed_campaign.report.drives_resumed}/"
        f"{resumed_campaign.report.drives_total} drives straight from "
        f"{os.path.basename(checkpoint)} — nothing was re-simulated."
    )


if __name__ == "__main__":
    main()
