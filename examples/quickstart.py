"""Quickstart: run a small measurement campaign and print headline stats.

This mirrors the paper's Section 4.1 analysis on a reduced synthetic
campaign: five networks (Starlink Roam + Mobility, AT&T, T-Mobile,
Verizon) tested simultaneously from a simulated drive.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CampaignConfig, NETWORKS, run_campaign


def main() -> None:
    config = CampaignConfig(
        seed=42,
        num_interstate_drives=1,
        num_city_drives=1,
        max_drive_seconds=1200.0,
        test_duration_s=30.0,
        window_period_s=40.0,
    )
    print("Simulating the drive campaign (five devices on the dashboard)...")
    dataset = run_campaign(config)

    print(
        f"\nCampaign: {dataset.num_tests} tests, "
        f"{dataset.distance_km:.0f} km driven, "
        f"{dataset.trace_minutes:.0f} device-minutes of traces"
    )
    print("Area mix:", {a.value: f"{p:.0%}" for a, p in dataset.area_proportions.items()})

    print(f"\n{'net':<5} {'UDP dl mean':>12} {'UDP dl med':>11} {'TCP dl mean':>12} {'ping med ms':>12}")
    for network in NETWORKS:
        udp = dataset.filter(
            network=network, protocol="udp", direction="dl"
        ).throughput_samples()
        tcp = dataset.filter(
            network=network, protocol="tcp", direction="dl", parallel=1
        ).throughput_samples()
        rtt = dataset.filter(network=network, protocol="ping").rtt_samples()
        print(
            f"{network:<5} {np.mean(udp):>12.1f} {np.median(udp):>11.1f} "
            f"{np.mean(tcp):>12.1f} {np.median(rtt):>12.1f}"
        )

    mob_udp = np.mean(
        dataset.filter(network="MOB", protocol="udp", direction="dl").throughput_samples()
    )
    mob_tcp = np.mean(
        dataset.filter(network="MOB", protocol="tcp", direction="dl", parallel=1).throughput_samples()
    )
    print(
        f"\nThe paper's headline gap: Starlink TCP reaches "
        f"{mob_tcp / mob_udp:.0%} of its UDP throughput "
        f"(the paper reports ~1/5) — bursty satellite loss wrecks TCP."
    )


if __name__ == "__main__":
    main()
