"""MPTCP over Starlink + cellular, replayed through MpShell.

Reproduces the paper's Section 6 workflow end to end:

1. collect aligned per-second channel traces for Starlink Mobility and a
   cellular carrier from one simulated drive (the paper uses its measured
   UDP throughput traces);
2. replay each trace as an MpShell virtual interface;
3. run single-path TCP downloads on each interface, then an MPTCP download
   using both — once with default (untuned) buffers and once with buffers
   tuned past 10x the bandwidth-delay product.

Run:  python examples/multipath_emulation.py
"""


from repro.experiments.common import collect_conditions, mean_capacity_mbps
from repro.tools.iperf import run_mptcp_test, run_single_path_over_mpshell

DURATION_S = 120
SEGMENT_BYTES = 6000  # several MTUs per simulated packet; see DESIGN.md


def main() -> None:
    print("Collecting aligned channel traces (MOB + VZ) from one drive...")
    traces = collect_conditions(duration_s=DURATION_S, seed=11)
    combo = {"MOB": traces["MOB"], "VZ": traces["VZ"]}

    singles = {}
    for name in combo:
        result = run_single_path_over_mpshell(
            name,
            combo[name],
            duration_s=float(DURATION_S),
            segment_bytes=SEGMENT_BYTES,
        )
        singles[name] = result.throughput_mbps
        print(f"  single-path TCP over {name:<4}: {result.throughput_mbps:6.1f} Mbps")

    for label, buffer_segments in (("untuned", 40), ("tuned", 8192)):
        result = run_mptcp_test(
            combo,
            duration_s=float(DURATION_S),
            buffer_segments=buffer_segments,
            segment_bytes=SEGMENT_BYTES,
        )
        print(
            f"  MPTCP ({label:>7}, buffer={buffer_segments} segs): "
            f"{result.throughput_mbps:6.1f} Mbps, "
            f"{result.reinjections} reinjections"
        )
        if label == "tuned":
            best = max(singles.values())
            capacity = sum(
                mean_capacity_mbps(tr) for tr in combo.values()
            )
            print(
                f"\nTuned MPTCP vs better path: "
                f"{(result.throughput_mbps / best - 1) * 100:+.0f}% "
                f"(paper: +30%/+66%); aggregate utilization "
                f"{result.throughput_mbps / capacity:.0%} (paper: 81-84%)"
            )


if __name__ == "__main__":
    main()
