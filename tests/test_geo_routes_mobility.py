"""Route generation and vehicle mobility."""

import pytest

from repro.geo.coords import GeoPoint
from repro.geo.mobility import DriverProfile, VehicleTrace
from repro.geo.places import PlaceDatabase
from repro.geo.routes import RoadSegment, Route, RouteGenerator
from repro.rng import RngStreams


@pytest.fixture(scope="module")
def world():
    rng = RngStreams(1)
    places = PlaceDatabase.synthetic(rng)
    return places, RouteGenerator(places, rng)


@pytest.fixture(scope="module")
def interstate(world):
    places, gen = world
    cities = places.cities()
    return gen.interstate_drive("test-drive", cities[0], cities[2])


def test_interstate_connects_cities(world, interstate):
    places, _ = world
    cities = places.cities()
    # Route should start near the origin and pass near the destination.
    from repro.geo.coords import haversine_km

    start = interstate.segments[0].start
    assert haversine_km(start, cities[0].location) < 30.0
    end = interstate.segments[-1].end
    assert haversine_km(end, cities[2].location) < 30.0


def test_route_length_positive(interstate):
    assert interstate.length_km > 50.0


def test_position_at_zero_is_start(interstate):
    pos = interstate.position_at_km(0.0)
    seg0 = interstate.segments[0]
    assert pos.lat_deg == pytest.approx(seg0.start.lat_deg, abs=1e-9)


def test_position_beyond_end_clamps(interstate):
    pos = interstate.position_at_km(interstate.length_km + 100.0)
    assert pos == interstate.segments[-1].end


def test_position_negative_rejected(interstate):
    with pytest.raises(ValueError):
        interstate.position_at_km(-1.0)


def test_segment_speed_limits_mixed(interstate):
    limits = {seg.speed_limit_kmh for seg in interstate.segments}
    assert RouteGenerator.CITY_LIMIT_KMH in limits
    assert RouteGenerator.INTERSTATE_LIMIT_KMH in limits


def test_local_loop_stays_near_center(world):
    places, gen = world
    city = places.cities()[1]
    route = gen.local_loop("loop", city, radius_km=15.0)
    from repro.geo.coords import haversine_km

    for seg in route.segments:
        assert haversine_km(seg.start, city.location) < 60.0


def test_empty_route_position_raises():
    route = Route(name="empty")
    with pytest.raises(ValueError):
        route.position_at_km(0.0)


def test_vehicle_trace_respects_limits(interstate):
    trace = VehicleTrace(interstate, RngStreams(2))
    max_limit = max(seg.speed_limit_kmh for seg in interstate.segments)
    # Allow the driver-noise margin above the posted limit.
    assert all(s.speed_kmh <= max_limit + 20.0 for s in trace.samples)


def test_vehicle_trace_monotone_distance(interstate):
    trace = VehicleTrace(interstate, RngStreams(2))
    kms = [s.route_km for s in trace.samples]
    assert all(b >= a for a, b in zip(kms, kms[1:]))


def test_vehicle_trace_completes_route(interstate):
    trace = VehicleTrace(interstate, RngStreams(2))
    assert trace.distance_km == pytest.approx(interstate.length_km, rel=0.01)


def test_vehicle_trace_time_increments(interstate):
    trace = VehicleTrace(interstate, RngStreams(2))
    times = [s.time_s for s in trace.samples]
    deltas = {round(b - a, 6) for a, b in zip(times, times[1:])}
    assert deltas == {1.0}


def test_vehicle_trace_deterministic(interstate):
    t1 = VehicleTrace(interstate, RngStreams(9))
    t2 = VehicleTrace(interstate, RngStreams(9))
    assert [s.speed_kmh for s in t1.samples] == [s.speed_kmh for s in t2.samples]


def test_driver_profile_affects_speed(interstate):
    slow = VehicleTrace(
        interstate, RngStreams(3), DriverProfile(limit_adherence=0.7)
    )
    fast = VehicleTrace(
        interstate, RngStreams(3), DriverProfile(limit_adherence=1.0)
    )
    assert fast.duration_s < slow.duration_s


def test_bad_sample_period_rejected(interstate):
    with pytest.raises(ValueError):
        VehicleTrace(interstate, RngStreams(0), sample_period_s=0.0)


def test_zero_length_route_rejected():
    p = GeoPoint(45.0, -93.0)
    route = Route("zero", [RoadSegment(p, p, 50.0)])
    with pytest.raises(ValueError):
        VehicleTrace(route, RngStreams(0))
