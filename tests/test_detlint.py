"""detlint: every rule fires on its seeded fixture, suppressions work,
unused suppressions are reported, and src/ itself is clean.

The fixtures in ``tests/detlint_fixtures/`` each contain exactly the
violations their docstring names, at pinned line numbers — if a rule's
detection logic regresses, the (code, line) assertions here catch it.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.tools.detlint import Finding, run_paths
from repro.tools.detlint.__main__ import main
from repro.tools.detlint.engine import module_name_for, parse_suppressions
from repro.tools.detlint.rules import FINGERPRINT_FIELDS, SIM_PACKAGES

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).resolve().parent / "detlint_fixtures"


def codes_and_lines(findings: list[Finding]) -> set[tuple[str, int]]:
    return {(f.code, f.line) for f in findings}


# -- each rule fires on its fixture, with the right code and line --------


@pytest.mark.parametrize(
    ("fixture", "expected"),
    [
        ("det001_rng.py", {("DET001", 3), ("DET001", 9)}),
        ("det002_wallclock.py", {("DET002", 7)}),
        ("det003_setorder.py", {("DET003", 6)}),
        ("det004_entropy.py", {("DET004", 6)}),
        ("det005_mutation.py", {("DET005", 6)}),
        ("det006_barewrite.py", {("DET006", 8), ("DET006", 12)}),
        ("det007_persample.py", {("DET007", 8), ("DET007", 9)}),
        (
            "det008_listing.py",
            {
                ("DET008", 9),
                ("DET008", 14),
                ("DET008", 19),
                ("DET008", 24),
                ("DET008", 28),
            },
        ),
        ("inv101_name.py", {("INV101", 6)}),
        ("inv102_serve_metric.py", {("INV102", 8)}),
    ],
)
def test_rule_fires_on_fixture(fixture: str, expected: set[tuple[str, int]]):
    findings = run_paths([str(FIXTURES / fixture)])
    assert codes_and_lines(findings) == expected


def test_each_fixture_exits_nonzero_via_cli(capsys):
    for fixture in sorted(FIXTURES.glob("det*.py")):
        assert main([str(fixture)]) == 1, fixture.name
    capsys.readouterr()


# -- suppressions --------------------------------------------------------


def test_suppression_silences_finding():
    findings = run_paths([str(FIXTURES / "suppressed_ok.py")])
    assert findings == []


def test_unused_suppression_reported():
    findings = run_paths([str(FIXTURES / "unused_suppression.py")])
    assert codes_and_lines(findings) == {("SUP001", 6)}
    assert "DET001" in findings[0].message


def test_unused_suppression_not_reported_when_rule_deselected():
    # If DET001 never ran, its ignore cannot be judged unused.
    findings = run_paths(
        [str(FIXTURES / "unused_suppression.py")], select=["DET002", "SUP001"]
    )
    assert findings == []


def test_parse_suppressions_multiple_codes():
    lines = ["x = 1  # detlint: ignore[DET001, DET002]", "y = 2"]
    assert parse_suppressions(lines) == {1: {"DET001", "DET002"}}


# -- select/ignore -------------------------------------------------------


def test_select_narrows_rules():
    path = str(FIXTURES / "det001_rng.py")
    assert codes_and_lines(run_paths([path], select=["DET002"])) == set()
    assert len(run_paths([path], select=["DET001"])) == 2


def test_ignore_drops_rules():
    path = str(FIXTURES / "det001_rng.py")
    assert run_paths([path], ignore=["DET001"]) == []


def test_unknown_code_rejected():
    with pytest.raises(ValueError, match="DET999"):
        run_paths([str(FIXTURES)], select=["DET999"])
    assert main([str(FIXTURES), "--select", "DET999"]) == 2


# -- scoping -------------------------------------------------------------


def test_det002_scoped_to_simulation_packages(tmp_path):
    body = "import time\n\n\ndef f():\n    return time.time()\n"
    outside = tmp_path / "outside.py"
    outside.write_text("# detlint-module: repro.obs.recorder\n" + body)
    inside = tmp_path / "inside.py"
    inside.write_text("# detlint-module: repro.leo.channel\n" + body)
    assert run_paths([str(outside)]) == []
    assert {f.code for f in run_paths([str(inside)])} == {"DET002"}
    assert all(pkg.startswith("repro.") for pkg in SIM_PACKAGES)


def test_det001_allows_repro_rng_itself(tmp_path):
    path = tmp_path / "rng.py"
    path.write_text(
        "# detlint-module: repro.rng\n"
        "import numpy as np\n\n\n"
        "def make(seed):\n    return np.random.default_rng(seed)\n"
    )
    assert run_paths([str(path)]) == []


def test_det001_allows_seeded_generator_construction(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# detlint-module: repro.core.mod\n"
        "import numpy as np\n\n\n"
        "def make(seed):\n    return np.random.default_rng(seed)\n"
    )
    assert run_paths([str(path)]) == []


def test_det003_allows_sorted_set(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# detlint-module: repro.core.mod\n"
        "def f(names):\n    return sorted(set(names))\n"
    )
    assert run_paths([str(path)]) == []


def test_det006_exempts_store_writers(tmp_path):
    # repro.store owns the commit protocol; its own primitives may open
    # and write directly — everywhere else must go through them.
    body = (
        "import json\n\n\n"
        "def save(path, payload):\n"
        "    with open(path, 'w') as handle:\n"
        "        json.dump(payload, handle)\n"
    )
    inside = tmp_path / "inside.py"
    inside.write_text("# detlint-module: repro.store.commit\n" + body)
    outside = tmp_path / "outside.py"
    outside.write_text("# detlint-module: repro.core.campaign\n" + body)
    assert run_paths([str(inside)]) == []
    assert {f.code for f in run_paths([str(outside)])} == {"DET006"}


def test_det006_ignores_reads_and_non_json_writes(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# detlint-module: repro.core.mod\n"
        "import json\n\n\n"
        "def load(path):\n"
        "    with open(path) as handle:\n"
        "        return json.load(handle)\n\n\n"
        "def export(path, rows):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write('\\n'.join(rows))\n"
    )
    assert run_paths([str(path)]) == []


def test_det007_scoped_to_hot_packages_with_reference_exempt(tmp_path):
    # The scalar reference pair may walk traces sample-by-sample; code
    # outside repro.core/repro.leo is out of scope entirely.
    body = (
        "def f(samples):\n"
        "    return [s.capacity_mbps(True) for s in samples]\n"
    )
    for module in (
        "repro.core.fluid",
        "repro.core.fastpath.fluid",
        "repro.cellular.capacity",
    ):
        path = tmp_path / (module.replace(".", "_") + ".py")
        path.write_text(f"# detlint-module: {module}\n" + body)
        assert run_paths([str(path)]) == [], module
    hot = tmp_path / "hot.py"
    hot.write_text("# detlint-module: repro.core.analysis\n" + body)
    assert {f.code for f in run_paths([str(hot)])} == {"DET007"}


def test_det007_ignores_non_trace_loops(tmp_path):
    # Loops whose variable never feeds LinkConditions consumption stay
    # clean — the rule keys on the sample API, not on loops as such.
    path = tmp_path / "mod.py"
    path.write_text(
        "# detlint-module: repro.core.mod\n"
        "def f(records, walker):\n"
        "    total = 0.0\n"
        "    for record in records:\n"
        "        total += record.throughput\n"
        "        walker.step()\n"
        "    return total\n"
    )
    assert run_paths([str(path)]) == []


def test_det005_ignores_non_fingerprint_fields(tmp_path):
    # workers/resilience are execution knobs, deliberately outside the
    # fingerprint — mutating them (repro.experiments.common does) is fine.
    path = tmp_path / "mod.py"
    path.write_text(
        "# detlint-module: repro.experiments.mod\n"
        "def f(config):\n    config.workers = 4\n"
    )
    assert run_paths([str(path)]) == []
    assert "workers" not in FINGERPRINT_FIELDS
    assert "resilience" not in FINGERPRINT_FIELDS


# -- INV101 project half -------------------------------------------------


def _write_manifest_pair(tmp_path, wall_clock: str):
    mani = tmp_path / "mani.py"
    mani.write_text(
        "# detlint-module: repro.obs.manifest\n"
        f'WALL_CLOCK_METRICS = frozenset({{"{wall_clock}"}})\n'
        'EXECUTION_METRICS = frozenset({"campaign.drives_resumed"})\n'
        'EXECUTION_METRIC_PREFIXES = ("resilience.",)\n'
    )
    camp = tmp_path / "camp.py"
    camp.write_text(
        "# detlint-module: repro.core.campaign\n"
        "def run(obs):\n"
        '    obs.counter("campaign.drive_seconds")\n'
        '    obs.counter("campaign.drives_resumed")\n'
        '    obs.counter("resilience.retries")\n'
    )
    return [str(mani), str(camp)]


def test_inv101_consistent_manifest_is_clean(tmp_path):
    assert run_paths(_write_manifest_pair(tmp_path, "campaign.drive_seconds")) == []


def test_inv101_flags_stale_exclusion(tmp_path):
    findings = run_paths(_write_manifest_pair(tmp_path, "campaign.ghost"))
    assert [f.code for f in findings] == ["INV101"]
    assert "campaign.ghost" in findings[0].message


def test_inv101_project_check_skipped_on_partial_scan(tmp_path):
    # Linting the manifest alone must not call every exclusion stale.
    paths = _write_manifest_pair(tmp_path, "campaign.ghost")
    assert run_paths([paths[0]]) == []


# -- INV102 --------------------------------------------------------------


def test_inv102_scoped_to_serve_package(tmp_path):
    # Only repro.serve is held to the exclusion contract; the same
    # registration elsewhere is INV101's (shape-only) business.
    body = 'def register(obs):\n    obs.counter("campaign.sneaky_total")\n'
    outside = tmp_path / "outside.py"
    outside.write_text("# detlint-module: repro.core.campaign\n" + body)
    inside = tmp_path / "inside.py"
    inside.write_text("# detlint-module: repro.serve.service\n" + body)
    assert run_paths([str(outside)]) == []
    assert {f.code for f in run_paths([str(inside)])} == {"INV102"}


def test_inv102_accepts_all_exclusion_routes(tmp_path):
    # Prefix match, wall-clock membership, and execution membership all
    # satisfy the contract — the rule reads the live manifest constants.
    path = tmp_path / "mod.py"
    path.write_text(
        "# detlint-module: repro.serve.service\n"
        "def register(obs):\n"
        '    obs.counter("serve.admissions")\n'
        '    obs.gauge("serve.queue_depth")\n'
        '    obs.histogram("serve.job_seconds")\n'
        '    obs.counter("campaign.drive_seconds")\n'
        '    obs.counter("campaign.drives_resumed")\n'
        '    obs.counter("resilience.retries")\n'
        '    obs.counter("store.shards_written")\n'
    )
    assert run_paths([str(path)]) == []


# -- module naming -------------------------------------------------------


def test_module_name_from_path():
    assert module_name_for("src/repro/leo/channel.py") == "repro.leo.channel"
    assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"
    assert module_name_for("/abs/elsewhere/thing.py") == "thing"


def test_module_name_override_comment():
    assert (
        module_name_for("tests/x.py", "# detlint-module: repro.core.y")
        == "repro.core.y"
    )


# -- CLI surface ---------------------------------------------------------


def test_cli_json_format(capsys):
    code = main([str(FIXTURES / "det002_wallclock.py"), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "DET002"
    assert payload["findings"][0]["line"] == 7


def test_cli_clean_exit(capsys, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "DET004", "DET005",
                 "DET006", "DET007", "INV101", "INV102", "SUP001"):
        assert code in out


def test_syntax_error_is_reported(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    findings = run_paths([str(bad)])
    assert [f.code for f in findings] == ["SYN001"]


# -- the repo holds its own invariants -----------------------------------


def test_src_is_clean():
    """The acceptance bar: detlint over src/ finds nothing."""
    findings = run_paths([str(SRC)])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_module_entrypoint_runs_clean_on_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.detlint", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
