"""Statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.analysis import (
    SummaryStats,
    cdf,
    cdf_at,
    group_means,
    improvement_percent,
    speed_bucket,
)


def test_summary_stats_basic():
    stats = SummaryStats.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats.count == 5
    assert stats.mean == 3.0
    assert stats.median == 3.0
    assert stats.minimum == 1.0
    assert stats.maximum == 5.0
    assert stats.p25 == 2.0
    assert stats.p75 == 4.0


def test_summary_stats_empty():
    stats = SummaryStats.from_values([])
    assert stats.count == 0
    assert math.isnan(stats.mean)


def test_cdf_shape():
    xs, ps = cdf([3.0, 1.0, 2.0])
    assert list(xs) == [1.0, 2.0, 3.0]
    assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_cdf_empty():
    xs, ps = cdf([])
    assert len(xs) == 0 and len(ps) == 0


def test_cdf_at():
    values = [10.0, 20.0, 30.0, 40.0]
    assert cdf_at(values, 25.0) == 0.5
    assert cdf_at(values, 5.0) == 0.0
    assert cdf_at(values, 100.0) == 1.0
    assert math.isnan(cdf_at([], 1.0))


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_cdf_monotone(values):
    xs, ps = cdf(values)
    assert list(ps) == sorted(ps)
    assert list(xs) == sorted(xs)
    assert ps[-1] == pytest.approx(1.0)


def test_group_means():
    keys = ["a", "b", "a", "b"]
    values = [1.0, 10.0, 3.0, 20.0]
    means = group_means(keys, values)
    assert means == {"a": 2.0, "b": 15.0}


def test_speed_bucket_edges():
    assert speed_bucket(0.0) == (0, 10)
    assert speed_bucket(9.99) == (0, 10)
    assert speed_bucket(10.0) == (10, 20)
    assert speed_bucket(95.0) == (90, 100)
    assert speed_bucket(150.0) == (90, 100)  # clamped at the paper's cap


def test_speed_bucket_rejects_negative():
    with pytest.raises(ValueError):
        speed_bucket(-1.0)


@given(st.floats(min_value=0.0, max_value=200.0))
def test_speed_bucket_contains_speed(speed):
    lo, hi = speed_bucket(speed)
    assert lo <= min(speed, 99.999)
    assert hi == lo + 10


def test_improvement_percent():
    assert improvement_percent(100.0, 150.0) == pytest.approx(50.0)
    assert improvement_percent(100.0, 80.0) == pytest.approx(-20.0)
    assert math.isnan(improvement_percent(0.0, 10.0))
