"""Transport-level experiment modules (packet simulator; slower).

Reduced durations keep these within unit-test budgets while preserving the
paper's qualitative results.  Seeds pin known-representative drive
segments (see fig modules' defaults).
"""

import numpy as np
import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig5():
    return run_experiment("fig5", duration_s=60, seed=3, segment_bytes=6000)


def test_fig5_starlink_lossier_than_cellular(fig5):
    """Figure 5: Starlink retransmission rates dominate cellular ones."""
    assert fig5.starlink_mean > 1.5 * fig5.cellular_mean
    assert 0.002 <= fig5.starlink_mean <= 0.06


def test_fig5_has_all_bars(fig5):
    assert len(fig5.bars) == 10  # 5 networks x {ul, dl}
    for bar in fig5.bars:
        assert 0.0 <= bar.retransmission_rate <= 0.2


def test_fig7_parallelism_starlink_gains_more():
    result = run_experiment(
        "fig7", duration_s=60, seed=3, segment_bytes=6000, repeats=1
    )
    rm = result.row("RM")
    vz = result.row("VZ")
    # Parallelism helps Starlink substantially (paper: >50 % at 4P).
    assert rm.improvement(8) > 25.0
    # And helps Starlink more than cellular.
    assert rm.improvement(8) > vz.improvement(8)


def test_fig10_mptcp_beats_singles_when_tuned():
    result = run_experiment(
        "fig10", duration_s=120, seed=11, segment_bytes=6000, repeats=1,
        combos=("MOB+VZ",),
    )
    tuned = result.box("MOB+VZ tuned").mean
    untuned = result.box("MOB+VZ untuned").mean
    best_single = max(result.box("MOB").mean, result.box("VZ").mean)
    assert tuned > best_single  # aggregation wins
    assert tuned > untuned  # the paper's buffer-tuning effect
    assert 0.3 <= result.utilization("MOB+VZ") <= 1.0


def test_fig11_mptcp_tracks_best_path():
    result = run_experiment(
        "fig11", duration_s=120, seed=11, segment_bytes=6000,
        combos=("MOB+VZ",),
    )
    panel = result.panel("MOB+VZ")
    assert set(panel.series) == {"MOB", "VZ", "MPTCP"}
    assert panel.mptcp_at_least_best_fraction > 0.5
    mptcp_mean = np.mean(panel.series["MPTCP"])
    best_single_mean = max(
        np.mean(panel.series["MOB"]), np.mean(panel.series["VZ"])
    )
    assert mptcp_mean > 0.9 * best_single_mean
