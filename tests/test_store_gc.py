"""DriveCache bounding: deterministic oldest-first eviction + gc CLI."""

import os

import pytest

from repro.store import CacheEntry, DriveCache
from repro.store.__main__ import main as store_main


def _fill(cache, fingerprint, drive_ids, *, base_mtime=1_000_000_000):
    """Write entries with controlled, strictly increasing mtimes."""
    for offset, drive_id in enumerate(drive_ids):
        cache.put(fingerprint, drive_id, [{"v": drive_id}], {"n": drive_id})
        path = cache.entry_path(fingerprint, drive_id)
        stamp = base_mtime + offset
        os.utime(path, (stamp, stamp))


def test_unbounded_cache_never_evicts(tmp_path):
    cache = DriveCache(tmp_path)
    _fill(cache, "fp", range(4))
    result = cache.gc()
    assert result.evicted == []
    assert result.bytes_after == result.bytes_before == cache.total_bytes()
    assert len(cache.entries()) == 4


def test_gc_evicts_oldest_first_by_mtime(tmp_path):
    cache = DriveCache(tmp_path)
    _fill(cache, "fp", range(4))
    entry_size = cache.entries()[0].size_bytes
    # Keep room for exactly two entries: the two oldest must go.
    result = cache.gc(max_bytes=2 * entry_size)
    assert [e.relpath for e in result.evicted] == [
        "fp/drive-00000.jsonl",
        "fp/drive-00001.jsonl",
    ]
    assert result.bytes_after == 2 * entry_size
    assert result.bytes_freed == 2 * entry_size
    assert [e.relpath for e in cache.entries()] == [
        "fp/drive-00002.jsonl",
        "fp/drive-00003.jsonl",
    ]
    # The survivors still read back verified.
    payload, quarantined = cache.get("fp", 3)
    assert quarantined is None
    assert payload["records"] == [{"v": 3}]


def test_gc_ties_break_on_path(tmp_path):
    cache = DriveCache(tmp_path)
    # Same mtime everywhere: eviction order must fall back to relpath.
    for fingerprint in ("fp-b", "fp-a"):
        cache.put(fingerprint, 0, [{"v": 0}], {})
        path = cache.entry_path(fingerprint, 0)
        os.utime(path, (1_000_000_000, 1_000_000_000))
    entry_size = cache.entries()[0].size_bytes
    result = cache.gc(max_bytes=entry_size)
    assert [e.relpath for e in result.evicted] == ["fp-a/drive-00000.jsonl"]
    # The emptied fingerprint directory is pruned.
    assert sorted(os.listdir(tmp_path)) == ["fp-b"]


def test_gc_dry_run_reports_without_deleting(tmp_path):
    cache = DriveCache(tmp_path)
    _fill(cache, "fp", range(3))
    before = cache.total_bytes()
    result = cache.gc(max_bytes=0, dry_run=True)
    assert len(result.evicted) == 3
    assert result.bytes_after == 0
    assert cache.total_bytes() == before
    assert len(cache.entries()) == 3


def test_gc_sweeps_tmp_debris(tmp_path):
    cache = DriveCache(tmp_path)
    _fill(cache, "fp", [0])
    debris = tmp_path / "fp" / "drive-00007.jsonl.tmp"
    debris.write_bytes(b"half-written entry a SIGKILL left behind")
    result = cache.gc()
    assert result.tmp_removed == ["fp/drive-00007.jsonl.tmp"]
    assert not debris.exists()
    assert result.evicted == []
    # Debris is not an entry: it never counts toward the bound.
    assert len(cache.entries()) == 1


def test_bounded_put_triggers_eviction(tmp_path):
    probe = DriveCache(tmp_path)
    _fill(probe, "fp", [0])
    entry_size = probe.entries()[0].size_bytes

    cache = DriveCache(tmp_path, max_bytes=2 * entry_size)
    _fill(cache, "fp", range(1, 4), base_mtime=1_500_000_000)
    # Four puts against a two-entry budget: only the newest two survive.
    # (put() stamps real clock mtimes; the probe entry is oldest, then
    # each _fill backdates below the next put's clock, so insertion
    # order is eviction order.)
    assert [e.relpath for e in cache.entries()] == [
        "fp/drive-00002.jsonl",
        "fp/drive-00003.jsonl",
    ]


def test_negative_max_bytes_rejected(tmp_path):
    with pytest.raises(ValueError):
        DriveCache(tmp_path, max_bytes=-1)


def test_cache_entry_sort_key():
    older = CacheEntry(relpath="b/x.jsonl", size_bytes=1, mtime_ns=10)
    newer = CacheEntry(relpath="a/x.jsonl", size_bytes=1, mtime_ns=20)
    tied = CacheEntry(relpath="a/y.jsonl", size_bytes=1, mtime_ns=10)
    assert sorted([newer, tied, older], key=lambda e: e.sort_key) == [
        tied,
        older,
        newer,
    ]


def test_gc_cli_end_to_end(tmp_path, capsys):
    cache = DriveCache(tmp_path)
    _fill(cache, "fp", range(3))
    entry_size = cache.entries()[0].size_bytes
    (tmp_path / "fp" / "junk.jsonl.tmp").write_bytes(b"debris")

    code = store_main(
        ["gc", "--cache-dir", str(tmp_path), "--max-bytes", str(entry_size),
         "--dry-run"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "would evict fp/drive-00000.jsonl" in out
    assert "would evict fp/drive-00001.jsonl" in out
    assert len(cache.entries()) == 3  # dry run touched nothing

    code = store_main(
        ["gc", "--cache-dir", str(tmp_path), "--max-bytes", str(entry_size)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "evicted fp/drive-00000.jsonl" in out
    assert "removed debris fp/junk.jsonl.tmp" in out
    assert f"{entry_size} bytes retained" in out
    assert [e.relpath for e in cache.entries()] == ["fp/drive-00002.jsonl"]
