"""Self-healing campaign execution: retries, watchdog, integrity.

The contract under test: the healing machinery is invisible in the
artifacts.  A run that survives transient drive failures, a hung drive
the watchdog kills and requeues, and a corrupted-then-salvaged
checkpoint produces a dataset, checkpoint, report, and deterministic
manifest byte-identical to a clean serial run — while every healing
event is visible in the obs snapshot and ``CampaignReport.resilience``.

Worker-side failure injection patches ``Campaign._simulate_drive`` at
class level (the pool's fork workers inherit it), keyed off
``campaign.current_attempt`` so only chosen attempts fail.
"""

import json
import os
import signal
import time

import pytest

from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    _load_checkpoint,
    _write_checkpoint,
)
from repro.core.dataset import DriveDataset
from repro.obs import ObsRecorder
from repro.resilience import (
    ArtifactCorruptError,
    CampaignAborted,
    CheckpointCorruptError,
    DriveTimeout,
    FailureClass,
    ResilienceConfig,
    RetryPolicy,
    TransientDriveError,
    WorkerDied,
    classify_exception,
    classify_failure,
    embed_digest,
    payload_digest,
    quarantine,
    salvage_drives,
    verify_digest,
)
from repro.rng import RngStreams


def _config(seed=11, drives=2, **overrides):
    base = dict(
        seed=seed,
        num_interstate_drives=drives,
        num_city_drives=0,
        max_drive_seconds=240.0,
        test_duration_s=30.0,
        window_period_s=40.0,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _fast_resilience(**overrides):
    base = dict(retry=RetryPolicy(max_attempts=3, base_delay_s=0.01))
    base.update(overrides)
    return ResilienceConfig(**base)


# -- taxonomy ------------------------------------------------------------


def test_failure_classification():
    assert classify_exception(TimeoutError("t")) is FailureClass.TRANSIENT
    assert classify_exception(ConnectionResetError("r")) is FailureClass.TRANSIENT
    assert classify_exception(TransientDriveError("x")) is FailureClass.TRANSIENT
    assert classify_exception(DriveTimeout("d")) is FailureClass.TRANSIENT
    assert classify_exception(WorkerDied("w")) is FailureClass.TRANSIENT
    assert classify_exception(OSError("disk")) is FailureClass.TRANSIENT
    assert classify_exception(ValueError("bad config")) is FailureClass.PERMANENT
    assert classify_exception(KeyError("k")) is FailureClass.PERMANENT
    # By type name (how worker-side failures travel).
    assert classify_failure("BrokenPipeError") is FailureClass.TRANSIENT
    assert classify_failure("DriveTimeout") is FailureClass.TRANSIENT
    assert classify_failure("ZeroDivisionError") is FailureClass.PERMANENT


def test_campaign_aborted_is_keyboard_interrupt():
    """Drive isolation catches Exception; an abort must escape it."""
    assert issubclass(CampaignAborted, KeyboardInterrupt)
    assert issubclass(CheckpointCorruptError, ArtifactCorruptError)
    assert issubclass(ArtifactCorruptError, ValueError)


# -- retry policy --------------------------------------------------------


def test_retry_policy_backoff_deterministic():
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.5, backoff=2.0, jitter=0.1)
    rng_a = RngStreams(3).get("resilience.retry.0")
    rng_b = RngStreams(3).get("resilience.retry.0")
    delays_a = [policy.delay_s(i, rng_a) for i in (1, 2, 3)]
    delays_b = [policy.delay_s(i, rng_b) for i in (1, 2, 3)]
    assert delays_a == delays_b  # same seeded stream, same pacing
    # Exponential shape survives the +/-10% jitter.
    assert 0.45 <= delays_a[0] <= 0.55
    assert 0.9 <= delays_a[1] <= 1.1
    assert 1.8 <= delays_a[2] <= 2.2


def test_retry_policy_caps_and_validates():
    policy = RetryPolicy(base_delay_s=10.0, backoff=10.0, max_delay_s=25.0, jitter=0.0)
    assert policy.delay_s(3) == 25.0
    assert RetryPolicy(max_attempts=1).max_retries == 0
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        ResilienceConfig(drive_timeout_s=0)
    with pytest.raises(ValueError):
        ResilienceConfig(heartbeat_timeout_s=0.1, heartbeat_interval_s=0.5)
    with pytest.raises(ValueError):
        CampaignConfig(resilience="retry please")


def test_resilience_excluded_from_fingerprint():
    """Healed checkpoints must resume under any resilience setting."""
    assert (
        _config().fingerprint()
        == _config(resilience=_fast_resilience()).fingerprint()
    )


# -- integrity primitives ------------------------------------------------


def test_payload_digest_ignores_embedded_digest():
    payload = {"b": 2, "a": [1.5, "x"]}
    digest = payload_digest(payload)
    embed_digest(payload)
    assert payload["digest"] == digest
    assert payload_digest(payload) == digest  # digest key excluded
    assert verify_digest(payload)
    payload["a"][0] = 1.6
    assert not verify_digest(payload)
    assert verify_digest({"no": "digest"})  # absent digest: legacy pass


def test_quarantine_moves_file_aside(tmp_path):
    victim = tmp_path / "ckpt.json"
    victim.write_text("{broken")
    target = quarantine(victim)
    assert target == f"{victim}.corrupt"
    assert not victim.exists()
    assert (tmp_path / "ckpt.json.corrupt").read_text() == "{broken"


def test_quarantine_never_clobbers_earlier_evidence(tmp_path):
    victim = tmp_path / "ckpt.json"
    targets = []
    for generation in range(3):
        victim.write_text(f"{{broken-{generation}")
        targets.append(quarantine(victim))
    assert targets == [
        f"{victim}.corrupt",
        f"{victim}.corrupt.1",
        f"{victim}.corrupt.2",
    ]
    # Every quarantined generation survives, none overwritten.
    for generation, target in enumerate(targets):
        assert open(target).read() == f"{{broken-{generation}"


def test_salvage_recovers_only_digest_valid_drives(tmp_path):
    good = embed_digest({"records": [{"r": 1}], "trace_minutes": 1.0})
    tampered = embed_digest({"records": [{"r": 2}], "trace_minutes": 2.0})
    tampered["trace_minutes"] = 99.0  # modified after digesting
    undigested = {"records": [{"r": 3}]}
    path = tmp_path / "c.json"
    path.write_text(
        json.dumps(
            {
                "version": 2,
                "fingerprint": "fp",
                "drives": {"0": good, "1": tampered, "2": undigested},
            }
        )
    )
    out = salvage_drives(path, "fp")
    assert set(out) == {0}
    assert out[0]["records"] == [{"r": 1}]
    assert "digest" not in out[0]
    # Wrong fingerprint: refuse everything.
    assert salvage_drives(path, "other") == {}


def test_salvage_reads_truncated_json(tmp_path):
    drives = {
        str(i): embed_digest({"records": [{"r": i}], "trace_minutes": float(i)})
        for i in range(3)
    }
    text = json.dumps({"version": 2, "fingerprint": "fp", "drives": drives})
    # Cut through the final drive entry: 0 and 1 stay complete.
    cut = text.rindex('"2"') + 20
    path = tmp_path / "trunc.json"
    path.write_text(text[:cut])
    out = salvage_drives(path, "fp")
    assert set(out) == {0, 1}


# -- checkpoint durability and validation (satellites a, b) --------------


def _dummy_payloads():
    return {
        0: {
            "records": [],
            "trace_minutes": 1.0,
            "distance_km": 2.0,
            "area_counts": {},
            "fault_seconds": {},
            "fault_outage_seconds": 0,
        }
    }


def test_write_checkpoint_failure_leaves_no_tmp_and_keeps_previous(
    tmp_path, monkeypatch
):
    path = tmp_path / "ck.json"
    _write_checkpoint(path, "fp", _dummy_payloads())
    before = path.read_bytes()

    def explode(fd):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("repro.store.commit.os.fsync", explode)
    with pytest.raises(OSError):
        _write_checkpoint(path, "fp", _dummy_payloads())
    assert path.read_bytes() == before  # previous checkpoint intact
    assert list(tmp_path.iterdir()) == [path]  # no .tmp litter


def test_load_checkpoint_rejects_truncated_json(tmp_path):
    path = tmp_path / "ck.json"
    _write_checkpoint(path, "fp", _dummy_payloads())
    path.write_text(path.read_text()[:50])
    with pytest.raises(CheckpointCorruptError, match="not valid JSON"):
        _load_checkpoint(path, "fp")


def test_load_checkpoint_rejects_missing_keys(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({"fingerprint": "fp"}))
    with pytest.raises(CheckpointCorruptError, match="missing required keys"):
        _load_checkpoint(path, "fp")


def test_load_checkpoint_rejects_tampering(tmp_path):
    path = tmp_path / "ck.json"
    _write_checkpoint(path, "fp", _dummy_payloads())
    payload = json.loads(path.read_text())
    payload["drives"]["0"]["distance_km"] = 4000.0
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointCorruptError, match="digest"):
        _load_checkpoint(path, "fp")


def test_load_checkpoint_version_and_fingerprint_still_value_errors(tmp_path):
    """Operator error (old version, wrong config) must not be mistaken
    for corruption — salvage would paper over it."""
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({"version": 99, "fingerprint": "x", "drives": {}}))
    with pytest.raises(ValueError, match="version") as excinfo:
        _load_checkpoint(path, "x")
    assert not isinstance(excinfo.value, CheckpointCorruptError)

    _write_checkpoint(path, "fp-a", _dummy_payloads())
    with pytest.raises(ValueError, match="different") as excinfo:
        _load_checkpoint(path, "fp-b")
    assert not isinstance(excinfo.value, CheckpointCorruptError)


def test_checkpoint_round_trip_verifies(tmp_path):
    path = tmp_path / "ck.json"
    _write_checkpoint(path, "fp", _dummy_payloads())
    loaded = _load_checkpoint(path, "fp")
    assert set(loaded) == {0}
    assert loaded[0]["distance_km"] == 2.0
    assert "digest" not in loaded[0]


def test_dataset_and_manifest_digests(tmp_path):
    recorder = ObsRecorder()
    campaign = Campaign(_config(drives=1), recorder=recorder)
    ckpt = tmp_path / "ck.json"
    dataset = campaign.run(checkpoint_path=ckpt)

    data = tmp_path / "d.json"
    dataset.save_json(data)
    reloaded = DriveDataset.load_json(data)  # digest verifies
    assert reloaded.num_tests == dataset.num_tests
    payload = json.loads(data.read_text())
    payload["distance_km"] += 1.0
    data.write_text(json.dumps(payload))
    with pytest.raises(ArtifactCorruptError, match="digest"):
        DriveDataset.load_json(data)

    from repro.obs import RunManifest

    manifest_path = tmp_path / "ck.json.manifest.json"
    assert manifest_path.exists()
    RunManifest.load_json(manifest_path)  # digest verifies
    raw = json.loads(manifest_path.read_text())
    raw["fingerprint"] = "tampered"
    manifest_path.write_text(json.dumps(raw))
    with pytest.raises(ArtifactCorruptError, match="digest"):
        RunManifest.load_json(manifest_path)


# -- serial retries ------------------------------------------------------


#: The pristine drive simulator, captured before any test patches it.
_ORIGINAL_SIMULATE = Campaign._simulate_drive


class _Hang:
    """Marker: instead of raising, park the attempt until the watchdog
    kills the worker."""


def _flaky_simulate(fail_on):
    """A ``_simulate_drive`` wrapper misbehaving per (drive_id, attempt).

    Values in ``fail_on`` are exceptions to raise or :class:`_Hang` to
    sleep forever.  Patched onto the class so the supervised pool's
    fork workers inherit it.
    """

    def flaky(self, drive_id, route):
        exc = fail_on.get((drive_id, self.current_attempt))
        if isinstance(exc, _Hang):
            time.sleep(600.0)  # parked until the watchdog SIGKILLs us
        if exc is not None:
            raise exc
        return _ORIGINAL_SIMULATE(self, drive_id, route)

    return flaky


def test_serial_retry_heals_transient_failure(tmp_path):
    reference = Campaign(_config()).run()
    ref_json = tmp_path / "ref.json"
    reference.save_json(ref_json)

    recorder = ObsRecorder()
    config = _config(resilience=_fast_resilience())
    campaign = Campaign(config, recorder=recorder)
    Campaign._simulate_drive = _flaky_simulate(
        {(1, 0): ConnectionResetError("transient uplink glitch")}
    )
    try:
        dataset = campaign.run()
    finally:
        Campaign._simulate_drive = _ORIGINAL_SIMULATE
    healed_json = tmp_path / "healed.json"
    dataset.save_json(healed_json)

    assert healed_json.read_bytes() == ref_json.read_bytes()
    assert campaign.report.ok
    assert campaign.report.resilience["retries"] == 1
    assert (
        recorder.registry.value(
            "resilience.retries", kind="ConnectionResetError"
        )
        == 1
    )
    [attempts] = recorder.registry.by_name("resilience.drive_attempts")
    assert attempts.count == 2  # one retried drive + one clean


def test_serial_permanent_failure_not_retried():
    recorder = ObsRecorder()
    campaign = Campaign(_config(resilience=_fast_resilience()), recorder=recorder)
    Campaign._simulate_drive = _flaky_simulate(
        {
            (0, 0): ValueError("bad geometry"),
            (0, 1): ValueError("bad geometry"),
            (0, 2): ValueError("bad geometry"),
        }
    )
    try:
        campaign.run()
    finally:
        Campaign._simulate_drive = _ORIGINAL_SIMULATE
    assert campaign.report.resilience["retries"] == 0
    [failure] = campaign.report.failures
    assert failure.drive_id == 0
    assert failure.error_type == "ValueError"


def test_serial_retry_budget_exhausted():
    recorder = ObsRecorder()
    campaign = Campaign(
        _config(drives=1, resilience=_fast_resilience()), recorder=recorder
    )
    Campaign._simulate_drive = _flaky_simulate(
        {(0, a): TimeoutError(f"attempt {a}") for a in range(5)}
    )
    try:
        campaign.run()
    finally:
        Campaign._simulate_drive = _ORIGINAL_SIMULATE
    assert campaign.report.resilience["retries"] == 2  # max_attempts=3
    [failure] = campaign.report.failures
    assert failure.error_type == "TimeoutError"
    assert failure.message == "attempt 2"  # the last attempt's error


def test_abort_is_not_swallowed_by_retry():
    campaign = Campaign(_config(drives=1, resilience=_fast_resilience()))
    Campaign._simulate_drive = _flaky_simulate(
        {(0, 0): CampaignAborted("operator interrupt")}
    )
    try:
        with pytest.raises(CampaignAborted):
            campaign.run()
    finally:
        Campaign._simulate_drive = _ORIGINAL_SIMULATE


# -- graceful shutdown ---------------------------------------------------


def test_sigterm_checkpoints_then_aborts_and_resumes(tmp_path):
    ref = tmp_path / "ref.json"
    Campaign(_config()).run().save_json(ref)

    original = Campaign._simulate_drive

    def signalling(self, drive_id, route):
        payload = original(self, drive_id, route)
        if drive_id == 0:
            os.kill(os.getpid(), signal.SIGTERM)
        return payload

    ckpt = tmp_path / "ck.json"
    campaign = Campaign(_config())
    Campaign._simulate_drive = signalling
    try:
        with pytest.raises(CampaignAborted, match="checkpointed"):
            campaign.run(checkpoint_path=ckpt)
    finally:
        Campaign._simulate_drive = original

    # Drive 0 survived to the checkpoint; the handler was uninstalled.
    assert set(_load_checkpoint(ckpt, _config().fingerprint())) == {0}
    assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL

    resumed = Campaign(_config())
    out = tmp_path / "resumed.json"
    resumed.run(checkpoint_path=ckpt).save_json(out)
    assert out.read_bytes() == ref.read_bytes()
    assert resumed.report.drives_resumed == 1


# -- corrupt checkpoint: quarantine + salvage + resume -------------------


def test_corrupt_checkpoint_quarantined_salvaged_resumed(tmp_path):
    # Instrumented on both sides: checkpoint entries carry per-drive
    # metric snapshots, and salvage must restore them byte-for-byte.
    config = _config(drives=3)
    ref = tmp_path / "ref.json"
    ref_ckpt = tmp_path / "ref.ck.json"
    Campaign(config, recorder=ObsRecorder()).run(
        checkpoint_path=ref_ckpt
    ).save_json(ref)

    # Truncate a copy mid-way through the last drive: drives 0-1 stay
    # digest-valid, drive 2 is cut through.
    ckpt = tmp_path / "ck.json"
    text = ref_ckpt.read_text()
    ckpt.write_text(text[: text.rindex('"2"') + 40])

    recorder = ObsRecorder()
    campaign = Campaign(config, recorder=recorder)
    out = tmp_path / "healed.json"
    campaign.run(checkpoint_path=ckpt).save_json(out)

    assert out.read_bytes() == ref.read_bytes()
    assert ckpt.read_bytes() == ref_ckpt.read_bytes()  # rewritten clean
    assert (tmp_path / "ck.json.corrupt").exists()
    res = campaign.report.resilience
    assert res["integrity_failures"] == 1
    assert res["drives_salvaged"] == 2
    assert res["checkpoint_quarantined"] == str(ckpt) + ".corrupt"
    assert "not valid JSON" in res["checkpoint_error"]
    assert campaign.report.drives_resumed == 2
    assert (
        recorder.registry.value(
            "resilience.integrity_failures", artifact="checkpoint"
        )
        == 1
    )
    assert recorder.registry.value("resilience.drives_salvaged") == 2


# -- the keystone: golden equivalence under adversity --------------------


@pytest.mark.parametrize("workers", [2])
def test_adversity_run_byte_identical_to_clean(tmp_path, workers):
    """Transient worker failure + hung drive (watchdog-killed, requeued)
    + corrupted-then-salvaged checkpoint, all in one parallel run —
    dataset, checkpoint, report, and deterministic manifest match a
    clean serial run byte for byte, and every healing event is visible
    in the obs snapshot."""
    config = _config(drives=3)

    # Clean serial reference.
    ref_rec = ObsRecorder()
    reference = Campaign(config, recorder=ref_rec)
    ref_ckpt = tmp_path / "ref.ck.json"
    ref_data = tmp_path / "ref.json"
    reference.run(checkpoint_path=ref_ckpt).save_json(ref_data)
    ref_report = reference.report.to_dict()

    # Seed a corrupted checkpoint: drive 0 salvageable, the rest cut.
    ckpt = tmp_path / "adv.ck.json"
    text = ref_ckpt.read_text()
    ckpt.write_text(text[: text.rindex('"1"') + 30])

    adv_config = _config(
        drives=3,
        workers=workers,
        resilience=_fast_resilience(
            drive_timeout_s=20.0, poll_interval_s=0.02
        ),
    )
    adv_rec = ObsRecorder()
    campaign = Campaign(adv_config, recorder=adv_rec)
    Campaign._simulate_drive = _flaky_simulate(
        {
            # Transient failure on drive 1's first attempt.
            (1, 0): BrokenPipeError("worker lost its socket"),
            # Drive 2's first attempt hangs past the 20 s deadline.
            (2, 0): _Hang(),
        }
    )
    try:
        adv_data = tmp_path / "adv.json"
        campaign.run(checkpoint_path=ckpt).save_json(adv_data)
    finally:
        Campaign._simulate_drive = _ORIGINAL_SIMULATE

    # Artifacts: byte-identical to the clean run.
    assert adv_data.read_bytes() == ref_data.read_bytes()
    assert ckpt.read_bytes() == ref_ckpt.read_bytes()
    assert (
        campaign.manifest.deterministic_blob()
        == reference.manifest.deterministic_blob()
    )
    adv_report = campaign.report.to_dict()
    for report in (ref_report, adv_report):
        report.pop("checkpoint_path")
        report.pop("resilience")
        report.pop("drives_resumed")
    assert adv_report == ref_report

    # Healing events: all visible.
    res = campaign.report.resilience
    assert res["retries"] >= 2  # the broken pipe + the killed attempt
    assert res["watchdog_kills"] >= 1
    assert res["integrity_failures"] == 1
    assert res["drives_salvaged"] == 1
    snapshot = {entry["name"] for entry in adv_rec.registry.snapshot()}
    assert "resilience.retries" in snapshot
    assert "resilience.watchdog_kills" in snapshot
    assert "resilience.drive_attempts" in snapshot
    assert adv_rec.registry.value("resilience.drives_salvaged") == 1
