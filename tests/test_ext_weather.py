"""Weather-sensitivity extension experiment."""

import pytest

from repro.experiments import run_experiment
from repro.leo.channel import CLEAR, RAIN, SNOW


@pytest.fixture(scope="module")
def result():
    return run_experiment("ext-weather", duration_s=240, seed=3)


def test_weather_states_ordered(result):
    clear = result.row("clear")
    rain = result.row("rain")
    snow = result.row("snow")
    # Attenuation ordering: clear > rain > snow capacity.
    assert clear.mean_mbps > rain.mean_mbps > snow.mean_mbps
    # Rain/snow add loss.
    assert rain.mean_loss > clear.mean_loss
    assert snow.mean_loss > rain.mean_loss


def test_weather_impact_moderate_not_catastrophic(result):
    """Section 3.3's implicit finding: weather changes performance but does
    not break the service (the paper folds it into minor factors)."""
    clear = result.row("clear")
    snow = result.row("snow")
    assert snow.mean_mbps > 0.5 * clear.mean_mbps
    # Obstruction/outage pattern is geometry-driven, not weather-driven.
    assert snow.outage_share == pytest.approx(clear.outage_share, abs=0.05)


def test_weather_state_constants():
    assert CLEAR.capacity_factor == 1.0
    assert SNOW.capacity_factor < RAIN.capacity_factor < 1.0
    assert CLEAR.extra_loss == 0.0
