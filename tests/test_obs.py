"""The repro.obs observability subsystem.

Covers the metric/tracer primitives, the recorder duck type, exporter
round-trips, the run manifest, the CLI, and — most importantly — the two
guarantees instrumentation makes to the pipeline: determinism is
untouched (instrumented runs are byte-identical) and the disabled
default is effectively free.
"""

import json
import time

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.dataset import NETWORKS, record_to_dict
from repro.net.simulator import Simulator
from repro.obs import (
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    ObsRecorder,
    RunManifest,
    SpanTracer,
    get_recorder,
    parse_prometheus_text,
    read_jsonl,
    set_recorder,
    to_prometheus_text,
    use_recorder,
    write_jsonl,
)
from repro.obs.__main__ import main as obs_main, render_summary
from repro.transport.mptcp.scheduler import Blest, SatAware, make_scheduler


# -- metrics primitives --------------------------------------------------


def test_counter_semantics():
    reg = MetricsRegistry()
    c = reg.counter("events")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_max():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(4)
    g.set_max(2)
    assert g.value == 4.0
    g.set_max(9)
    assert g.value == 9.0


def test_histogram_buckets_and_cumulation():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0, 10.0))
    for v in (0.5, 0.7, 5.0, 100.0):
        h.observe(v)
    assert h.counts == [2, 1, 1]  # <=1, <=10, +Inf
    assert h.cumulative_counts() == [2, 3, 4]
    assert h.count == 4
    assert h.total == pytest.approx(106.2)
    assert h.mean == pytest.approx(106.2 / 4)


def test_registry_identity_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("x", network="RM")
    b = reg.counter("x", network="RM")
    c = reg.counter("x", network="MOB")
    assert a is b
    assert a is not c
    a.inc(3)
    assert reg.value("x", network="RM") == 3.0
    assert reg.value("x", network="MOB") == 0.0
    assert reg.value("never.touched") == 0.0
    assert len(reg.by_name("x")) == 2


def test_registry_snapshot_restore_round_trip():
    reg = MetricsRegistry()
    reg.counter("c", k="v").inc(7)
    reg.gauge("g").set(1.25)
    h = reg.histogram("h", buckets=(1.0, 2.0))
    h.observe(0.5)
    h.observe(9.0)
    clone = MetricsRegistry()
    clone.restore(reg.snapshot())
    assert clone.snapshot() == reg.snapshot()


# -- tracer --------------------------------------------------------------


def test_spans_nest_with_depth_and_parent():
    tracer = SpanTracer()
    with tracer.span("outer"):
        with tracer.span("inner", drive="0"):
            pass
    inner, outer = tracer.spans
    assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
    assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
    assert inner.meta == {"drive": "0"}
    assert outer.duration_s >= inner.duration_s >= 0.0


def test_tracer_timings_aggregate():
    tracer = SpanTracer()
    for _ in range(3):
        with tracer.span("step"):
            pass
    agg = tracer.timings()["step"]
    assert agg["count"] == 3
    assert agg["total_s"] >= agg["max_s"] >= agg["mean_s"] >= agg["min_s"] >= 0


# -- recorders -----------------------------------------------------------


def test_null_recorder_is_inert_singleton():
    null = NullRecorder()
    assert null.enabled is False
    assert null.counter("a") is null.counter("b", any="label")
    null.counter("a").inc()
    assert null.counter("a").value == 0.0
    null.gauge("g").set(5)
    null.histogram("h").observe(1.0)
    with null.span("s", k="v"):
        pass  # no state, no error


def test_labels_and_meta_may_shadow_positional_names():
    # ``name`` (and histogram's ``buckets``) are positional-only so labels
    # and span metadata are free to use those words — benchmarks/conftest.py
    # relies on span(..., name=...).
    rec = ObsRecorder()
    rec.counter("c", name="x").inc()
    rec.gauge("g", name="y").set(2.0)
    rec.histogram("h", name="z").observe(0.5)
    with rec.span("s", name="fixture"):
        pass
    assert rec.registry.value("c", name="x") == 1.0
    assert rec.tracer.spans[0].meta == {"name": "fixture"}
    null = NullRecorder()
    null.counter("c", name="x").inc()
    with null.span("s", name="fixture"):
        pass


def test_default_recorder_is_null_and_swappable():
    assert get_recorder() is NULL_RECORDER
    rec = ObsRecorder()
    with use_recorder(rec) as active:
        assert active is rec
        assert get_recorder() is rec
        get_recorder().counter("seen").inc()
    assert get_recorder() is NULL_RECORDER
    assert rec.registry.value("seen") == 1.0
    set_recorder(rec)
    try:
        assert get_recorder() is rec
    finally:
        set_recorder(None)
    assert get_recorder() is NULL_RECORDER


# -- exporters -----------------------------------------------------------


@pytest.fixture()
def populated_recorder():
    rec = ObsRecorder()
    rec.counter("channel.samples", network="RM").inc(360)
    rec.counter("channel.samples", network="ATT").inc(360)
    rec.gauge("sim.heap_depth_max").set(17)
    h = rec.histogram("campaign.drive_seconds", buckets=(1.0, 10.0))
    h.observe(0.4)
    h.observe(3.0)
    with rec.span("campaign.drive", drive="0"):
        pass
    return rec


def test_jsonl_round_trip(populated_recorder, tmp_path):
    path = tmp_path / "dump.jsonl"
    lines = write_jsonl(populated_recorder, path)
    # header + 4 metric series + 1 span
    assert lines == 6
    back = read_jsonl(path)
    assert back.registry.snapshot() == populated_recorder.registry.snapshot()
    assert [s.to_dict() for s in back.tracer.spans] == [
        s.to_dict() for s in populated_recorder.tracer.spans
    ]


def test_jsonl_rejects_foreign_files(tmp_path):
    path = tmp_path / "other.jsonl"
    path.write_text('{"type": "header", "format": "something-else"}\n')
    with pytest.raises(ValueError):
        read_jsonl(path)


def test_prometheus_round_trip(populated_recorder):
    text = to_prometheus_text(populated_recorder.registry)
    samples = parse_prometheus_text(text)
    assert samples[("channel_samples_total", (("network", "RM"),))] == 360.0
    assert samples[("sim_heap_depth_max", ())] == 17.0
    # Histogram expands to cumulative buckets + sum + count.
    assert samples[("campaign_drive_seconds_bucket", (("le", "1"),))] == 1.0
    assert samples[("campaign_drive_seconds_bucket", (("le", "10"),))] == 2.0
    assert samples[("campaign_drive_seconds_bucket", (("le", "+Inf"),))] == 2.0
    assert samples[("campaign_drive_seconds_sum", ())] == pytest.approx(3.4)
    assert samples[("campaign_drive_seconds_count", ())] == 2.0


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c", route='inter"state\\0').inc()
    samples = parse_prometheus_text(to_prometheus_text(reg))
    assert samples[("c_total", (("route", 'inter"state\\0'),))] == 1.0


# -- manifest ------------------------------------------------------------


def test_manifest_round_trip(populated_recorder, tmp_path):
    manifest = RunManifest.from_recorder(
        populated_recorder,
        fingerprint="abc123",
        drives=[{"drive": 0, "route": "interstate-0", "duration_s": 1.0, "tests": 60}],
        num_tests=60,
    )
    path = tmp_path / "run.manifest.json"
    manifest.save_json(path)
    loaded = RunManifest.load_json(path)
    assert loaded.to_dict() == manifest.to_dict()
    assert loaded.total("channel.samples") == 720.0
    assert loaded.metric_values("channel.samples")[(("network", "RM"),)] == 360.0
    assert "campaign.drive" in loaded.timings


def test_manifest_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "fingerprint": "x"}))
    with pytest.raises(ValueError):
        RunManifest.load_json(path)


# -- instrumented DES loop ----------------------------------------------


def test_simulator_records_events_and_heap_depth():
    rec = ObsRecorder()
    sim = Simulator(recorder=rec)
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    handle.cancel()
    sim.run()
    assert rec.registry.value("sim.events_fired") == 2.0
    assert rec.registry.value("sim.events_cancelled") == 1.0
    assert rec.registry.value("sim.heap_depth_max") == 3.0


# -- instrumented schedulers --------------------------------------------


class _FakeSubflow:
    def __init__(self, sid, rtt):
        self.subflow_id = sid
        self.smoothed_rtt_s = rtt

        class CC:
            cwnd = 10.0

        self.cc = CC()


class _FakeConnection:
    def __init__(self, now, subflows):
        self.sim = type("S", (), {"now": now})()
        self.subflows = subflows

    def send_window_left(self):
        return 1 << 20


def test_scheduler_records_decisions_per_subflow():
    rec = ObsRecorder()
    sched = make_scheduler("minrtt", recorder=rec)
    fast, slow = _FakeSubflow(1, 0.02), _FakeSubflow(0, 0.08)
    conn = _FakeConnection(0.0, [slow, fast])
    assert sched.pick([slow, fast], conn) is fast
    assert sched.pick([slow, fast], conn) is fast
    assert sched.pick([], conn) is None
    assert (
        rec.registry.value(
            "mptcp.scheduler.decisions", scheduler="minrtt", subflow="1"
        )
        == 2.0
    )
    assert rec.registry.value("mptcp.scheduler.waits", scheduler="minrtt") == 1.0


def test_sataware_delegation_counts_decisions_once():
    """SatAware delegates to Blest internals; a pick is one decision."""
    rec = ObsRecorder()
    sched = SatAware(
        interval_s=15.0, guard_before_s=1.0, guard_after_s=1.0, recorder=rec
    )
    sat, cell = _FakeSubflow(0, 0.06), _FakeSubflow(1, 0.05)
    conn = _FakeConnection(7.0, [sat, cell])
    assert sched.pick([sat, cell], conn) is cell
    decisions = rec.registry.by_name("mptcp.scheduler.decisions")
    assert sum(m.value for m in decisions) == 1.0
    assert decisions[0].labels == (("scheduler", "sataware"), ("subflow", "1"))
    # Guard window, satellite only: the hold is one wait, not a Blest wait.
    conn = _FakeConnection(14.5, [sat, cell])
    assert sched.pick([sat], conn) is None
    waits = rec.registry.by_name("mptcp.scheduler.waits")
    assert sum(m.value for m in waits) == 1.0


def test_blest_still_validates_lambda():
    with pytest.raises(ValueError):
        Blest(scaling_lambda=0.0)


# -- campaign integration ------------------------------------------------


@pytest.fixture(scope="module")
def observed_runs(tmp_path_factory):
    """One small campaign per recorder flavour, interleaved and timed.

    Timing uses CPU time (``time.process_time``) so scheduler noise and
    I/O don't pollute the overhead comparison, and the timed runs carry
    no checkpoint (checkpoint writes are I/O, not instrumentation).
    """
    out = tmp_path_factory.mktemp("obs_campaign")
    checkpoint = out / "campaign.ckpt.json"

    null_times, obs_times = [], []
    null_dataset = None
    for _ in range(3):
        started = time.process_time()
        null_dataset = Campaign(CampaignConfig.small()).run()
        null_times.append(time.process_time() - started)

        started = time.process_time()
        Campaign(CampaignConfig.small(), recorder=ObsRecorder()).run()
        obs_times.append(time.process_time() - started)

    # One more instrumented run, with a checkpoint, for the artifact tests.
    recorder = ObsRecorder()
    campaign = Campaign(CampaignConfig.small(), recorder=recorder)
    obs_dataset = campaign.run(checkpoint_path=checkpoint)

    return {
        "null_dataset": null_dataset,
        "obs_dataset": obs_dataset,
        "null_s": min(null_times),
        "obs_s": min(obs_times),
        "recorder": recorder,
        "campaign": campaign,
        "manifest_path": f"{checkpoint}.manifest.json",
    }


def test_instrumented_run_is_byte_identical(observed_runs):
    """The central guarantee: recording changes nothing in the dataset."""

    def blob(dataset):
        return json.dumps(
            [record_to_dict(r) for r in dataset.records], sort_keys=True
        ).encode()

    assert blob(observed_runs["null_dataset"]) == blob(observed_runs["obs_dataset"])


def test_instrumentation_overhead_under_5_percent(observed_runs):
    """An enabled recorder stays within 5% of the null default.

    Timing comparisons are noisy even on CPU time, so the bound carries
    a small absolute allowance on top of the 5% relative budget; the
    small campaign runs long enough (several seconds) that real
    regressions — per-sample allocation, formatting, locking — would
    blow well past it.  (Profiled: the recorder itself costs ~10 ms of
    a ~4 s run, well under 1%.)
    """
    null_s, obs_s = observed_runs["null_s"], observed_runs["obs_s"]
    assert obs_s <= null_s * 1.05 + 0.15, (
        f"instrumented small campaign took {obs_s:.3f}s vs {null_s:.3f}s null"
    )


def test_campaign_metrics_cover_channels(observed_runs):
    reg = observed_runs["recorder"].registry
    # small: 3900 s drive cap, 30 s test windows every 60 s -> 65 windows,
    # and channels are sampled once per second inside each window.
    seconds = 65 * 30
    tests_per_network = observed_runs["obs_dataset"].num_tests // len(NETWORKS)
    assert seconds == tests_per_network * 30
    for network in NETWORKS:
        assert reg.value("channel.samples", network=network) == seconds
    total_outage = sum(m.value for m in reg.by_name("channel.outage_seconds"))
    assert 0 < total_outage < seconds * len(NETWORKS)
    assert reg.value("campaign.drives_completed") == 1.0
    assert reg.value("campaign.tests") == observed_runs["obs_dataset"].num_tests


def test_campaign_writes_manifest_next_to_checkpoint(observed_runs):
    manifest = RunManifest.load_json(observed_runs["manifest_path"])
    campaign = observed_runs["campaign"]
    assert manifest.fingerprint == campaign.config.fingerprint()
    assert manifest.drives and manifest.drives[0]["route"] == "interstate-0"
    assert manifest.drives[0]["duration_s"] > 0
    assert "campaign.drive" in manifest.timings
    assert manifest.total("channel.samples") == 65 * 30 * len(NETWORKS)
    assert manifest.extra["num_tests"] == observed_runs["obs_dataset"].num_tests
    assert campaign.manifest is not None
    assert campaign.manifest.fingerprint == manifest.fingerprint


def test_cli_summary_renders_campaign_manifest(observed_runs, capsys):
    assert obs_main(["summary", observed_runs["manifest_path"]]) == 0
    out = capsys.readouterr().out
    assert "per-drive wall-clock" in out
    assert "channel outage seconds" in out
    assert "interstate-0" in out
    assert "span timings" in out


def test_cli_prom_renders_exposition(observed_runs, capsys):
    assert obs_main(["prom", observed_runs["manifest_path"]]) == 0
    out = capsys.readouterr().out
    samples = parse_prometheus_text(out)
    assert samples[("channel_samples_total", (("network", "RM"),))] == 65 * 30.0


def test_cli_summary_reads_jsonl(populated_recorder, tmp_path, capsys):
    path = tmp_path / "dump.jsonl"
    write_jsonl(populated_recorder, path)
    assert obs_main(["summary", str(path)]) == 0
    out = capsys.readouterr().out
    assert "channel samples" in out


def test_cli_errors_on_missing_artifact(capsys):
    assert obs_main(["summary", "/nonexistent/nowhere.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_render_summary_includes_des_metrics():
    rec = ObsRecorder()
    rec.counter("sim.events_fired").inc(1234)
    manifest = RunManifest.from_recorder(rec, fingerprint="f")
    out = render_summary(manifest)
    assert "DES events fired" in out
    assert "1234" in out or "1.2" in out
