"""Fault injection on the commit protocol's *exception* paths.

``tests/test_store_crash.py`` proves SIGKILL safety — the process dies
and never runs cleanup.  This file proves the complementary property:
when a commit step raises an **exception** (disk full, interposed I/O
error, a hook that throws), the writer's cleanup runs and must leave no
``<path>.tmp`` debris behind while keeping the previous artifact's
bytes intact.  ``commit.atomic_write_bytes`` is the repo's single
producer of ``.tmp`` files, so holding the line here holds it for every
artifact kind.

The injection rides the same ``commit._CRASH_HOOK`` seam as the crash
harness, raising instead of SIGKILLing.
"""

import os

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.obs import ObsRecorder
from repro.store import commit

BOUNDARY_STEPS = ["tmp.write", "tmp.fsync", "rename", "dirsync"]


class InjectedFault(Exception):
    pass


@pytest.fixture(autouse=True)
def _reset_hook():
    yield
    commit._CRASH_HOOK = None


def _raise_at(label):
    def hook(crossed):
        if crossed == label:
            raise InjectedFault(label)

    commit._CRASH_HOOK = hook


@pytest.mark.parametrize("step", BOUNDARY_STEPS)
def test_atomic_write_fault_leaves_no_tmp(tmp_path, step):
    target = tmp_path / "artifact.json"
    target.write_bytes(b"previous committed bytes")

    _raise_at(f"artifact.{step}")
    with pytest.raises(InjectedFault):
        commit.atomic_write_bytes(target, b"replacement bytes")

    assert sorted(os.listdir(tmp_path)) == ["artifact.json"], (
        f"fault at {step} leaked tmp debris"
    )
    expected = (
        b"previous committed bytes"
        if step in ("tmp.write", "tmp.fsync")
        # rename/dirsync faults strike after the atomic replace: the new
        # bytes are already committed and must not be rolled back.
        else b"replacement bytes"
    )
    assert target.read_bytes() == expected


@pytest.mark.parametrize("step", BOUNDARY_STEPS)
def test_atomic_write_fault_on_fresh_path(tmp_path, step):
    target = tmp_path / "artifact.json"
    _raise_at(f"artifact.{step}")
    with pytest.raises(InjectedFault):
        commit.atomic_write_bytes(target, b"first bytes")
    assert not (tmp_path / "artifact.json.tmp").exists()
    if step in ("tmp.write", "tmp.fsync"):
        assert sorted(os.listdir(tmp_path)) == []
    else:
        assert target.read_bytes() == b"first bytes"


def test_unwritable_directory_raises_without_debris(tmp_path):
    missing = tmp_path / "no" / "such" / "dir" / "artifact.json"
    with pytest.raises(OSError):
        commit.atomic_write_bytes(missing, b"data")
    assert not (tmp_path / "no").exists()


def _no_tmp_anywhere(root):
    leaked = []
    for dirpath, _, filenames in os.walk(root):
        leaked.extend(
            os.path.join(dirpath, name)
            for name in filenames
            if name.endswith(".tmp")
        )
    return leaked


def test_campaign_faults_never_leak_tmp_files(tmp_path):
    """Sweep every boundary label a real campaign crosses.

    For each one, re-run the campaign with an exception injected at that
    boundary and assert no ``.tmp`` file survives anywhere under the
    scenario directory — then confirm a clean re-run still converges.

    Two outcomes are legitimate: the fault propagates (dataset/manifest
    boundaries, which nothing isolates), or the resilience layer
    contains it as a drive failure and retries (``shard.*`` boundaries
    sit inside drive isolation).  Leaked tmp debris is legitimate in
    neither.
    """
    config = CampaignConfig(
        seed=13,
        num_interstate_drives=1,
        num_city_drives=0,
        max_drive_seconds=120.0,
        test_duration_s=30.0,
        window_period_s=50.0,
        artifact_format="jsonl",
    )

    def run(checkpoint_root):
        campaign = Campaign(config, recorder=ObsRecorder())
        dataset = campaign.run(
            checkpoint_path=os.path.join(checkpoint_root, "ck"),
            manifest_path=os.path.join(checkpoint_root, "manifest.json"),
        )
        dataset.save_json(os.path.join(checkpoint_root, "dataset.json"))

    labels = []
    commit._CRASH_HOOK = labels.append
    try:
        run(str(tmp_path / "clean"))
    finally:
        commit._CRASH_HOOK = None
    assert labels, "campaign crossed no commit boundaries?"

    for index, label in enumerate(sorted(set(labels))):
        scenario = str(tmp_path / f"fault-{index:03d}")
        os.makedirs(scenario)
        _raise_at(label)
        try:
            run(scenario)
        except InjectedFault:
            pass
        finally:
            commit._CRASH_HOOK = None
        assert _no_tmp_anywhere(scenario) == [], (
            f"fault at {label} leaked tmp files"
        )
        # The aborted run left only committed artifacts: a retry works.
        run(scenario)
        assert _no_tmp_anywhere(scenario) == []
