"""Ring-road routes (suburban beltways)."""

import pytest

from repro.geo.classify import AreaClassifier, AreaType
from repro.geo.coords import haversine_km
from repro.geo.places import PlaceDatabase
from repro.geo.routes import RouteGenerator
from repro.rng import RngStreams


@pytest.fixture(scope="module")
def world():
    rng = RngStreams(2)
    places = PlaceDatabase.synthetic(rng)
    return places, RouteGenerator(places, rng)


def test_ring_stays_at_radius(world):
    places, gen = world
    metro = max(places.places, key=lambda p: p.population)
    route = gen.ring_road("ring", metro, ring_km=25.0)
    for seg in route.segments:
        assert 20.0 <= haversine_km(seg.start, metro.location) <= 30.0


def test_ring_closes(world):
    places, gen = world
    metro = places.cities()[0]
    route = gen.ring_road("ring2", metro, ring_km=25.0)
    start = route.segments[0].start
    end = route.segments[-1].end
    assert haversine_km(start, end) < 5.0


def test_ring_circumference(world):
    places, gen = world
    metro = places.cities()[0]
    route = gen.ring_road("ring3", metro, ring_km=25.0)
    import math

    assert route.length_km == pytest.approx(2 * math.pi * 25.0, rel=0.15)


def test_ring_is_mostly_suburban_around_a_metro(world):
    places, gen = world
    classifier = AreaClassifier(places)
    # The first state's metro: its ring band is clear of other towns in
    # this seed's world (suburban share depends on the random town layout,
    # exactly as the paper's nearest-place classifier would behave).
    metro = next(p for p in places.places if p.population >= 400_000)
    ring_km = 8.0 * classifier.thresholds.scale(metro.population)
    route = gen.ring_road("ring4", metro, ring_km=ring_km)
    areas = [
        classifier.classify(seg.start) for seg in route.segments[::5]
    ]
    suburban_share = sum(a is AreaType.SUBURBAN for a in areas) / len(areas)
    assert suburban_share > 0.5


def test_ring_validation(world):
    _, gen = world
    metro = _.cities()[0]
    with pytest.raises(ValueError):
        gen.ring_road("bad", metro, ring_km=0.0)
    with pytest.raises(ValueError):
        gen.ring_road("bad2", metro, segments=2)
