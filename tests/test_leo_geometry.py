"""Look angles, slant range, Equation 1."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.coords import GeoPoint, geodetic_to_ecef_km
from repro.leo.geometry import (
    equation1_one_way_latency_ms,
    look_angles,
    look_angles_many,
    propagation_delay_ms,
    slant_range_km,
)


def test_equation1_value():
    """The paper's Equation 1: 550 km / c = 1.835 ms."""
    assert equation1_one_way_latency_ms() == pytest.approx(1.835, abs=0.001)


def test_propagation_delay_rejects_negative():
    with pytest.raises(ValueError):
        propagation_delay_ms(-1.0)


def test_satellite_at_zenith():
    observer = GeoPoint(45.0, -93.0)
    sat = geodetic_to_ecef_km(observer, altitude_km=550.0)
    angles = look_angles(observer, sat)
    assert angles.elevation_deg == pytest.approx(90.0, abs=0.1)
    assert angles.slant_range_km == pytest.approx(550.0, abs=1.0)
    assert angles.one_way_delay_ms == pytest.approx(1.835, abs=0.01)


def test_satellite_on_other_side_below_horizon():
    observer = GeoPoint(45.0, -93.0)
    antipode = GeoPoint(-45.0, 87.0)
    sat = geodetic_to_ecef_km(antipode, altitude_km=550.0)
    angles = look_angles(observer, sat)
    assert angles.elevation_deg < 0.0


def test_azimuth_north():
    observer = GeoPoint(45.0, -93.0)
    north = GeoPoint(50.0, -93.0)
    sat = geodetic_to_ecef_km(north, altitude_km=550.0)
    angles = look_angles(observer, sat)
    assert angles.azimuth_deg == pytest.approx(0.0, abs=2.0) or angles.azimuth_deg == pytest.approx(360.0, abs=2.0)


def test_look_angles_many_matches_single():
    observer = GeoPoint(44.0, -90.0)
    sats = np.vstack(
        [
            geodetic_to_ecef_km(GeoPoint(45.0, -90.0), 550.0),
            geodetic_to_ecef_km(GeoPoint(40.0, -85.0), 550.0),
        ]
    )
    elev, azim, rng = look_angles_many(observer, sats)
    for i in range(2):
        single = look_angles(observer, sats[i])
        assert single.elevation_deg == pytest.approx(float(elev[i]))
        assert single.azimuth_deg == pytest.approx(float(azim[i]))
        assert single.slant_range_km == pytest.approx(float(rng[i]))


def test_slant_range_at_zenith_is_altitude():
    assert slant_range_km(550.0, 90.0) == pytest.approx(550.0)


def test_slant_range_monotone_in_elevation():
    ranges = [slant_range_km(550.0, e) for e in range(5, 91, 5)]
    assert ranges == sorted(ranges, reverse=True)


def test_slant_range_at_horizon():
    # At 0 deg elevation the slant range is sqrt((re+h)^2 - re^2) ~ 2,704 km.
    assert slant_range_km(550.0, 0.0) == pytest.approx(2704.0, rel=0.01)


def test_slant_range_rejects_bad_elevation():
    with pytest.raises(ValueError):
        slant_range_km(550.0, 91.0)


@given(st.floats(min_value=5.0, max_value=90.0))
def test_slant_range_bounds(elevation):
    rng = slant_range_km(550.0, elevation)
    assert 550.0 - 1e-6 <= rng <= 2704.0
