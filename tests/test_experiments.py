"""End-to-end experiment modules (small scale).

Each test regenerates one paper figure at reduced scale and asserts the
*shape* of the paper's result — who wins, roughly by what factor.
"""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.geo.classify import AreaType

SCALE = "small"


@pytest.fixture(scope="module")
def fig3():
    return run_experiment("fig3", scale=SCALE)


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9", scale=SCALE)


def test_registry_complete():
    expected = {
        "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "dataset", "ext-fec", "ext-scheduler", "ext-switching", "ext-video", "ext-weather",
    }
    assert set(REGISTRY) == expected
    with pytest.raises(KeyError):
        run_experiment("fig2")


def test_dataset_summary_shape():
    result = run_experiment("dataset", scale=SCALE)
    assert result.num_tests > 50
    assert result.distance_km > 5.0
    assert sum(result.area_proportions.values()) == pytest.approx(1.0)
    rows = result.rows()
    assert any(r[0] == "tests" for r in rows)


def test_fig1_networks_alternate():
    result = run_experiment("fig1", duration_s=400, seed=11)
    assert set(result.series_mbps) == {"RM", "MOB", "ATT", "TM", "VZ"}
    assert all(len(s) == 400 for s in result.series_mbps.values())
    # The motivation: neither side wins everywhere.
    assert 0.05 < result.starlink_wins_fraction < 0.95
    assert result.lead_changes > 5


def test_fig3a_starlink_tcp_collapses(fig3):
    """Starlink UDP >> Starlink TCP; cellular gap far smaller."""
    assert fig3.tcp_udp_gap < 0.5
    cellular_tcp = fig3.panel_a[1].stats.mean
    cellular_udp = fig3.panel_a[3].stats.mean
    assert cellular_tcp / cellular_udp > 2.0 * fig3.tcp_udp_gap


def test_fig3b_mobility_roughly_double_roam(fig3):
    assert 1.3 <= fig3.mobility_over_roam <= 4.0


def test_fig3c_downlink_near_10x_uplink(fig3):
    assert 6.0 <= fig3.downlink_over_uplink <= 14.0


def test_fig4_latency_ordering():
    result = run_experiment("fig4", scale=SCALE)
    assert result.equation1_ms == pytest.approx(1.835, abs=0.01)
    assert result.median("ATT") > result.median("VZ")
    assert result.median("ATT") > result.median("TM")
    # Starlink close to (not wildly above) cellular: within 2x of VZ.
    assert result.median("MOB") < 2.0 * result.median("VZ")
    # Everything lives in the tens-of-ms regime.
    for curve in result.curves:
        assert 30.0 <= curve.stats.median <= 120.0


def test_fig6_speed_flat():
    result = run_experiment("fig6", scale=SCALE)
    assert result.starlink.variation_coefficient < 0.5
    assert result.cellular.variation_coefficient < 0.5
    # The small campaign's rural driving is interstate-speed only, so at
    # least the two highway buckets must be populated (medium+ has more).
    assert len(result.rows()) >= 2


def test_fig8_area_crossover():
    result = run_experiment("fig8", scale=SCALE)
    # Cellular: urban >= rural.  Starlink: rural >= urban.
    cell_urban = result.median("Cellular", AreaType.URBAN)
    cell_rural = result.median("Cellular", AreaType.RURAL)
    mob_urban = result.median("MOB", AreaType.URBAN)
    mob_rural = result.median("MOB", AreaType.RURAL)
    assert cell_urban > cell_rural
    assert mob_rural > mob_urban


def test_fig9_shares_and_combinations(fig9):
    bars = {b.name: b for b in fig9.bars}
    assert set(bars) == {
        "ATT", "TM", "VZ", "BestCL", "RM", "RM+CL", "MOB", "MOB+CL"
    }
    # ATT is the weakest cellular carrier.
    assert bars["ATT"].high <= min(bars["TM"].high, bars["VZ"].high)
    # Combinations beat their components (the paper's Section 5.2 takeaway).
    assert bars["BestCL"].high >= max(
        bars["ATT"].high, bars["TM"].high, bars["VZ"].high
    )
    assert bars["MOB+CL"].high >= max(bars["MOB"].high, bars["BestCL"].high)
    assert bars["RM+CL"].high >= bars["RM"].high
    # MOB leads the singles.
    singles = ["ATT", "TM", "VZ", "RM", "MOB"]
    assert bars["MOB"].high == max(bars[n].high for n in singles)
