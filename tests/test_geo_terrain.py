"""Obstruction process along the drive."""

import numpy as np
import pytest

from repro.geo.classify import AreaType
from repro.geo.terrain import ObstructionProcess, mean_obstruction
from repro.rng import RngStreams


def run_process(area, seconds=2000, seed=0):
    process = ObstructionProcess(RngStreams(seed))
    return [process.step(area) for _ in range(seconds)]


def test_fractions_in_range():
    for sample in run_process(AreaType.URBAN, 500):
        assert 0.0 <= sample.fraction <= 0.95


def test_urban_more_obstructed_than_rural():
    urban = np.mean([s.fraction for s in run_process(AreaType.URBAN)])
    rural = np.mean([s.fraction for s in run_process(AreaType.RURAL)])
    assert urban > rural


def test_suburban_close_to_rural():
    """Section 5.1: suburban obstruction conditions resemble rural ones."""
    suburban = np.mean([s.fraction for s in run_process(AreaType.SUBURBAN)])
    rural = np.mean([s.fraction for s in run_process(AreaType.RURAL)])
    urban = np.mean([s.fraction for s in run_process(AreaType.URBAN)])
    assert abs(suburban - rural) < 0.5 * abs(urban - rural)


def test_deep_blockage_happens_and_clusters():
    samples = run_process(AreaType.URBAN, 3000)
    blocked = [s.deep_blockage for s in samples]
    assert any(blocked)
    # Episodes last multiple seconds: count runs vs singletons.
    runs = 0
    in_run = False
    for b in blocked:
        if b and not in_run:
            runs += 1
        in_run = b
    total_blocked = sum(blocked)
    assert total_blocked / max(runs, 1) >= 2.0  # mean episode length >= 2 s


def test_deep_blockage_fraction_saturated():
    samples = run_process(AreaType.URBAN, 1000)
    for s in samples:
        if s.deep_blockage:
            assert s.fraction == pytest.approx(0.95)


def test_blockage_fraction_substantial_for_calibration():
    """The campaign calibration needs ~20-45 % blocked seconds (see
    DESIGN.md calibration targets: Starlink's heavy low-throughput tail)."""
    for area, low, high in (
        (AreaType.URBAN, 0.20, 0.60),
        (AreaType.RURAL, 0.10, 0.45),
    ):
        samples = run_process(area, 5000)
        share = np.mean([s.deep_blockage for s in samples])
        assert low <= share <= high, (area, share)


def test_reset_restores_initial_state():
    process = ObstructionProcess(RngStreams(1))
    for _ in range(100):
        process.step(AreaType.URBAN)
    process.reset()
    assert process._fraction == pytest.approx(0.1)
    assert process._episode_left_s == 0


def test_mean_obstruction_exposed():
    assert mean_obstruction(AreaType.URBAN) > mean_obstruction(AreaType.RURAL)


def test_deterministic_given_seed():
    a = [s.fraction for s in run_process(AreaType.SUBURBAN, 200, seed=5)]
    b = [s.fraction for s in run_process(AreaType.SUBURBAN, 200, seed=5)]
    assert a == b
