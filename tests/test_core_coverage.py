"""Performance levels and coverage combination analysis."""

import pytest

from repro.core.coverage import (
    PerformanceLevel,
    best_of,
    classify_level,
    coverage_shares,
    figure9_shares,
)
from repro.core.dataset import DriveDataset, SecondSample, TestRecord
from repro.geo.classify import AreaType


def test_classify_level_bands():
    """The paper's exact thresholds: <20, 20-50, 50-100, >100 Mbps."""
    assert classify_level(0.0) is PerformanceLevel.VERY_LOW
    assert classify_level(19.9) is PerformanceLevel.VERY_LOW
    assert classify_level(20.0) is PerformanceLevel.LOW
    assert classify_level(49.9) is PerformanceLevel.LOW
    assert classify_level(50.0) is PerformanceLevel.MEDIUM
    assert classify_level(99.9) is PerformanceLevel.MEDIUM
    assert classify_level(100.0) is PerformanceLevel.HIGH
    assert classify_level(500.0) is PerformanceLevel.HIGH


def test_classify_level_rejects_negative():
    with pytest.raises(ValueError):
        classify_level(-1.0)


def test_coverage_shares_sum_to_one():
    shares = coverage_shares("X", [5.0, 30.0, 75.0, 150.0, 250.0])
    total = shares.very_low + shares.low + shares.medium + shares.high
    assert total == pytest.approx(1.0)
    assert shares.high == pytest.approx(0.4)
    assert shares.low_or_worse == pytest.approx(0.4)


def test_coverage_shares_rejects_empty():
    with pytest.raises(ValueError):
        coverage_shares("X", [])


def _sample(t, mbps):
    return SecondSample(
        time_s=t,
        throughput_mbps=mbps,
        rtt_ms=50.0,
        loss_rate=0.0,
        speed_kmh=80.0,
        area=AreaType.RURAL,
        lat_deg=44.0,
        lon_deg=-93.0,
    )


def _window_dataset():
    """One simultaneous window across the five networks + a second window."""
    records = []
    values = {
        "ATT": [10.0, 10.0],
        "TM": [60.0, 60.0],
        "VZ": [30.0, 120.0],
        "RM": [80.0, 5.0],
        "MOB": [150.0, 40.0],
    }
    for window, t0 in enumerate((0.0, 100.0)):
        for i, (network, series) in enumerate(values.items()):
            records.append(
                TestRecord(
                    test_id=window * 5 + i,
                    drive_id=0,
                    network=network,
                    protocol="udp",
                    direction="dl",
                    parallel=1,
                    samples=[_sample(t0 + k, v) for k, v in enumerate(series)],
                )
            )
    return DriveDataset(records)


def test_best_of_is_pointwise_max():
    ds = _window_dataset()
    best = best_of(ds, ["ATT", "TM", "VZ"])
    # Per second: max(10,60,30)=60 then max(10,60,120)=120, twice (2 windows).
    assert best == [60.0, 120.0, 60.0, 120.0]


def test_best_of_combination_with_starlink():
    ds = _window_dataset()
    best = best_of(ds, ["MOB", "ATT", "TM", "VZ"])
    # Starlink lifts the first second of each window (150 > 60).
    assert best == [150.0, 120.0, 150.0, 120.0]


def test_figure9_order_and_improvement():
    ds = _window_dataset()
    bars = figure9_shares(ds)
    names = [b.name for b in bars]
    assert names == ["ATT", "TM", "VZ", "BestCL", "RM", "RM+CL", "MOB", "MOB+CL"]
    best_cl = next(b for b in bars if b.name == "BestCL")
    att = next(b for b in bars if b.name == "ATT")
    assert best_cl.high >= att.high
    mob_cl = next(b for b in bars if b.name == "MOB+CL")
    mob = next(b for b in bars if b.name == "MOB")
    assert mob_cl.high >= mob.high


def test_best_of_skips_incomplete_windows():
    ds = _window_dataset()
    # Remove one VZ record: that window can no longer be combined.
    ds = DriveDataset([r for r in ds.records if not (r.network == "VZ" and r.test_id >= 5)])
    best = best_of(ds, ["ATT", "TM", "VZ"])
    assert len(best) == 2  # only the first window remains
