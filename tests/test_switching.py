"""Switching policies: oracle vs hysteresis."""

import numpy as np
import pytest

from repro.core.switching import (
    SwitchPolicy,
    hysteresis_switching,
    oracle_switching,
)


def alternating_series(period=20, length=120, high=100.0, low=10.0):
    """Two networks that trade places every ``period`` seconds."""
    a, b = [], []
    for t in range(length):
        if (t // period) % 2 == 0:
            a.append(high)
            b.append(low)
        else:
            a.append(low)
            b.append(high)
    return {"A": a, "B": b}


def test_policy_validation():
    with pytest.raises(ValueError):
        SwitchPolicy(margin=-0.1)
    with pytest.raises(ValueError):
        SwitchPolicy(dwell_s=0)
    with pytest.raises(ValueError):
        SwitchPolicy(switch_outage_s=-1)


def test_series_validation():
    with pytest.raises(ValueError):
        oracle_switching({})
    with pytest.raises(ValueError):
        oracle_switching({"A": [1.0], "B": [1.0, 2.0]})
    with pytest.raises(ValueError):
        hysteresis_switching({"A": [], "B": []})


def test_oracle_takes_pointwise_max():
    series = alternating_series()
    outcome = oracle_switching(series)
    assert outcome.mean_mbps == pytest.approx(100.0)
    assert outcome.switches == 5  # 6 phases, 5 boundaries


def test_hysteresis_below_oracle_above_single():
    series = alternating_series()
    single = max(np.mean(series["A"]), np.mean(series["B"]))
    policy = SwitchPolicy(margin=0.25, dwell_s=3, switch_outage_s=2)
    outcome = hysteresis_switching(series, policy)
    oracle = oracle_switching(series)
    assert single < outcome.mean_mbps < oracle.mean_mbps
    assert 0 < outcome.switches <= oracle.switches


def test_hysteresis_never_switches_without_advantage():
    series = {"A": [100.0] * 60, "B": [50.0] * 60}
    outcome = hysteresis_switching(series)
    assert outcome.switches == 0
    assert outcome.mean_mbps == pytest.approx(100.0)
    assert set(outcome.serving) == {"A"}


def test_switch_outage_costs_throughput():
    series = alternating_series(period=10)
    cheap = hysteresis_switching(
        series, SwitchPolicy(margin=0.1, dwell_s=2, switch_outage_s=0)
    )
    costly = hysteresis_switching(
        series, SwitchPolicy(margin=0.1, dwell_s=2, switch_outage_s=5)
    )
    assert costly.mean_mbps < cheap.mean_mbps
    assert 0.0 in costly.achieved_mbps


def test_dwell_debounces_flapping():
    """One-second blips must not trigger switches under a long dwell."""
    a = [100.0] * 60
    b = [10.0] * 60
    for t in range(5, 60, 10):
        b[t] = 500.0  # 1 s blip
    outcome = hysteresis_switching(
        {"A": a, "B": b}, SwitchPolicy(margin=0.2, dwell_s=3, switch_outage_s=2)
    )
    assert outcome.switches == 0


def test_serving_tracks_decisions():
    series = alternating_series(period=30, length=60)
    outcome = hysteresis_switching(
        series, SwitchPolicy(margin=0.2, dwell_s=2, switch_outage_s=1)
    )
    assert len(outcome.serving) == 60
    assert outcome.serving[0] == "A"
    assert outcome.serving[-1] == "B"
