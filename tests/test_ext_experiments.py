"""Extension experiments (reduced scale)."""

import numpy as np
import pytest

from repro.experiments import run_experiment


def test_ext_fec_recovers_gap():
    result = run_experiment(
        "ext-fec", duration_s=45, seed=3, segment_bytes=6000
    )
    udp = result.row("UDP (ceiling)").goodput_mbps
    tcp = result.row("TCP (baseline)").goodput_mbps
    fec = result.row("FEC k=20 r=4").goodput_mbps
    assert tcp < udp  # the paper's diagnosis
    assert fec > tcp  # the remedy works
    assert fec <= udp * 1.02
    assert result.row("FEC k=20 r=4").overhead == pytest.approx(4 / 24)


def test_ext_fec_more_repair_less_block_loss():
    result = run_experiment(
        "ext-fec", duration_s=45, seed=3, segment_bytes=6000
    )
    weak = result.row("FEC k=20 r=2").block_loss_rate
    strong = result.row("FEC k=20 r=4").block_loss_rate
    assert strong <= weak + 0.02


def test_ext_scheduler_rows():
    result = run_experiment(
        "ext-scheduler", duration_s=60, seed=11, segment_bytes=6000
    )
    names = {r.name for r in result.rows_data}
    assert names == {"blest", "minrtt", "roundrobin", "sataware"}
    sataware = result.row("sataware")
    blest = result.row("blest")
    assert sataware.goodput_mbps > 0.75 * blest.goodput_mbps
    assert np.isfinite(sataware.fluctuation_cv)


def test_ext_switching_ordering():
    result = run_experiment(
        "ext-switching", duration_s=60, seed=11, segment_bytes=6000
    )
    single = result.row("best single (MOB)").mean_mbps if any(
        r.label == "best single (MOB)" for r in result.rows_data
    ) else result.row("best single (VZ)").mean_mbps
    switcher = result.row("hysteresis switcher").mean_mbps
    oracle = result.row("oracle (Fig. 9)").mean_mbps
    # The ordering the extension argues: reality <= oracle; oracle >= single.
    assert switcher <= oracle * 1.01
    assert oracle >= single
