"""Resilient campaign orchestration: validation, isolation, checkpoint/resume,
fault-injection determinism, and the report."""

import json
import os

import pytest

from repro.conditions import LinkConditions
from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    DriveFailure,
    TEST_ID_STRIDE,
    TestKind,
)
from repro.geo.classify import AreaType
from repro.geo.routes import Route
from repro.tools.tracker import TrackerRecord
from repro.faults import FaultSchedule, SatelliteOutage, generate_schedule


def _tiny_config(seed=7, drives=2, **overrides):
    base = dict(
        seed=seed,
        num_interstate_drives=drives,
        num_city_drives=0,
        max_drive_seconds=240.0,
        test_duration_s=30.0,
        window_period_s=40.0,
    )
    base.update(overrides)
    return CampaignConfig(**base)


# -- config validation ---------------------------------------------------


def test_config_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        CampaignConfig(seed=-1)
    with pytest.raises(ValueError):
        CampaignConfig(num_interstate_drives=-1)
    with pytest.raises(ValueError):
        CampaignConfig(max_drive_seconds=0.0)
    with pytest.raises(ValueError):
        CampaignConfig(test_duration_s=0.0)
    with pytest.raises(ValueError):
        CampaignConfig(window_period_s=-5.0)
    with pytest.raises(ValueError):
        CampaignConfig(cycle=())
    with pytest.raises(ValueError):
        CampaignConfig(cycle=("udp",))
    with pytest.raises(ValueError):
        CampaignConfig(city_loop_segments=0)
    with pytest.raises(ValueError):
        CampaignConfig(fault_schedule="not a schedule")


def test_test_kind_validation():
    with pytest.raises(ValueError):
        TestKind("quic", "dl")
    with pytest.raises(ValueError):
        TestKind("tcp", "sideways")
    with pytest.raises(ValueError):
        TestKind("tcp", "dl", parallel=0)


def test_config_fingerprint_tracks_content():
    assert _tiny_config().fingerprint() == _tiny_config().fingerprint()
    assert _tiny_config().fingerprint() != _tiny_config(seed=8).fingerprint()
    faulted = _tiny_config(
        fault_schedule=FaultSchedule((SatelliteOutage(start_s=0.0, end_s=5.0),))
    )
    assert faulted.fingerprint() != _tiny_config().fingerprint()


# -- satellite fixes -----------------------------------------------------


def test_empty_city_loop_raises_instead_of_spinning():
    config = CampaignConfig(
        seed=1, num_interstate_drives=0, num_city_drives=1, city_loop_segments=30
    )
    campaign = Campaign(config)
    original = campaign.route_generator.local_loop
    campaign.route_generator.local_loop = lambda name, around: Route(name, [])
    with pytest.raises(ValueError, match="generated no segments"):
        campaign._routes()
    campaign.route_generator.local_loop = original


class _SteppedChannel:
    """Capacity 50 Mbps for 5 s, then 200 Mbps; zero loss."""

    def sample(self, time_s, position, speed_kmh, area):
        return LinkConditions(
            time_s=time_s,
            downlink_mbps=50.0 if time_s < 5.0 else 200.0,
            uplink_mbps=10.0,
            rtt_ms=50.0,
            loss_rate=0.0,
        )

    def reset(self):
        pass


class _FakeTracker:
    def __init__(self, seconds):
        self.records = [
            TrackerRecord(
                time_s=float(t),
                lat_deg=40.0,
                lon_deg=-95.0,
                speed_kmh=80.0,
                area=AreaType.RURAL,
                route_km=float(t) * 0.02,
            )
            for t in range(seconds)
        ]


def test_udp_overdrive_clamps_to_offered_load():
    config = CampaignConfig(
        seed=0,
        test_duration_s=10.0,
        window_period_s=100.0,
        cycle=(TestKind("udp", "dl"),),
    )
    campaign = Campaign(config)
    channels = {n: _SteppedChannel() for n in ("RM", "MOB", "ATT", "TM", "VZ")}
    records, _ = campaign._run_tests(0, _FakeTracker(20), channels, 0)
    samples = next(r for r in records if r.network == "MOB").samples
    # Steady state at 50 Mbps: offered (1.2x estimate) exceeds capacity, so
    # the link saturates at capacity.
    assert samples[1].throughput_mbps == pytest.approx(50.0)
    # At the spike the sender's offered load (anchored to the 50 Mbps
    # estimate) is far below the new 200 Mbps capacity: goodput must be
    # offered-limited, not capacity — the old no-op clamp returned 200.
    assert samples[5].throughput_mbps < 200.0
    # est = 50 + 0.25 * (200 - 50) = 87.5; offered = 1.2 * 87.5 = 105.
    assert samples[5].throughput_mbps == pytest.approx(105.0)
    # The estimate converges: late seconds approach (but never exceed)
    # capacity, and all goodput stays within capacity.
    assert all(s.throughput_mbps <= 200.0 + 1e-9 for s in samples)
    assert samples[-1].throughput_mbps > samples[5].throughput_mbps


# -- per-drive isolation -------------------------------------------------


def test_drive_failure_is_isolated_and_reported():
    campaign = Campaign(_tiny_config())
    original = campaign._simulate_drive

    def flaky(drive_id, route):
        if drive_id == 0:
            raise RuntimeError("dish fell off")
        return original(drive_id, route)

    campaign._simulate_drive = flaky
    dataset = campaign.run()
    report = campaign.report
    assert not report.ok
    assert report.drives_total == 2
    assert report.drives_completed == 1
    assert report.drives_failed == 1
    failure = report.failures[0]
    assert isinstance(failure, DriveFailure)
    assert failure.drive_id == 0
    assert failure.error_type == "RuntimeError"
    assert "dish fell off" in failure.message
    assert "RuntimeError" in failure.traceback
    # The surviving drive's data is intact and correctly numbered.
    assert dataset.num_tests > 0
    assert {r.drive_id for r in dataset.records} == {1}
    assert all(r.test_id >= TEST_ID_STRIDE for r in dataset.records)


def test_surviving_drive_identical_with_and_without_failure():
    clean = Campaign(_tiny_config())
    clean_ds = clean.run()
    flaky = Campaign(_tiny_config())
    original = flaky._simulate_drive

    def boom(drive_id, route):
        if drive_id == 0:
            raise RuntimeError("boom")
        return original(drive_id, route)

    flaky._simulate_drive = boom
    flaky_ds = flaky.run()
    clean_drive1 = [r for r in clean_ds.records if r.drive_id == 1]
    assert [r.samples for r in flaky_ds.records] == [
        r.samples for r in clean_drive1
    ]


# -- checkpoint / resume -------------------------------------------------


def test_checkpoint_resume_matches_uninterrupted_run(tmp_path):
    ckpt = tmp_path / "campaign.ckpt.json"
    reference = Campaign(_tiny_config()).run()
    ref_json = tmp_path / "ref.json"
    reference.save_json(ref_json)

    interrupted = Campaign(_tiny_config())
    original = interrupted._simulate_drive

    def killed(drive_id, route):
        if drive_id == 1:
            raise KeyboardInterrupt  # not swallowed by drive isolation
        return original(drive_id, route)

    interrupted._simulate_drive = killed
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(checkpoint_path=ckpt)
    assert ckpt.exists()

    resumed = Campaign(_tiny_config())
    dataset = resumed.run(checkpoint_path=ckpt)
    res_json = tmp_path / "resumed.json"
    dataset.save_json(res_json)
    assert ref_json.read_bytes() == res_json.read_bytes()
    assert resumed.report.drives_resumed == 1
    assert resumed.report.drives_completed == 2
    assert resumed.report.checkpoint_path == os.fspath(ckpt)


def test_checkpoint_fingerprint_mismatch_raises(tmp_path):
    ckpt = tmp_path / "campaign.ckpt.json"
    Campaign(_tiny_config(seed=7)).run(checkpoint_path=ckpt)
    with pytest.raises(ValueError, match="different"):
        Campaign(_tiny_config(seed=8)).run(checkpoint_path=ckpt)


def test_checkpoint_version_mismatch_raises(tmp_path):
    ckpt = tmp_path / "campaign.ckpt.json"
    ckpt.write_text(json.dumps({"version": 99, "fingerprint": "x", "drives": {}}))
    with pytest.raises(ValueError, match="version"):
        Campaign(_tiny_config()).run(checkpoint_path=ckpt)


# -- fault injection end to end -----------------------------------------


def _faulted_config(seed=5):
    config = _tiny_config(seed=seed)
    config.fault_schedule = generate_schedule(
        seed=seed, num_drives=2, drive_duration_s=240.0, intensity=3.0
    )
    return config


def test_faulted_campaign_completes_and_reports(tmp_path):
    campaign = Campaign(_faulted_config())
    dataset = campaign.run()
    report = campaign.report
    assert report.ok
    assert report.num_tests == dataset.num_tests > 0
    assert sum(report.scheduled_faults.values()) == len(
        campaign.config.fault_schedule
    )
    # The report is JSON-serializable end to end.
    out = tmp_path / "report.json"
    report.save_json(out)
    assert json.loads(out.read_text())["drives_total"] == 2


def test_fault_injection_deterministic():
    a = Campaign(_faulted_config()).run()
    b = Campaign(_faulted_config()).run()
    assert [r.samples for r in a.records] == [r.samples for r in b.records]


def test_fault_schedule_changes_output():
    plain = Campaign(_tiny_config(seed=5)).run()
    faulted = Campaign(_faulted_config(seed=5)).run()
    assert [r.samples for r in plain.records] != [r.samples for r in faulted.records]


@pytest.mark.slow
def test_paper_scale_faulted_campaign_completes(tmp_path):
    """Acceptance: paper scale + non-empty schedule runs clean end to end."""
    config = CampaignConfig.paper_scale(seed=1)
    config.fault_schedule = generate_schedule(
        seed=1, num_drives=config.num_drives, drive_duration_s=7200.0
    )
    campaign = Campaign(config)
    dataset = campaign.run(checkpoint_path=tmp_path / "paper.ckpt.json")
    report = campaign.report
    assert report.ok and not report.failures
    assert dataset.num_tests > 1000
    assert sum(report.fault_seconds.values()) > 0


def test_faulted_checkpoint_resume_identical(tmp_path):
    ckpt = tmp_path / "ckpt.json"
    ref = tmp_path / "ref.json"
    res = tmp_path / "res.json"
    Campaign(_faulted_config()).run().save_json(ref)

    interrupted = Campaign(_faulted_config())
    original = interrupted._simulate_drive

    def killed(drive_id, route):
        if drive_id == 1:
            raise KeyboardInterrupt
        return original(drive_id, route)

    interrupted._simulate_drive = killed
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(checkpoint_path=ckpt)

    resumed = Campaign(_faulted_config())
    resumed.run(checkpoint_path=ckpt).save_json(res)
    assert ref.read_bytes() == res.read_bytes()
    # Fault accounting covers the resumed drive too (restored from the
    # checkpoint, not recomputed).
    uninterrupted = Campaign(_faulted_config())
    uninterrupted.run()
    assert resumed.report.fault_seconds == uninterrupted.report.fault_seconds
    assert (
        resumed.report.fault_outage_seconds
        == uninterrupted.report.fault_outage_seconds
    )
