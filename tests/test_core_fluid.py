"""Fluid transport models."""

import numpy as np
import pytest

from repro.conditions import LinkConditions, outage
from repro.core.fluid import (
    FluidTcp,
    fluid_tcp_retransmission_rate,
    fluid_tcp_series,
    fluid_udp_series,
    mathis_throughput_mbps,
)


def flat(rate=100.0, seconds=60, rtt=50.0, loss=0.0, burst=1.0):
    return [
        LinkConditions(float(t), rate, rate / 10.0, rtt, loss, loss_burst=burst)
        for t in range(seconds)
    ]


def test_udp_series_tracks_capacity():
    series = fluid_udp_series(flat(rate=80.0))
    assert np.mean(series) == pytest.approx(80.0, rel=0.01)


def test_udp_series_applies_loss():
    series = fluid_udp_series(flat(rate=100.0, loss=0.1))
    assert np.mean(series) == pytest.approx(90.0, rel=0.01)


def test_udp_series_offered_cap():
    series = fluid_udp_series(flat(rate=100.0), offered_mbps=30.0)
    assert np.mean(series) == pytest.approx(30.0, rel=0.01)


def test_udp_uplink_direction():
    series = fluid_udp_series(flat(rate=100.0), downlink=False)
    assert np.mean(series) == pytest.approx(10.0, rel=0.01)


def test_tcp_clean_link_near_capacity():
    series = fluid_tcp_series(flat(rate=100.0, seconds=120), seed=1)
    # Skip slow start; steady state should be near capacity.
    assert np.mean(series[20:]) > 75.0


def test_tcp_lossy_below_clean():
    clean = np.mean(fluid_tcp_series(flat(seconds=120), seed=2)[20:])
    lossy = np.mean(
        fluid_tcp_series(flat(seconds=120, loss=0.005, burst=10.0), seed=2)[20:]
    )
    assert lossy < 0.6 * clean


def test_tcp_burst_loss_hurts_less():
    iid = np.mean(
        fluid_tcp_series(flat(seconds=180, loss=0.006, burst=1.0), seed=3)
    )
    bursty = np.mean(
        fluid_tcp_series(flat(seconds=180, loss=0.006, burst=60.0), seed=3)
    )
    assert bursty > 1.5 * iid


def test_tcp_outage_and_recovery():
    samples = flat(rate=50.0, seconds=30) + [outage(float(t)) for t in range(30, 35)] + flat(rate=50.0, seconds=30)
    series = fluid_tcp_series(samples, seed=4)
    assert all(s == 0.0 for s in series[30:35])
    # Recovers within a few seconds after the outage.
    assert np.mean(series[40:]) > 25.0


def test_tcp_buffer_cap():
    # 100 Mbps, 50 ms: BDP 625 kB.  A 150 kB buffer caps at ~24 Mbps.
    series = fluid_tcp_series(
        flat(rate=100.0, seconds=120), buffer_bytes=150_000, seed=5
    )
    assert np.mean(series[20:]) < 30.0


def test_parallel_connections_share_capacity():
    one = np.mean(fluid_tcp_series(flat(seconds=120), parallel=1, seed=6)[20:])
    eight = np.mean(fluid_tcp_series(flat(seconds=120), parallel=8, seed=6)[20:])
    # Clean link: already near capacity, parallelism adds little.
    assert eight < 1.4 * one


def test_parallelism_helps_on_lossy_link():
    kwargs = dict(seed=7)
    lossy = flat(seconds=180, loss=0.006, burst=40.0, rtt=60.0)
    one = np.mean(fluid_tcp_series(lossy, parallel=1, **kwargs))
    eight = np.mean(fluid_tcp_series(lossy, parallel=8, **kwargs))
    assert eight > 1.5 * one


def test_fluid_tcp_validation():
    with pytest.raises(ValueError):
        FluidTcp(parallel=0)
    with pytest.raises(ValueError):
        FluidTcp(beta=1.5)


def test_fluid_reset():
    model = FluidTcp(seed=8)
    for s in flat(seconds=30):
        model.step(s)
    model.reset()
    assert np.all(model._cwnd == 10.0 * model.mss)


def test_retransmission_rate_estimate():
    samples = flat(seconds=60, loss=0.01)
    assert fluid_tcp_retransmission_rate(samples) == pytest.approx(0.01)
    assert fluid_tcp_retransmission_rate([outage(0.0)]) == 0.0


def test_retransmission_rate_all_outage_is_zero():
    # A trace that never carries a byte has nothing to retransmit: the
    # estimator must return 0.0, not divide by a zero sent-count.
    samples = [outage(float(t)) for t in range(30)]
    assert fluid_tcp_retransmission_rate(samples) == 0.0
    assert fluid_tcp_retransmission_rate(samples, downlink=False) == 0.0


def test_retransmission_rate_skips_zero_capacity_seconds():
    # Seconds with zero capacity in the measured direction contribute
    # neither sent nor lost bytes — a dead downlink cannot dilute (or
    # inflate) the uplink estimate and vice versa.
    dead_dl = LinkConditions(0.0, 0.0, 10.0, 50.0, 0.9)
    live = LinkConditions(1.0, 100.0, 10.0, 50.0, 0.02)
    assert fluid_tcp_retransmission_rate([dead_dl, live]) == pytest.approx(0.02)
    # Uplink direction: both seconds carry 10 Mbps up, so both count.
    expected_ul = (10.0 * 0.9 + 10.0 * 0.02) / 20.0
    assert fluid_tcp_retransmission_rate(
        [dead_dl, live], downlink=False
    ) == pytest.approx(expected_ul)


def test_mathis_formula():
    # 1500 B, 100 ms, p=0.01: 1.22*1500*8/(0.1*0.1) = 1.464 Mbps.
    assert mathis_throughput_mbps(1500, 100.0, 0.01) == pytest.approx(1.464, rel=0.01)
    with pytest.raises(ValueError):
        mathis_throughput_mbps(1500, 0.0, 0.01)


@pytest.mark.parametrize(
    ("rtt_ms", "loss_event_rate"),
    [(0.0, 0.01), (-1.0, 0.01), (100.0, 0.0), (100.0, -0.5)],
)
def test_mathis_formula_rejects_non_positive_inputs(rtt_ms, loss_event_rate):
    with pytest.raises(ValueError, match="must be positive"):
        mathis_throughput_mbps(1500, rtt_ms, loss_event_rate)
