"""Drop-tail queue and variable-rate link."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.conditions import LinkConditions
from repro.net.link import (
    ConditionsSchedule,
    FixedConditions,
    Link,
    bdp_bytes,
)
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.simulator import Simulator


def make_packet(size=1500, seq=0):
    return Packet(flow_id=0, size_bytes=size, seq=seq)


def test_queue_fifo_order():
    q = DropTailQueue(10_000)
    for i in range(3):
        assert q.push(make_packet(seq=i))
    assert [q.pop().seq for _ in range(3)] == [0, 1, 2]


def test_queue_drops_when_full():
    q = DropTailQueue(3000)
    assert q.push(make_packet())
    assert q.push(make_packet())
    assert not q.push(make_packet())
    assert q.drops == 1
    assert len(q) == 2


def test_queue_byte_accounting():
    q = DropTailQueue(10_000)
    q.push(make_packet(size=1000))
    q.push(make_packet(size=2000))
    assert q.bytes_queued == 3000
    q.pop()
    assert q.bytes_queued == 2000
    q.clear()
    assert q.bytes_queued == 0
    assert q.is_empty


def test_queue_rejects_bad_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(0)


@given(st.lists(st.integers(min_value=100, max_value=3000), max_size=30))
def test_queue_never_exceeds_capacity(sizes):
    q = DropTailQueue(5000)
    for i, size in enumerate(sizes):
        q.push(make_packet(size=size, seq=i))
        assert q.bytes_queued <= 5000


def test_link_delivers_with_delay():
    sim = Simulator()
    link = Link(sim, FixedConditions(8.0, 10.0), 100_000, np.random.default_rng(0))
    arrivals = []
    link.connect(lambda p: arrivals.append((sim.now, p.seq)))
    link.send(make_packet(size=1000, seq=1))
    sim.run()
    assert len(arrivals) == 1
    t, seq = arrivals[0]
    # 1000 B at 8 Mbps = 1 ms serialization + 10 ms propagation.
    assert t == pytest.approx(0.011, abs=1e-4)


def test_link_serializes_back_to_back():
    sim = Simulator()
    link = Link(sim, FixedConditions(8.0, 0.0), 1_000_000, np.random.default_rng(0))
    arrivals = []
    link.connect(lambda p: arrivals.append(sim.now))
    for i in range(3):
        link.send(make_packet(size=1000, seq=i))
    sim.run()
    gaps = np.diff(arrivals)
    assert np.allclose(gaps, 0.001, atol=1e-6)


def test_link_drops_at_configured_loss():
    sim = Simulator()
    link = Link(sim, FixedConditions(100.0, 1.0, loss=0.3), 10_000_000, np.random.default_rng(1))
    received = []
    link.connect(received.append)
    for i in range(3000):
        link.send(make_packet(seq=i))
    sim.run()
    loss = 1.0 - len(received) / 3000
    assert loss == pytest.approx(0.3, abs=0.05)


def test_link_burst_loss_preserves_average():
    sim = Simulator()
    link = Link(
        sim,
        FixedConditions(100.0, 1.0, loss=0.1, burst=20.0),
        10_000_000,
        np.random.default_rng(2),
    )
    received = []
    link.connect(lambda p: received.append(p.seq))
    n = 30_000
    # Pace sends at the link rate so queue drops don't pollute the measure:
    # 100 Mbps / 1500 B = 8333 pkts/s -> 120 us apart.
    for i in range(n):
        sim.schedule_at(i * 120e-6, lambda i=i: link.send(make_packet(seq=i)))
    sim.run()
    loss = 1.0 - len(received) / n
    assert link.queue_drops == 0
    assert loss == pytest.approx(0.1, abs=0.04)
    # Losses must cluster: count runs of consecutive missing seqs.
    missing = sorted(set(range(n)) - set(received))
    runs = sum(
        1
        for i, seq in enumerate(missing)
        if i == 0 or seq != missing[i - 1] + 1
    )
    assert len(missing) / runs > 5.0  # mean run length >> 1


def test_link_outage_holds_then_resumes():
    sim = Simulator()
    samples = [
        LinkConditions(0.0, 10.0, 1.0, 20.0, 0.0),
        LinkConditions(1.0, 0.0, 0.0, 20.0, 1.0),  # outage second
        LinkConditions(2.0, 10.0, 1.0, 20.0, 0.0),
    ]
    schedule = ConditionsSchedule(samples)
    link = Link(sim, schedule, 1_000_000, np.random.default_rng(3))
    arrivals = []
    link.connect(lambda p: arrivals.append(sim.now))
    sim.schedule(1.2, lambda: link.send(make_packet(size=1000)))
    sim.run(until_s=3.0)
    assert len(arrivals) == 1
    assert arrivals[0] >= 2.0  # held until capacity returned


def test_link_stall_flush_drops_stale():
    sim = Simulator()
    samples = [
        LinkConditions(0.0, 10.0, 1.0, 20.0, 0.0),
        LinkConditions(1.0, 0.0, 0.0, 20.0, 1.0),
    ] + [LinkConditions(float(t), 0.0, 0.0, 20.0, 1.0) for t in range(2, 8)] + [
        LinkConditions(8.0, 10.0, 1.0, 20.0, 0.0)
    ]
    schedule = ConditionsSchedule(samples)
    link = Link(sim, schedule, 1_000_000, np.random.default_rng(4))
    arrivals = []
    link.connect(lambda p: arrivals.append(p.seq))
    pkt = make_packet(size=1000, seq=42)
    pkt.sent_time_s = 1.1
    sim.schedule(1.1, lambda: link.send(pkt))
    sim.run(until_s=10.0)
    # Stale after 2 s of stall: flushed, never delivered.
    assert arrivals == []
    assert link.random_losses == 1


def test_conditions_schedule_wraps():
    samples = [
        LinkConditions(0.0, 10.0, 1.0, 20.0, 0.0),
        LinkConditions(1.0, 20.0, 2.0, 30.0, 0.1),
    ]
    schedule = ConditionsSchedule(samples)
    assert schedule.rate_bps(0.5) == 10e6
    assert schedule.rate_bps(1.5) == 20e6
    # Wraps modulo the 2 s span.
    assert schedule.rate_bps(2.5) == 10e6
    assert schedule.loss_rate(3.7) == pytest.approx(0.1)


def test_conditions_schedule_uplink_view():
    samples = [LinkConditions(0.0, 100.0, 10.0, 20.0, 0.0)]
    up = ConditionsSchedule(samples, downlink=False)
    assert up.rate_bps(0.0) == 10e6


def test_bdp_bytes():
    # 100 Mbps * 40 ms = 500 kB.
    assert bdp_bytes(100.0, 40.0) == 500_000
    with pytest.raises(ValueError):
        bdp_bytes(-1.0, 10.0)


def test_fixed_conditions_validation():
    with pytest.raises(ValueError):
        FixedConditions(-1.0, 10.0)
    with pytest.raises(ValueError):
        FixedConditions(10.0, 10.0, loss=1.5)
    with pytest.raises(ValueError):
        FixedConditions(10.0, 10.0, burst=0.5)


def test_empty_schedule_rejected():
    with pytest.raises(ValueError):
        ConditionsSchedule([])
