"""Walker constellation propagation."""

import math

import numpy as np
import pytest

from repro.leo.constellation import (
    Constellation,
    EARTH_ROTATION_RAD_S,
    OrbitalShell,
    starlink_shell1,
)
from repro.units import EARTH_RADIUS_KM


def test_starlink_shell1_parameters():
    shell = starlink_shell1()
    assert shell.altitude_km == 550.0
    assert shell.inclination_deg == 53.0
    assert shell.num_satellites == 72 * 22 == 1584


def test_orbital_period_about_95_minutes():
    shell = starlink_shell1()
    assert shell.orbital_period_s == pytest.approx(5730.0, rel=0.02)


def test_orbital_speed_matches_paper_28000_kmh():
    """Section 4.2: 'low earth orbit at an approximate speed of 28,000 km/h'."""
    shell = starlink_shell1()
    assert shell.orbital_speed_kmh == pytest.approx(27_500, rel=0.03)


def test_positions_on_orbit_sphere():
    constellation = Constellation()
    pos = constellation.positions_ecef_km(0.0)
    radii = np.linalg.norm(pos, axis=1)
    assert np.allclose(radii, EARTH_RADIUS_KM + 550.0, rtol=1e-9)


def test_positions_shape():
    constellation = Constellation()
    assert constellation.positions_ecef_km(100.0).shape == (1584, 3)


def test_satellites_move():
    constellation = Constellation()
    p0 = constellation.positions_ecef_km(0.0)
    p1 = constellation.positions_ecef_km(1.0)
    moved = np.linalg.norm(p1 - p0, axis=1)
    # ~7.6 km/s orbital speed.
    assert np.all(moved > 5.0)
    assert np.all(moved < 10.0)


def test_period_returns_to_start_in_inertial_frame():
    shell = starlink_shell1()
    constellation = Constellation([shell])
    period = shell.orbital_period_s
    p0 = constellation.positions_ecef_km(0.0)
    pT = constellation.positions_ecef_km(period)
    # After one period the orbit repeats but the Earth has rotated under it:
    # rotate pT back by the Earth rotation angle and compare.
    theta = EARTH_ROTATION_RAD_S * period
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    x = pT[:, 0] * cos_t - pT[:, 1] * sin_t
    y = pT[:, 0] * sin_t + pT[:, 1] * cos_t
    back = np.column_stack([x, y, pT[:, 2]])
    assert np.allclose(back, p0, atol=1.0)


def test_max_latitude_bounded_by_inclination():
    constellation = Constellation()
    pos = constellation.positions_ecef_km(1234.0)
    lat = np.degrees(np.arcsin(pos[:, 2] / np.linalg.norm(pos, axis=1)))
    assert np.max(np.abs(lat)) <= 53.0 + 0.1


def test_satellites_spread_over_longitudes():
    constellation = Constellation()
    pos = constellation.positions_ecef_km(0.0)
    lon = np.degrees(np.arctan2(pos[:, 1], pos[:, 0]))
    hist, _ = np.histogram(lon, bins=12, range=(-180, 180))
    assert np.all(hist > 0)


def test_invalid_shell_rejected():
    with pytest.raises(ValueError):
        OrbitalShell(altitude_km=-1, inclination_deg=53, num_planes=2, sats_per_plane=2)
    with pytest.raises(ValueError):
        OrbitalShell(altitude_km=550, inclination_deg=53, num_planes=0, sats_per_plane=2)


def test_empty_constellation_rejected():
    with pytest.raises(ValueError):
        Constellation([])


def test_multi_shell_counts():
    shells = [starlink_shell1(), OrbitalShell(1100.0, 70.0, 6, 10)]
    constellation = Constellation(shells)
    assert constellation.num_satellites == 1584 + 60
    assert constellation.positions_ecef_km(0.0).shape == (1644, 3)
